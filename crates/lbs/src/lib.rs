//! # lbs — anonymous query processing over ReverseCloak regions
//!
//! The LBS-provider side of the system. The paper bounds the cloaking
//! region's size (`σs`) precisely because "the size of the cloaking region
//! … has a direct influence on the performance of the anonymous query
//! processing technique \[7\], \[9\]" — this crate implements that technique
//! so the trade-off is measurable (experiment B9):
//!
//! * [`PoiStore`] — points of interest anchored to road segments,
//! * [`range_query`] / [`nearest_query`] — candidate answer sets computed
//!   from a cloaking region instead of an exact location,
//! * [`refine_nearest`] — the client-side refinement step.
//!
//! ```
//! use lbs::{nearest_query, PoiCategory, PoiStore};
//! use roadnet::{grid_city, SegmentId};
//!
//! let net = grid_city(5, 5, 100.0);
//! let mut rng = rand::thread_rng();
//! let store = PoiStore::generate(&net, 100, &mut rng);
//! // The LBS only sees the cloaking region, never the exact segment.
//! let region = vec![SegmentId(7), SegmentId(8)];
//! let answer = nearest_query(&net, &store, &region, PoiCategory::Restaurant);
//! assert!(!answer.is_empty());
//! ```
//!
//! ## Pooled entry points
//!
//! [`nearest_query`] and [`range_query`] allocate their Dijkstra state
//! per call. A query loop should hold one [`SearchScratch`] (a
//! generation-stamped flat distance array plus a reusable heap) and use
//! the `*_with` variants — allocation-free at steady state, identical
//! answers. Both paths consult the network's landmark index
//! ([`roadnet::GraphIndex`], built lazily on first query) to direct and
//! bound the search; the un-indexed searches survive as
//! [`nearest_query_reference_with`] / [`range_query_reference_with`]
//! and are property-tested to return exactly equal candidates:
//!
//! ```
//! use lbs::{nearest_query, nearest_query_with, PoiCategory, PoiStore, SearchScratch};
//! use roadnet::{grid_city, SegmentId};
//!
//! let net = grid_city(5, 5, 100.0);
//! let mut rng = rand::thread_rng();
//! let store = PoiStore::generate(&net, 100, &mut rng);
//! let mut scratch = SearchScratch::new();
//! for region in [vec![SegmentId(7), SegmentId(8)], vec![SegmentId(20)]] {
//!     let pooled = nearest_query_with(&net, &store, &region, PoiCategory::GasStation, &mut scratch);
//!     let fresh = nearest_query(&net, &store, &region, PoiCategory::GasStation);
//!     assert_eq!(pooled, fresh, "scratch never changes answers");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod poi;
pub mod query;

pub use poi::{Poi, PoiCategory, PoiId, PoiStore};
pub use query::{
    nearest_query, nearest_query_reference_with, nearest_query_with, range_query,
    range_query_reference_with, range_query_with, refine_nearest, refine_nearest_with,
    CandidateAnswer, QueryStats, SearchScratch,
};
