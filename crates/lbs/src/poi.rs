//! Points of interest anchored to road segments.

use rand::Rng;
use roadnet::{RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a point of interest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PoiId(pub u32);

impl fmt::Display for PoiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poi{}", self.0)
    }
}

/// Category of a POI — what a user would query for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    /// Fuel stations.
    GasStation,
    /// Restaurants and cafes.
    Restaurant,
    /// Hospitals and clinics.
    Hospital,
    /// Parking facilities.
    Parking,
    /// Anything else.
    Other,
}

impl PoiCategory {
    /// All categories, for iteration.
    pub const ALL: [PoiCategory; 5] = [
        PoiCategory::GasStation,
        PoiCategory::Restaurant,
        PoiCategory::Hospital,
        PoiCategory::Parking,
        PoiCategory::Other,
    ];
}

impl fmt::Display for PoiCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PoiCategory::GasStation => "gas station",
            PoiCategory::Restaurant => "restaurant",
            PoiCategory::Hospital => "hospital",
            PoiCategory::Parking => "parking",
            PoiCategory::Other => "other",
        };
        write!(f, "{name}")
    }
}

/// A point of interest on the road network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// The id.
    pub id: PoiId,
    /// The segment the POI sits on.
    pub segment: SegmentId,
    /// Offset along the segment from endpoint `a`, in meters.
    pub offset: f64,
    /// The category.
    pub category: PoiCategory,
}

/// A store of POIs with per-segment and per-category lookup.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoiStore {
    pois: Vec<Poi>,
    by_segment: Vec<Vec<PoiId>>,
}

impl PoiStore {
    /// An empty store over a network with `segment_count` segments.
    pub fn new(segment_count: usize) -> Self {
        PoiStore {
            pois: Vec::new(),
            by_segment: vec![Vec::new(); segment_count],
        }
    }

    /// Adds a POI; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the segment id is out of range for the store.
    pub fn add(&mut self, segment: SegmentId, offset: f64, category: PoiCategory) -> PoiId {
        assert!(
            segment.index() < self.by_segment.len(),
            "segment {segment} out of range"
        );
        let id = PoiId(self.pois.len() as u32);
        self.pois.push(Poi {
            id,
            segment,
            offset: offset.max(0.0),
            category,
        });
        self.by_segment[segment.index()].push(id);
        id
    }

    /// Generates `count` POIs uniformly over segments (length-weighted),
    /// with categories drawn uniformly.
    pub fn generate<R: Rng + ?Sized>(net: &RoadNetwork, count: usize, rng: &mut R) -> Self {
        let mut store = Self::new(net.segment_count());
        // Length-weighted segment sampling.
        let mut cum = Vec::with_capacity(net.segment_count());
        let mut total = 0.0;
        for s in net.segments() {
            total += s.length().max(1e-9);
            cum.push(total);
        }
        for _ in 0..count {
            let x = rng.gen_range(0.0..total);
            let i = cum.partition_point(|&c| c <= x);
            let seg = SegmentId(i.min(net.segment_count() - 1) as u32);
            let offset = rng.gen_range(0.0..=net.segment(seg).length());
            let cat = PoiCategory::ALL[rng.gen_range(0..PoiCategory::ALL.len())];
            store.add(seg, offset, cat);
        }
        store
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// A POI by id.
    pub fn get(&self, id: PoiId) -> Option<&Poi> {
        self.pois.get(id.0 as usize)
    }

    /// POIs on one segment.
    pub fn on_segment(&self, s: SegmentId) -> impl Iterator<Item = &Poi> + '_ {
        self.by_segment
            .get(s.index())
            .into_iter()
            .flatten()
            .map(|id| &self.pois[id.0 as usize])
    }

    /// All POIs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Poi> {
        self.pois.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    #[test]
    fn add_and_lookup() {
        let net = grid_city(3, 3, 100.0);
        let mut store = PoiStore::new(net.segment_count());
        let id = store.add(SegmentId(2), 30.0, PoiCategory::Restaurant);
        assert_eq!(store.len(), 1);
        let poi = store.get(id).unwrap();
        assert_eq!(poi.segment, SegmentId(2));
        assert_eq!(poi.category, PoiCategory::Restaurant);
        assert_eq!(store.on_segment(SegmentId(2)).count(), 1);
        assert_eq!(store.on_segment(SegmentId(3)).count(), 0);
        assert!(store.get(PoiId(9)).is_none());
    }

    #[test]
    fn negative_offset_clamped() {
        let net = grid_city(2, 2, 100.0);
        let mut store = PoiStore::new(net.segment_count());
        let id = store.add(SegmentId(0), -5.0, PoiCategory::Other);
        assert_eq!(store.get(id).unwrap().offset, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_panics() {
        let mut store = PoiStore::new(4);
        store.add(SegmentId(99), 0.0, PoiCategory::Other);
    }

    #[test]
    fn generate_spreads_pois() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let store = PoiStore::generate(&net, 500, &mut rng);
        assert_eq!(store.len(), 500);
        let covered = net
            .segment_ids()
            .filter(|&s| store.on_segment(s).next().is_some())
            .count();
        assert!(covered > net.segment_count() / 2, "covered {covered}");
        // All offsets within their segments.
        for poi in store.iter() {
            assert!(poi.offset <= net.segment(poi.segment).length());
        }
        // Every category appears.
        for cat in PoiCategory::ALL {
            assert!(store.iter().any(|p| p.category == cat), "{cat} missing");
        }
    }
}
