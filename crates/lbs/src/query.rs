//! Anonymous query processing over cloaked regions.
//!
//! The paper bounds region size (`σs`) because it "has a direct influence
//! on the performance of the anonymous query processing technique
//! \[7\], \[9\]". This module is that technique, in the Casper/road-network
//! style: the LBS receives a *cloaking region* instead of a point, returns
//! a **candidate answer set** that is correct for *every* possible user
//! position in the region, and the client (who knows its true position)
//! refines locally.
//!
//! Two query types:
//! * [`range_query`] — POIs of a category within road distance `r` of any
//!   possible user position,
//! * [`nearest_query`] — candidate set guaranteed to contain the true
//!   nearest POI for every possible position.
//!
//! # Indexed search
//!
//! The pooled entry points ([`nearest_query_with`], [`range_query_with`])
//! consult the network's [`roadnet::LandmarkTable`] (built once, behind
//! the network's lazy [`roadnet::GraphIndex`]): landmark *upper* bounds
//! turn the nearest search's doubling multi-source Dijkstra into a
//! single goal-directed bounded search, and landmark *lower* bounds to
//! the category's POI endpoints prune frontier junctions that provably
//! cannot reach any relevant POI in budget. The pruning is conservative
//! (triangle inequality), so **candidate sets, distances and tie-breaks
//! are exactly those of the reference search** — kept alongside as
//! [`nearest_query_reference_with`] / [`range_query_reference_with`]
//! and property-tested equal in `tests/indexed_prop.rs`. Only the
//! [`CandidateAnswer::segments_visited`] work counter differs (it
//! reports the work actually done, which is the point).

use crate::poi::{Poi, PoiCategory, PoiStore};
use roadnet::{JunctionId, LandmarkTable, RoadNetwork, SegmentId};
use std::collections::BinaryHeap;

/// The LBS answer: candidates plus the work the server did (the paper's
/// query-processing cost axes).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAnswer {
    /// POIs that could be the answer for some position in the region.
    pub candidates: Vec<Poi>,
    /// Segments the server expanded while processing.
    pub segments_visited: usize,
}

impl CandidateAnswer {
    /// Number of candidate POIs.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no POI qualified.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Running aggregate over many [`CandidateAnswer`]s — the LBS-side cost
/// rollup (candidate-set size, expansion work) a streaming pipeline
/// reports per tick, mirroring the paper's query-processing cost axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    queries: u64,
    sum_candidates: u64,
    sum_visited: u64,
    max_candidates: usize,
}

impl QueryStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one answer in.
    pub fn record(&mut self, answer: &CandidateAnswer) {
        self.queries += 1;
        self.sum_candidates += answer.len() as u64;
        self.sum_visited += answer.segments_visited as u64;
        self.max_candidates = self.max_candidates.max(answer.len());
    }

    /// Answers recorded.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Mean candidate-set size (0 when empty).
    pub fn mean_candidates(&self) -> f64 {
        self.mean(self.sum_candidates)
    }

    /// Mean segments the server expanded per query (0 when empty).
    pub fn mean_segments_visited(&self) -> f64 {
        self.mean(self.sum_visited)
    }

    /// Largest candidate set seen.
    pub fn max_candidates(&self) -> usize {
        self.max_candidates
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.sum_candidates += other.sum_candidates;
        self.sum_visited += other.sum_visited;
        self.max_candidates = self.max_candidates.max(other.max_candidates);
    }

    fn mean(&self, sum: u64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            sum as f64 / self.queries as f64
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries: {:.1} candidates mean (max {}), {:.1} segments visited mean",
            self.queries,
            self.mean_candidates(),
            self.max_candidates,
            self.mean_segments_visited()
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    d: f64,
    j: u32,
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .d
            .partial_cmp(&self.d)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.j.cmp(&self.j))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Pooled buffers for the LBS region-distance search: a flat distance
/// array keyed by junction index (generation-stamped, so resets are
/// `O(1)`), a segment-visit stamp array, and a reusable binary heap.
///
/// # Reuse contract
///
/// One scratch per query-processing thread; results are bit-identical
/// for any scratch state (each search restarts the generation and the
/// heap before reading them). Reused across queries, the steady-state
/// search allocates nothing — the buffers grow once to the network's
/// size and the heap to the search's high-water mark.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    dist: Vec<f64>,
    dist_stamp: Vec<u32>,
    seg_stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    /// Per-landmark min/max distance to the query region's junctions.
    lm_region_min: Vec<f64>,
    lm_region_max: Vec<f64>,
    /// Per-landmark min/max distance to the queried category's POI
    /// segment endpoints (the goal set of the directed search).
    lm_target_min: Vec<f64>,
    lm_target_max: Vec<f64>,
    /// The landmarks that actually discriminate region from goal set
    /// for this query (checked per popped junction, so kept few).
    lm_selected: Vec<u32>,
    /// The goal set's junction ids (two per category POI, in store
    /// order) and their landmark-routed distance upper bounds.
    lm_endpoints: Vec<u32>,
    lm_endpoint_ub: Vec<f64>,
}

impl SearchScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, junctions: usize, segments: usize) {
        if self.dist.len() < junctions {
            self.dist.resize(junctions, 0.0);
            self.dist_stamp.resize(junctions, 0);
        }
        if self.seg_stamp.len() < segments {
            self.seg_stamp.resize(segments, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.dist_stamp.fill(0);
            self.seg_stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    fn get(&self, j: JunctionId) -> Option<f64> {
        (self.dist_stamp[j.index()] == self.epoch).then(|| self.dist[j.index()])
    }

    fn set(&mut self, j: JunctionId, d: f64) {
        self.dist[j.index()] = d;
        self.dist_stamp[j.index()] = self.epoch;
    }

    /// Marks a segment visited; returns whether it was new this search.
    fn visit_segment(&mut self, s: SegmentId) -> bool {
        if self.seg_stamp[s.index()] == self.epoch {
            false
        } else {
            self.seg_stamp[s.index()] = self.epoch;
            true
        }
    }
}

/// Multi-source Dijkstra from all junctions of the region's segments;
/// leaves road distance from the *nearest region segment* to every
/// junction reached within `limit` meters in `scratch`, returning the
/// number of segments the search expanded.
fn region_distances(
    net: &RoadNetwork,
    region: &[SegmentId],
    limit: f64,
    scratch: &mut SearchScratch,
) -> usize {
    scratch.begin(net.junction_count(), net.segment_count());
    for &s in region {
        let seg = net.segment(s);
        for j in [seg.a(), seg.b()] {
            // Any region endpoint is a possible exit at distance 0 (the
            // user could be anywhere on the segment, including its ends).
            if scratch.get(j).is_none_or(|d| d > 0.0) {
                scratch.set(j, 0.0);
                scratch.heap.push(HeapEntry { d: 0.0, j: j.0 });
            }
        }
    }
    let mut visited_segments = 0usize;
    while let Some(HeapEntry { d, j }) = scratch.heap.pop() {
        let j = JunctionId(j);
        if scratch.get(j).is_some_and(|cur| d > cur) {
            continue;
        }
        if d > limit {
            continue;
        }
        for &s in net.incident_segments(j) {
            if scratch.visit_segment(s) {
                visited_segments += 1;
            }
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd <= limit && scratch.get(other).is_none_or(|cur| nd < cur) {
                scratch.set(other, nd);
                scratch.heap.push(HeapEntry { d: nd, j: other.0 });
            }
        }
    }
    visited_segments
}

/// Fills `min`/`max` with, per landmark, the distance envelope over the
/// junctions of the region's segments (∞/∞ for an empty region or a
/// landmark reaching none of them).
fn region_landmark_profile(
    net: &RoadNetwork,
    table: &LandmarkTable,
    region: &[SegmentId],
    min: &mut Vec<f64>,
    max: &mut Vec<f64>,
) {
    min.clear();
    min.resize(table.count(), f64::INFINITY);
    max.clear();
    max.resize(table.count(), f64::NEG_INFINITY);
    for (l, (mn, mx)) in min.iter_mut().zip(max.iter_mut()).enumerate() {
        let row = table.distances(l);
        for &s in region {
            let seg = net.segment(s);
            for j in [seg.a(), seg.b()] {
                let d = row[j.index()];
                *mn = mn.min(d);
                *mx = mx.max(d);
            }
        }
        if region.is_empty() {
            *mx = f64::INFINITY;
        }
    }
}

/// How many landmarks the per-junction pruning bound consults. The
/// selection keeps only the most discriminating ones, so the check
/// stays a handful of flops on the Dijkstra's hottest line.
const SELECTED_LANDMARKS: usize = 4;

/// Picks up to [`SELECTED_LANDMARKS`] landmarks that separate the
/// region envelope from the goal envelope — the only ones whose
/// triangle bound can ever prune anything for this query. Using a
/// subset is always sound (the bound over fewer landmarks is merely
/// weaker).
fn select_landmarks(
    r_min: &[f64],
    r_max: &[f64],
    t_min: &[f64],
    t_max: &[f64],
    out: &mut Vec<u32>,
) {
    out.clear();
    let mut scored: [(f64, u32); SELECTED_LANDMARKS] = [(0.0, u32::MAX); SELECTED_LANDMARKS];
    for l in 0..r_min.len() {
        let mut score = 0.0f64;
        if t_min[l].is_finite() && r_max[l].is_finite() {
            score = score.max(t_min[l] - r_max[l]);
        }
        if t_max[l].is_finite() {
            if r_min[l].is_finite() {
                score = score.max(r_min[l] - t_max[l]);
            } else {
                // The landmark reaches every goal endpoint but no region
                // junction: the strongest possible discriminator.
                score = f64::INFINITY;
            }
        }
        if score > scored[SELECTED_LANDMARKS - 1].0 {
            scored[SELECTED_LANDMARKS - 1] = (score, l as u32);
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        }
    }
    out.extend(
        scored
            .iter()
            .filter(|&&(score, l)| score > 0.0 && l != u32::MAX)
            .map(|&(_, l)| l),
    );
}

/// Fills `min`/`max` with, per landmark, the distance envelope over the
/// endpoints of every segment carrying a POI of `category` — the goal
/// set of the directed search. Returns whether the category has any POI
/// at all.
fn category_landmark_profile(
    net: &RoadNetwork,
    table: &LandmarkTable,
    store: &PoiStore,
    category: PoiCategory,
    endpoints: &mut Vec<u32>,
    min: &mut Vec<f64>,
    max: &mut Vec<f64>,
) -> bool {
    min.clear();
    min.resize(table.count(), f64::INFINITY);
    max.clear();
    max.resize(table.count(), f64::NEG_INFINITY);
    // Gather the goal junctions once, then sweep each landmark row over
    // the flat list (row-major, bounds-friendly).
    endpoints.clear();
    for poi in store.iter().filter(|p| p.category == category) {
        let seg = net.segment(poi.segment);
        endpoints.push(seg.a().0);
        endpoints.push(seg.b().0);
    }
    for (l, (mn, mx)) in min.iter_mut().zip(max.iter_mut()).enumerate() {
        let row = table.distances(l);
        for &j in endpoints.iter() {
            let d = row[j as usize];
            *mn = mn.min(d);
            *mx = mx.max(d);
        }
    }
    !endpoints.is_empty()
}

/// Landmark lower bound on the distance from junction `j` to the goal
/// set profiled in `t_min`/`t_max`, over the `sel`ected landmarks.
/// Infinite when some landmark proves every goal endpoint unreachable
/// from `j`; `0.0` when the landmarks say nothing.
fn goal_lower_bound(
    table: &LandmarkTable,
    j: JunctionId,
    t_min: &[f64],
    t_max: &[f64],
    sel: &[u32],
) -> f64 {
    let mut lb = 0.0f64;
    for &l in sel {
        let l = l as usize;
        let (tmin, tmax) = (t_min[l], t_max[l]);
        let dj = table.distances(l)[j.index()];
        if dj.is_finite() {
            if tmin.is_finite() {
                lb = lb.max(tmin - dj);
            }
            if tmax.is_finite() {
                lb = lb.max(dj - tmax);
            }
        } else if tmax.is_finite() {
            // The landmark reaches every goal endpoint but not `j`:
            // `j` lies in a different component from the whole goal set.
            return f64::INFINITY;
        }
    }
    lb
}

/// [`region_distances`] with landmark goal-direction: junctions that
/// provably cannot reach any goal endpoint within `limit` (triangle
/// inequality against `t_min`/`t_max`) are not expanded. Distances of
/// every junction the answer can depend on — goal endpoints within
/// `limit` — are identical to the reference search; the visited counter
/// reflects the (smaller) work actually done.
#[allow(clippy::too_many_arguments)]
fn region_distances_goal(
    net: &RoadNetwork,
    table: &LandmarkTable,
    region: &[SegmentId],
    limit: f64,
    t_min: &[f64],
    t_max: &[f64],
    sel: &[u32],
    scratch: &mut SearchScratch,
) -> usize {
    scratch.begin(net.junction_count(), net.segment_count());
    for &s in region {
        let seg = net.segment(s);
        for j in [seg.a(), seg.b()] {
            if scratch.get(j).is_none_or(|d| d > 0.0) {
                scratch.set(j, 0.0);
                scratch.heap.push(HeapEntry { d: 0.0, j: j.0 });
            }
        }
    }
    let mut visited_segments = 0usize;
    while let Some(HeapEntry { d, j }) = scratch.heap.pop() {
        let j = JunctionId(j);
        if scratch.get(j).is_some_and(|cur| d > cur) {
            continue;
        }
        if d > limit {
            continue;
        }
        // Any path through `j` to a goal endpoint is at least
        // `d + lb` long; if that overshoots the budget, relaxing `j`
        // cannot change any distance the answer reads. The incident
        // segments still count as examined (the server looked at them),
        // keeping the work metric monotone in the budget.
        let prune = d + goal_lower_bound(table, j, t_min, t_max, sel) > limit;
        for &s in net.incident_segments(j) {
            if scratch.visit_segment(s) {
                visited_segments += 1;
            }
            if prune {
                continue;
            }
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd <= limit && scratch.get(other).is_none_or(|cur| nd < cur) {
                scratch.set(other, nd);
                scratch.heap.push(HeapEntry { d: nd, j: other.0 });
            }
        }
    }
    visited_segments
}

/// The nearest-search core: one goal-directed Dijkstra from the region
/// that *discovers its own budget*. Every settled junction scores the
/// POIs of `category` on its incident segments, shrinking the running
/// best-distance `d*`; the search stops as soon as the frontier passes
/// `d* + diameter` (the expansion bound every answer candidate must lie
/// within) and prunes junctions whose landmark lower bound to the goal
/// set overshoots the running budget. Distances of every junction the
/// answer can read are exactly those of the reference search's final
/// iteration — without the reference's doubling restarts.
///
/// Returns the segments examined and the exact nearest-POI distance
/// (∞ when no POI of the category is reachable).
///
/// `best_seed` is any upper bound on the nearest-POI distance (the
/// caller derives one from the landmark table); the running best only
/// shrinks from there as real hits are scored, so the search never
/// explores past the true expansion bound plus the seed's slack.
#[allow(clippy::too_many_arguments)]
fn region_distances_nearest_goal(
    net: &RoadNetwork,
    table: &LandmarkTable,
    store: &PoiStore,
    category: PoiCategory,
    region: &[SegmentId],
    diameter: f64,
    best_seed: f64,
    t_min: &[f64],
    t_max: &[f64],
    sel: &[u32],
    scratch: &mut SearchScratch,
) -> (usize, f64) {
    scratch.begin(net.junction_count(), net.segment_count());
    // A category POI on a region segment pins d* to 0 immediately (the
    // same short-circuit `poi_distance` applies).
    let mut best = if store
        .iter()
        .any(|p| p.category == category && region.contains(&p.segment))
    {
        0.0
    } else {
        best_seed
    };
    for &s in region {
        let seg = net.segment(s);
        for j in [seg.a(), seg.b()] {
            if scratch.get(j).is_none_or(|d| d > 0.0) {
                scratch.set(j, 0.0);
                scratch.heap.push(HeapEntry { d: 0.0, j: j.0 });
            }
        }
    }
    let mut visited_segments = 0usize;
    while let Some(HeapEntry { d, j }) = scratch.heap.pop() {
        let j = JunctionId(j);
        if scratch.get(j).is_some_and(|cur| d > cur) {
            continue;
        }
        // Keys pop in non-decreasing order: once the frontier passes the
        // running bound, no remaining entry can improve any candidate.
        let bound = best + diameter;
        if d > bound {
            break;
        }
        let prune = d + goal_lower_bound(table, j, t_min, t_max, sel) > bound;
        for &s in net.incident_segments(j) {
            if scratch.visit_segment(s) {
                visited_segments += 1;
            }
            let seg = net.segment(s);
            // Score this junction's POIs: the other endpoint contributes
            // when (and if) it settles.
            for poi in store.on_segment(s) {
                if poi.category == category {
                    let tail = if j == seg.a() {
                        poi.offset
                    } else {
                        (seg.length() - poi.offset).max(0.0)
                    };
                    best = best.min(d + tail);
                }
            }
            if prune {
                continue;
            }
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd <= bound && scratch.get(other).is_none_or(|cur| nd < cur) {
                scratch.set(other, nd);
                scratch.heap.push(HeapEntry { d: nd, j: other.0 });
            }
        }
    }
    (visited_segments, best)
}

/// Shortest road distance from the region to a POI, given the junction
/// distances left in `scratch` (`None` when the POI is out of range).
fn poi_distance(
    net: &RoadNetwork,
    scratch: &SearchScratch,
    region: &[SegmentId],
    poi: &Poi,
) -> Option<f64> {
    if region.contains(&poi.segment) {
        return Some(0.0);
    }
    let seg = net.segment(poi.segment);
    let via_a = scratch.get(seg.a()).map(|d| d + poi.offset);
    let via_b = scratch
        .get(seg.b())
        .map(|d| d + (seg.length() - poi.offset).max(0.0));
    match (via_a, via_b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// Range query: all POIs of `category` within road distance `radius` of
/// **any** possible user position in `region`.
///
/// The answer over-approximates the point-query answer (that is the
/// anonymity trade-off); the client refines with its true position.
pub fn range_query(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    radius: f64,
) -> CandidateAnswer {
    range_query_with(
        net,
        store,
        region,
        category,
        radius,
        &mut SearchScratch::new(),
    )
}

/// [`range_query`] with caller-owned search buffers (see
/// [`SearchScratch`]); bit-identical candidates for any scratch state.
///
/// Uses the network's landmark table to prune frontier junctions that
/// provably cannot reach any POI of `category` within `radius`; the
/// candidate set equals [`range_query_reference_with`] exactly.
pub fn range_query_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    radius: f64,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    let table = net.landmark_table();
    let mut t_min = std::mem::take(&mut scratch.lm_target_min);
    let mut t_max = std::mem::take(&mut scratch.lm_target_max);
    let mut r_min = std::mem::take(&mut scratch.lm_region_min);
    let mut r_max = std::mem::take(&mut scratch.lm_region_max);
    let mut sel = std::mem::take(&mut scratch.lm_selected);
    let mut endpoints = std::mem::take(&mut scratch.lm_endpoints);
    let any = category_landmark_profile(
        net,
        table,
        store,
        category,
        &mut endpoints,
        &mut t_min,
        &mut t_max,
    );
    let answer = if !any {
        // No POI of the category exists: the reference search would
        // expand the whole radius ball only to filter everything out.
        CandidateAnswer {
            candidates: Vec::new(),
            segments_visited: 0,
        }
    } else {
        region_landmark_profile(net, table, region, &mut r_min, &mut r_max);
        select_landmarks(&r_min, &r_max, &t_min, &t_max, &mut sel);
        let visited =
            region_distances_goal(net, table, region, radius, &t_min, &t_max, &sel, scratch);
        let mut candidates: Vec<Poi> = store
            .iter()
            .filter(|p| p.category == category)
            .filter(|p| poi_distance(net, scratch, region, p).is_some_and(|d| d <= radius))
            .copied()
            .collect();
        candidates.sort_by_key(|p| p.id);
        CandidateAnswer {
            candidates,
            segments_visited: visited,
        }
    };
    scratch.lm_target_min = t_min;
    scratch.lm_target_max = t_max;
    scratch.lm_region_min = r_min;
    scratch.lm_region_max = r_max;
    scratch.lm_selected = sel;
    scratch.lm_endpoints = endpoints;
    answer
}

/// The pre-index [`range_query`] search: a radius-bounded multi-source
/// Dijkstra with no landmark pruning. Kept as the reference
/// implementation the indexed path is property-tested against.
pub fn range_query_reference_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    radius: f64,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    let visited = region_distances(net, region, radius, scratch);
    let mut candidates: Vec<Poi> = store
        .iter()
        .filter(|p| p.category == category)
        .filter(|p| poi_distance(net, scratch, region, p).is_some_and(|d| d <= radius))
        .copied()
        .collect();
    candidates.sort_by_key(|p| p.id);
    CandidateAnswer {
        candidates,
        segments_visited: visited,
    }
}

/// Nearest-POI query: a candidate set guaranteed to contain the nearest
/// POI of `category` for **every** possible user position in `region`.
///
/// Uses the classic expansion bound: find the nearest POI at distance `d*`
/// from the region boundary, then return every POI within
/// `d* + region diameter` — any user position's nearest POI must lie
/// within that bound.
pub fn nearest_query(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
) -> CandidateAnswer {
    nearest_query_with(net, store, region, category, &mut SearchScratch::new())
}

/// [`nearest_query`] with caller-owned search buffers (see
/// [`SearchScratch`]) — the per-tick query loop of a streaming pipeline
/// reuses one scratch across every probe; bit-identical candidates for
/// any scratch state.
///
/// Goal-directed via the network's landmark table: one self-bounding
/// Dijkstra discovers the nearest-POI distance as it runs and stops at
/// the exact expansion bound (instead of the reference's doubling
/// restarts), while landmark *lower* bounds prune frontier junctions
/// that cannot reach any POI of the category in budget. The candidate
/// set, the distances and the tie-breaks equal
/// [`nearest_query_reference_with`] exactly — including the
/// reference's give-up behavior when its 24-doubling budget would be
/// exhausted.
pub fn nearest_query_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    let table = net.landmark_table();
    let mut t_min = std::mem::take(&mut scratch.lm_target_min);
    let mut t_max = std::mem::take(&mut scratch.lm_target_max);
    let mut r_min = std::mem::take(&mut scratch.lm_region_min);
    let mut r_max = std::mem::take(&mut scratch.lm_region_max);
    let mut sel = std::mem::take(&mut scratch.lm_selected);
    let mut endpoints = std::mem::take(&mut scratch.lm_endpoints);
    let mut endpoint_ub = std::mem::take(&mut scratch.lm_endpoint_ub);
    let any = category_landmark_profile(
        net,
        table,
        store,
        category,
        &mut endpoints,
        &mut t_min,
        &mut t_max,
    );
    let answer = if !any {
        // No POI of the category at all — the reference ends empty.
        CandidateAnswer {
            candidates: Vec::new(),
            segments_visited: 0,
        }
    } else {
        region_landmark_profile(net, table, region, &mut r_min, &mut r_max);
        select_landmarks(&r_min, &r_max, &t_min, &t_max, &mut sel);
        nearest_query_indexed(
            net,
            store,
            region,
            category,
            table,
            &t_min,
            &t_max,
            &r_min,
            &sel,
            &endpoints,
            &mut endpoint_ub,
            scratch,
        )
    };
    scratch.lm_target_min = t_min;
    scratch.lm_target_max = t_max;
    scratch.lm_region_min = r_min;
    scratch.lm_region_max = r_max;
    scratch.lm_selected = sel;
    scratch.lm_endpoints = endpoints;
    scratch.lm_endpoint_ub = endpoint_ub;
    answer
}

/// The indexed nearest search: one self-bounding goal-directed Dijkstra
/// (see [`region_distances_nearest_goal`]) instead of the reference's
/// doubling restarts.
#[allow(clippy::too_many_arguments)]
fn nearest_query_indexed(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    table: &LandmarkTable,
    t_min: &[f64],
    t_max: &[f64],
    r_min: &[f64],
    sel: &[u32],
    endpoints: &[u32],
    endpoint_ub: &mut Vec<f64>,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    // Region "diameter" upper bound: total road length of the region (a
    // safe overestimate of the longest internal detour).
    let diameter: f64 = region.iter().map(|&s| net.segment(s).length()).sum();
    // Landmark upper bound on the nearest-POI distance, seeding the
    // search's self-shrinking budget: region → landmark → POI endpoint
    // (+ the POI's offset along its segment). Only worth its per-POI
    // scan when the landmarks discriminate region from goal set (`sel`
    // non-empty) — with goals surrounding the region the first real hit
    // lands long before any seed would matter.
    let mut best_seed = f64::INFINITY;
    if !sel.is_empty() {
        // Row-major sweep: ub[e] = min over landmarks of
        // d(region, landmark) + d(landmark, endpoint e).
        endpoint_ub.clear();
        endpoint_ub.resize(endpoints.len(), f64::INFINITY);
        for (l, &rm) in r_min.iter().enumerate() {
            if !rm.is_finite() {
                continue;
            }
            let row = table.distances(l);
            for (ub, &j) in endpoint_ub.iter_mut().zip(endpoints.iter()) {
                *ub = ub.min(rm + row[j as usize]);
            }
        }
        for (poi, ub) in store
            .iter()
            .filter(|p| p.category == category)
            .zip(endpoint_ub.chunks_exact(2))
        {
            let seg = net.segment(poi.segment);
            let via_a = ub[0] + poi.offset;
            let via_b = ub[1] + (seg.length() - poi.offset).max(0.0);
            best_seed = best_seed.min(via_a.min(via_b));
        }
    }
    let (visited, d_star) = region_distances_nearest_goal(
        net, table, store, category, region, diameter, best_seed, t_min, t_max, sel, scratch,
    );
    if !d_star.is_finite() {
        // No reachable POI of the category: the reference exhausts its
        // 24 doublings and answers empty.
        return CandidateAnswer {
            candidates: Vec::new(),
            segments_visited: 0,
        };
    }
    let mut with_d: Vec<(f64, Poi)> = store
        .iter()
        .filter(|p| p.category == category)
        .filter_map(|p| poi_distance(net, scratch, region, p).map(|d| (d, *p)))
        .collect();
    let bound = d_star + diameter;
    // Mirror the reference's doubling schedule: it only answers once
    // its growing limit covers `bound`, and gives up (empty answer)
    // after 24 doublings. The doubling is exact in f64, so the
    // replicated schedule agrees bit for bit.
    let mut limit = diameter.max(100.0);
    let mut covered = false;
    for _ in 0..24 {
        if bound <= limit {
            covered = true;
            break;
        }
        limit *= 2.0;
    }
    if !covered {
        return CandidateAnswer {
            candidates: Vec::new(),
            segments_visited: 0,
        };
    }
    with_d.retain(|(d, _)| *d <= bound);
    with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
    CandidateAnswer {
        candidates: with_d.into_iter().map(|(_, p)| p).collect(),
        segments_visited: visited,
    }
}

/// The pre-index [`nearest_query`] search: multi-source Dijkstra with a
/// doubling limit until the expansion bound is covered. Kept as the
/// reference implementation the indexed path is property-tested
/// against.
pub fn nearest_query_reference_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    // Region "diameter" upper bound: total road length of the region (a
    // safe overestimate of the longest internal detour).
    let diameter: f64 = region.iter().map(|&s| net.segment(s).length()).sum();
    // Grow the search limit until at least one POI is found (doubling).
    let mut limit = diameter.max(100.0);
    for _ in 0..24 {
        let visited = region_distances(net, region, limit, scratch);
        let mut with_d: Vec<(f64, Poi)> = store
            .iter()
            .filter(|p| p.category == category)
            .filter_map(|p| poi_distance(net, scratch, region, p).map(|d| (d, *p)))
            .collect();
        if let Some(d_star) = with_d.iter().map(|(d, _)| *d).min_by(|a, b| a.total_cmp(b)) {
            let bound = d_star + diameter;
            if bound <= limit {
                with_d.retain(|(d, _)| *d <= bound);
                with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
                return CandidateAnswer {
                    candidates: with_d.into_iter().map(|(_, p)| p).collect(),
                    segments_visited: visited,
                };
            }
        }
        limit *= 2.0;
    }
    CandidateAnswer {
        candidates: Vec::new(),
        segments_visited: 0,
    }
}

/// Client-side refinement: given the true segment, pick the actual
/// nearest candidate (what a real client does after receiving the
/// candidate set).
pub fn refine_nearest(
    net: &RoadNetwork,
    candidates: &[Poi],
    true_segment: SegmentId,
) -> Option<Poi> {
    refine_nearest_with(net, candidates, true_segment, &mut SearchScratch::new())
}

/// [`refine_nearest`] with caller-owned search buffers (see
/// [`SearchScratch`]).
pub fn refine_nearest_with(
    net: &RoadNetwork,
    candidates: &[Poi],
    true_segment: SegmentId,
    scratch: &mut SearchScratch,
) -> Option<Poi> {
    region_distances(net, &[true_segment], f64::INFINITY, scratch);
    candidates
        .iter()
        .filter_map(|p| poi_distance(net, scratch, &[true_segment], p).map(|d| (d, *p)))
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)))
        .map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    fn store_with(net: &RoadNetwork, pois: &[(u32, f64, PoiCategory)]) -> PoiStore {
        let mut store = PoiStore::new(net.segment_count());
        for &(s, off, cat) in pois {
            store.add(SegmentId(s), off, cat);
        }
        store
    }

    #[test]
    fn range_query_finds_nearby_pois_only() {
        let net = grid_city(5, 5, 100.0);
        // s0 is the bottom-left horizontal segment.
        let store = store_with(
            &net,
            &[
                (0, 50.0, PoiCategory::GasStation),  // on the region itself
                (2, 50.0, PoiCategory::GasStation),  // a block away
                (39, 50.0, PoiCategory::GasStation), // far corner
                (2, 10.0, PoiCategory::Restaurant),  // wrong category
            ],
        );
        let region = vec![SegmentId(0)];
        let near = range_query(&net, &store, &region, PoiCategory::GasStation, 150.0);
        assert_eq!(near.len(), 2, "{:?}", near.candidates);
        assert!(near
            .candidates
            .iter()
            .all(|p| p.category == PoiCategory::GasStation));
        // Radius 0: only on-region POIs.
        let zero = range_query(&net, &store, &region, PoiCategory::GasStation, 0.0);
        assert_eq!(zero.len(), 1);
        assert_eq!(zero.candidates[0].segment, SegmentId(0));
    }

    #[test]
    fn range_query_larger_region_is_superset() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        let store = PoiStore::generate(&net, 200, &mut rng);
        let small = vec![SegmentId(0)];
        let big: Vec<SegmentId> = [0u32, 1, 2, 11, 12].iter().map(|&i| SegmentId(i)).collect();
        let a = range_query(&net, &store, &small, PoiCategory::Restaurant, 300.0);
        let b = range_query(&net, &store, &big, PoiCategory::Restaurant, 300.0);
        for p in &a.candidates {
            assert!(
                b.candidates.iter().any(|q| q.id == p.id),
                "bigger region must cover the smaller one's answers"
            );
        }
        assert!(b.len() >= a.len());
    }

    #[test]
    fn nearest_query_candidates_contain_true_nearest_for_every_position() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let store = PoiStore::generate(&net, 120, &mut rng);
        let region: Vec<SegmentId> = [5u32, 6, 16].iter().map(|&i| SegmentId(i)).collect();
        let answer = nearest_query(&net, &store, &region, PoiCategory::Other);
        assert!(!answer.is_empty());
        // For every possible user segment, the refined nearest must be in
        // the candidate set.
        let all: Vec<Poi> = store
            .iter()
            .filter(|p| p.category == PoiCategory::Other)
            .copied()
            .collect();
        for &true_seg in &region {
            let true_nearest = refine_nearest(&net, &all, true_seg).unwrap();
            assert!(
                answer.candidates.iter().any(|p| p.id == true_nearest.id),
                "candidates missing true nearest for {true_seg}"
            );
        }
    }

    #[test]
    fn refinement_picks_the_closest_candidate() {
        let net = grid_city(4, 4, 100.0);
        let store = store_with(
            &net,
            &[
                (1, 50.0, PoiCategory::Hospital),
                (10, 50.0, PoiCategory::Hospital),
            ],
        );
        let candidates: Vec<Poi> = store.iter().copied().collect();
        let nearest = refine_nearest(&net, &candidates, SegmentId(0)).unwrap();
        assert_eq!(nearest.segment, SegmentId(1));
    }

    #[test]
    fn empty_category_yields_empty_answers() {
        let net = grid_city(3, 3, 100.0);
        let store = store_with(&net, &[(0, 10.0, PoiCategory::Other)]);
        let region = vec![SegmentId(4)];
        assert!(range_query(&net, &store, &region, PoiCategory::Hospital, 1e6).is_empty());
        assert!(nearest_query(&net, &store, &region, PoiCategory::Hospital).is_empty());
    }

    #[test]
    fn query_stats_aggregate_answers() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let store = PoiStore::generate(&net, 150, &mut rng);
        let mut stats = QueryStats::new();
        assert_eq!(stats.queries(), 0);
        assert_eq!(stats.mean_candidates(), 0.0);
        for s in [0u32, 10, 20] {
            let region = vec![SegmentId(s), SegmentId(s + 1)];
            stats.record(&nearest_query(&net, &store, &region, PoiCategory::Other));
        }
        assert_eq!(stats.queries(), 3);
        assert!(stats.mean_candidates() >= 1.0);
        assert!(stats.max_candidates() as f64 >= stats.mean_candidates());
        assert!(stats.mean_segments_visited() >= 1.0);
        let mut merged = QueryStats::new();
        merged.merge(&stats);
        assert_eq!(merged, stats);
        assert!(merged.to_string().contains("3 queries"));
    }

    #[test]
    fn visited_segments_grow_with_radius() {
        let net = grid_city(8, 8, 100.0);
        let store = store_with(&net, &[(0, 10.0, PoiCategory::Parking)]);
        let region = vec![SegmentId(60)];
        let near = range_query(&net, &store, &region, PoiCategory::Parking, 100.0);
        let far = range_query(&net, &store, &region, PoiCategory::Parking, 800.0);
        assert!(far.segments_visited > near.segments_visited);
    }
}
