//! Anonymous query processing over cloaked regions.
//!
//! The paper bounds region size (`σs`) because it "has a direct influence
//! on the performance of the anonymous query processing technique
//! \[7\], \[9\]". This module is that technique, in the Casper/road-network
//! style: the LBS receives a *cloaking region* instead of a point, returns
//! a **candidate answer set** that is correct for *every* possible user
//! position in the region, and the client (who knows its true position)
//! refines locally.
//!
//! Two query types:
//! * [`range_query`] — POIs of a category within road distance `r` of any
//!   possible user position,
//! * [`nearest_query`] — candidate set guaranteed to contain the true
//!   nearest POI for every possible position.

use crate::poi::{Poi, PoiCategory, PoiStore};
use roadnet::{JunctionId, RoadNetwork, SegmentId};
use std::collections::BinaryHeap;

/// The LBS answer: candidates plus the work the server did (the paper's
/// query-processing cost axes).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAnswer {
    /// POIs that could be the answer for some position in the region.
    pub candidates: Vec<Poi>,
    /// Segments the server expanded while processing.
    pub segments_visited: usize,
}

impl CandidateAnswer {
    /// Number of candidate POIs.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no POI qualified.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Running aggregate over many [`CandidateAnswer`]s — the LBS-side cost
/// rollup (candidate-set size, expansion work) a streaming pipeline
/// reports per tick, mirroring the paper's query-processing cost axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    queries: u64,
    sum_candidates: u64,
    sum_visited: u64,
    max_candidates: usize,
}

impl QueryStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one answer in.
    pub fn record(&mut self, answer: &CandidateAnswer) {
        self.queries += 1;
        self.sum_candidates += answer.len() as u64;
        self.sum_visited += answer.segments_visited as u64;
        self.max_candidates = self.max_candidates.max(answer.len());
    }

    /// Answers recorded.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Mean candidate-set size (0 when empty).
    pub fn mean_candidates(&self) -> f64 {
        self.mean(self.sum_candidates)
    }

    /// Mean segments the server expanded per query (0 when empty).
    pub fn mean_segments_visited(&self) -> f64 {
        self.mean(self.sum_visited)
    }

    /// Largest candidate set seen.
    pub fn max_candidates(&self) -> usize {
        self.max_candidates
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.sum_candidates += other.sum_candidates;
        self.sum_visited += other.sum_visited;
        self.max_candidates = self.max_candidates.max(other.max_candidates);
    }

    fn mean(&self, sum: u64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            sum as f64 / self.queries as f64
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries: {:.1} candidates mean (max {}), {:.1} segments visited mean",
            self.queries,
            self.mean_candidates(),
            self.max_candidates,
            self.mean_segments_visited()
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    d: f64,
    j: u32,
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .d
            .partial_cmp(&self.d)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.j.cmp(&self.j))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Pooled buffers for the LBS region-distance search: a flat distance
/// array keyed by junction index (generation-stamped, so resets are
/// `O(1)`), a segment-visit stamp array, and a reusable binary heap.
///
/// # Reuse contract
///
/// One scratch per query-processing thread; results are bit-identical
/// for any scratch state (each search restarts the generation and the
/// heap before reading them). Reused across queries, the steady-state
/// search allocates nothing — the buffers grow once to the network's
/// size and the heap to the search's high-water mark.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    dist: Vec<f64>,
    dist_stamp: Vec<u32>,
    seg_stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl SearchScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, junctions: usize, segments: usize) {
        if self.dist.len() < junctions {
            self.dist.resize(junctions, 0.0);
            self.dist_stamp.resize(junctions, 0);
        }
        if self.seg_stamp.len() < segments {
            self.seg_stamp.resize(segments, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.dist_stamp.fill(0);
            self.seg_stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    fn get(&self, j: JunctionId) -> Option<f64> {
        (self.dist_stamp[j.index()] == self.epoch).then(|| self.dist[j.index()])
    }

    fn set(&mut self, j: JunctionId, d: f64) {
        self.dist[j.index()] = d;
        self.dist_stamp[j.index()] = self.epoch;
    }

    /// Marks a segment visited; returns whether it was new this search.
    fn visit_segment(&mut self, s: SegmentId) -> bool {
        if self.seg_stamp[s.index()] == self.epoch {
            false
        } else {
            self.seg_stamp[s.index()] = self.epoch;
            true
        }
    }
}

/// Multi-source Dijkstra from all junctions of the region's segments;
/// leaves road distance from the *nearest region segment* to every
/// junction reached within `limit` meters in `scratch`, returning the
/// number of segments the search expanded.
fn region_distances(
    net: &RoadNetwork,
    region: &[SegmentId],
    limit: f64,
    scratch: &mut SearchScratch,
) -> usize {
    scratch.begin(net.junction_count(), net.segment_count());
    for &s in region {
        let seg = net.segment(s);
        for j in [seg.a(), seg.b()] {
            // Any region endpoint is a possible exit at distance 0 (the
            // user could be anywhere on the segment, including its ends).
            if scratch.get(j).is_none_or(|d| d > 0.0) {
                scratch.set(j, 0.0);
                scratch.heap.push(HeapEntry { d: 0.0, j: j.0 });
            }
        }
    }
    let mut visited_segments = 0usize;
    while let Some(HeapEntry { d, j }) = scratch.heap.pop() {
        let j = JunctionId(j);
        if scratch.get(j).is_some_and(|cur| d > cur) {
            continue;
        }
        if d > limit {
            continue;
        }
        for &s in net.incident_segments(j) {
            if scratch.visit_segment(s) {
                visited_segments += 1;
            }
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd <= limit && scratch.get(other).is_none_or(|cur| nd < cur) {
                scratch.set(other, nd);
                scratch.heap.push(HeapEntry { d: nd, j: other.0 });
            }
        }
    }
    visited_segments
}

/// Shortest road distance from the region to a POI, given the junction
/// distances left in `scratch` (`None` when the POI is out of range).
fn poi_distance(
    net: &RoadNetwork,
    scratch: &SearchScratch,
    region: &[SegmentId],
    poi: &Poi,
) -> Option<f64> {
    if region.contains(&poi.segment) {
        return Some(0.0);
    }
    let seg = net.segment(poi.segment);
    let via_a = scratch.get(seg.a()).map(|d| d + poi.offset);
    let via_b = scratch
        .get(seg.b())
        .map(|d| d + (seg.length() - poi.offset).max(0.0));
    match (via_a, via_b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// Range query: all POIs of `category` within road distance `radius` of
/// **any** possible user position in `region`.
///
/// The answer over-approximates the point-query answer (that is the
/// anonymity trade-off); the client refines with its true position.
pub fn range_query(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    radius: f64,
) -> CandidateAnswer {
    range_query_with(
        net,
        store,
        region,
        category,
        radius,
        &mut SearchScratch::new(),
    )
}

/// [`range_query`] with caller-owned search buffers (see
/// [`SearchScratch`]); bit-identical results for any scratch state.
pub fn range_query_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    radius: f64,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    let visited = region_distances(net, region, radius, scratch);
    let mut candidates: Vec<Poi> = store
        .iter()
        .filter(|p| p.category == category)
        .filter(|p| poi_distance(net, scratch, region, p).is_some_and(|d| d <= radius))
        .copied()
        .collect();
    candidates.sort_by_key(|p| p.id);
    CandidateAnswer {
        candidates,
        segments_visited: visited,
    }
}

/// Nearest-POI query: a candidate set guaranteed to contain the nearest
/// POI of `category` for **every** possible user position in `region`.
///
/// Uses the classic expansion bound: find the nearest POI at distance `d*`
/// from the region boundary, then return every POI within
/// `d* + region diameter` — any user position's nearest POI must lie
/// within that bound.
pub fn nearest_query(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
) -> CandidateAnswer {
    nearest_query_with(net, store, region, category, &mut SearchScratch::new())
}

/// [`nearest_query`] with caller-owned search buffers (see
/// [`SearchScratch`]) — the per-tick query loop of a streaming pipeline
/// reuses one scratch across every probe; bit-identical results for any
/// scratch state.
pub fn nearest_query_with(
    net: &RoadNetwork,
    store: &PoiStore,
    region: &[SegmentId],
    category: PoiCategory,
    scratch: &mut SearchScratch,
) -> CandidateAnswer {
    // Region "diameter" upper bound: total road length of the region (a
    // safe overestimate of the longest internal detour).
    let diameter: f64 = region.iter().map(|&s| net.segment(s).length()).sum();
    // Grow the search limit until at least one POI is found (doubling).
    let mut limit = diameter.max(100.0);
    for _ in 0..24 {
        let visited = region_distances(net, region, limit, scratch);
        let mut with_d: Vec<(f64, Poi)> = store
            .iter()
            .filter(|p| p.category == category)
            .filter_map(|p| poi_distance(net, scratch, region, p).map(|d| (d, *p)))
            .collect();
        if let Some(d_star) = with_d.iter().map(|(d, _)| *d).min_by(|a, b| a.total_cmp(b)) {
            let bound = d_star + diameter;
            if bound <= limit {
                with_d.retain(|(d, _)| *d <= bound);
                with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
                return CandidateAnswer {
                    candidates: with_d.into_iter().map(|(_, p)| p).collect(),
                    segments_visited: visited,
                };
            }
        }
        limit *= 2.0;
    }
    CandidateAnswer {
        candidates: Vec::new(),
        segments_visited: 0,
    }
}

/// Client-side refinement: given the true segment, pick the actual
/// nearest candidate (what a real client does after receiving the
/// candidate set).
pub fn refine_nearest(
    net: &RoadNetwork,
    candidates: &[Poi],
    true_segment: SegmentId,
) -> Option<Poi> {
    refine_nearest_with(net, candidates, true_segment, &mut SearchScratch::new())
}

/// [`refine_nearest`] with caller-owned search buffers (see
/// [`SearchScratch`]).
pub fn refine_nearest_with(
    net: &RoadNetwork,
    candidates: &[Poi],
    true_segment: SegmentId,
    scratch: &mut SearchScratch,
) -> Option<Poi> {
    region_distances(net, &[true_segment], f64::INFINITY, scratch);
    candidates
        .iter()
        .filter_map(|p| poi_distance(net, scratch, &[true_segment], p).map(|d| (d, *p)))
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)))
        .map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    fn store_with(net: &RoadNetwork, pois: &[(u32, f64, PoiCategory)]) -> PoiStore {
        let mut store = PoiStore::new(net.segment_count());
        for &(s, off, cat) in pois {
            store.add(SegmentId(s), off, cat);
        }
        store
    }

    #[test]
    fn range_query_finds_nearby_pois_only() {
        let net = grid_city(5, 5, 100.0);
        // s0 is the bottom-left horizontal segment.
        let store = store_with(
            &net,
            &[
                (0, 50.0, PoiCategory::GasStation),  // on the region itself
                (2, 50.0, PoiCategory::GasStation),  // a block away
                (39, 50.0, PoiCategory::GasStation), // far corner
                (2, 10.0, PoiCategory::Restaurant),  // wrong category
            ],
        );
        let region = vec![SegmentId(0)];
        let near = range_query(&net, &store, &region, PoiCategory::GasStation, 150.0);
        assert_eq!(near.len(), 2, "{:?}", near.candidates);
        assert!(near
            .candidates
            .iter()
            .all(|p| p.category == PoiCategory::GasStation));
        // Radius 0: only on-region POIs.
        let zero = range_query(&net, &store, &region, PoiCategory::GasStation, 0.0);
        assert_eq!(zero.len(), 1);
        assert_eq!(zero.candidates[0].segment, SegmentId(0));
    }

    #[test]
    fn range_query_larger_region_is_superset() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        let store = PoiStore::generate(&net, 200, &mut rng);
        let small = vec![SegmentId(0)];
        let big: Vec<SegmentId> = [0u32, 1, 2, 11, 12].iter().map(|&i| SegmentId(i)).collect();
        let a = range_query(&net, &store, &small, PoiCategory::Restaurant, 300.0);
        let b = range_query(&net, &store, &big, PoiCategory::Restaurant, 300.0);
        for p in &a.candidates {
            assert!(
                b.candidates.iter().any(|q| q.id == p.id),
                "bigger region must cover the smaller one's answers"
            );
        }
        assert!(b.len() >= a.len());
    }

    #[test]
    fn nearest_query_candidates_contain_true_nearest_for_every_position() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let store = PoiStore::generate(&net, 120, &mut rng);
        let region: Vec<SegmentId> = [5u32, 6, 16].iter().map(|&i| SegmentId(i)).collect();
        let answer = nearest_query(&net, &store, &region, PoiCategory::Other);
        assert!(!answer.is_empty());
        // For every possible user segment, the refined nearest must be in
        // the candidate set.
        let all: Vec<Poi> = store
            .iter()
            .filter(|p| p.category == PoiCategory::Other)
            .copied()
            .collect();
        for &true_seg in &region {
            let true_nearest = refine_nearest(&net, &all, true_seg).unwrap();
            assert!(
                answer.candidates.iter().any(|p| p.id == true_nearest.id),
                "candidates missing true nearest for {true_seg}"
            );
        }
    }

    #[test]
    fn refinement_picks_the_closest_candidate() {
        let net = grid_city(4, 4, 100.0);
        let store = store_with(
            &net,
            &[
                (1, 50.0, PoiCategory::Hospital),
                (10, 50.0, PoiCategory::Hospital),
            ],
        );
        let candidates: Vec<Poi> = store.iter().copied().collect();
        let nearest = refine_nearest(&net, &candidates, SegmentId(0)).unwrap();
        assert_eq!(nearest.segment, SegmentId(1));
    }

    #[test]
    fn empty_category_yields_empty_answers() {
        let net = grid_city(3, 3, 100.0);
        let store = store_with(&net, &[(0, 10.0, PoiCategory::Other)]);
        let region = vec![SegmentId(4)];
        assert!(range_query(&net, &store, &region, PoiCategory::Hospital, 1e6).is_empty());
        assert!(nearest_query(&net, &store, &region, PoiCategory::Hospital).is_empty());
    }

    #[test]
    fn query_stats_aggregate_answers() {
        let net = grid_city(6, 6, 100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let store = PoiStore::generate(&net, 150, &mut rng);
        let mut stats = QueryStats::new();
        assert_eq!(stats.queries(), 0);
        assert_eq!(stats.mean_candidates(), 0.0);
        for s in [0u32, 10, 20] {
            let region = vec![SegmentId(s), SegmentId(s + 1)];
            stats.record(&nearest_query(&net, &store, &region, PoiCategory::Other));
        }
        assert_eq!(stats.queries(), 3);
        assert!(stats.mean_candidates() >= 1.0);
        assert!(stats.max_candidates() as f64 >= stats.mean_candidates());
        assert!(stats.mean_segments_visited() >= 1.0);
        let mut merged = QueryStats::new();
        merged.merge(&stats);
        assert_eq!(merged, stats);
        assert!(merged.to_string().contains("3 queries"));
    }

    #[test]
    fn visited_segments_grow_with_radius() {
        let net = grid_city(8, 8, 100.0);
        let store = store_with(&net, &[(0, 10.0, PoiCategory::Parking)]);
        let region = vec![SegmentId(60)];
        let near = range_query(&net, &store, &region, PoiCategory::Parking, 100.0);
        let far = range_query(&net, &store, &region, PoiCategory::Parking, 800.0);
        assert!(far.segments_visited > near.segments_visited);
    }
}
