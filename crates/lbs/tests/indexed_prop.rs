//! The indexed-search contract: the landmark-pruned goal-directed
//! searches must return **exactly** the reference answers — same POIs,
//! same distances (order encodes them), same tie-breaks — on arbitrary
//! maps, stores, regions and radii. Only the `segments_visited` work
//! counter may differ (the indexed search does less work; that is the
//! point).

use lbs::{
    nearest_query_reference_with, nearest_query_with, range_query_reference_with, range_query_with,
    PoiCategory, PoiStore, SearchScratch,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{grid_city, irregular_city, path, IrregularConfig, RoadNetwork, SegmentId};

/// A deterministic region: the BFS hop ball around a seed segment,
/// truncated — connected like real cloaking regions, and sorted like
/// the payloads the pipeline feeds the LBS.
fn region(net: &RoadNetwork, center: u32, hops: usize, take: usize) -> Vec<SegmentId> {
    let center = SegmentId(center % net.segment_count() as u32);
    let mut ball = path::segments_within_hops(net, center, hops);
    ball.truncate(take.max(1));
    ball.sort_unstable();
    ball
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn indexed_nearest_equals_reference(
        seed in any::<u64>(),
        center in 0u32..200,
        hops in 0usize..3,
        pois in 5usize..120,
        cat in 0usize..5,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 90,
            segments: 120,
            seed,
            ..Default::default()
        });
        let store = PoiStore::generate(&net, pois, &mut StdRng::seed_from_u64(seed ^ 0x90a1));
        let category = PoiCategory::ALL[cat];
        let region = region(&net, center, hops, 6);
        let mut scratch = SearchScratch::new();
        let indexed = nearest_query_with(&net, &store, &region, category, &mut scratch);
        let reference = nearest_query_reference_with(&net, &store, &region, category, &mut scratch);
        prop_assert_eq!(
            &indexed.candidates, &reference.candidates,
            "nearest candidates diverge (seed {}, region {:?}, {:?})",
            seed, region, category
        );
    }

    #[test]
    fn indexed_range_equals_reference(
        seed in any::<u64>(),
        center in 0u32..200,
        hops in 0usize..3,
        pois in 5usize..120,
        cat in 0usize..5,
        radius in 0.0f64..1500.0,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 90,
            segments: 120,
            seed,
            ..Default::default()
        });
        let store = PoiStore::generate(&net, pois, &mut StdRng::seed_from_u64(seed ^ 0x9a5));
        let category = PoiCategory::ALL[cat];
        let region = region(&net, center, hops, 6);
        let mut scratch = SearchScratch::new();
        let indexed = range_query_with(&net, &store, &region, category, radius, &mut scratch);
        let reference =
            range_query_reference_with(&net, &store, &region, category, radius, &mut scratch);
        prop_assert_eq!(
            &indexed.candidates, &reference.candidates,
            "range candidates diverge (seed {}, radius {}, region {:?}, {:?})",
            seed, radius, region, category
        );
    }
}

#[test]
fn indexed_equals_reference_on_grids_and_edge_cases() {
    let net = grid_city(10, 10, 100.0);
    let store = PoiStore::generate(&net, 60, &mut StdRng::seed_from_u64(7));
    let mut scratch = SearchScratch::new();
    let cases: Vec<Vec<SegmentId>> = vec![
        vec![],                      // empty region
        vec![SegmentId(0)],          // corner
        region(&net, 90, 2, 8),      // mid-map ball
        net.segment_ids().collect(), // whole map
    ];
    for region in &cases {
        for category in PoiCategory::ALL {
            let ni = nearest_query_with(&net, &store, region, category, &mut scratch);
            let nr = nearest_query_reference_with(&net, &store, region, category, &mut scratch);
            assert_eq!(
                ni.candidates, nr.candidates,
                "nearest {region:?} {category:?}"
            );
            for radius in [0.0, 120.0, 5000.0] {
                let ri = range_query_with(&net, &store, region, category, radius, &mut scratch);
                let rr = range_query_reference_with(
                    &net,
                    &store,
                    region,
                    category,
                    radius,
                    &mut scratch,
                );
                assert_eq!(
                    ri.candidates, rr.candidates,
                    "range {region:?} {category:?} {radius}"
                );
            }
        }
    }
}

#[test]
fn indexed_does_less_work_on_sparse_goals() {
    // One far-away POI: the reference expands the whole radius ball,
    // the goal-directed search only the corridor the landmarks allow.
    let net = grid_city(14, 14, 100.0);
    let mut store = PoiStore::new(net.segment_count());
    store.add(SegmentId(0), 20.0, PoiCategory::Hospital);
    let region = region(&net, 300, 1, 4);
    let mut scratch = SearchScratch::new();
    let indexed = nearest_query_with(&net, &store, &region, PoiCategory::Hospital, &mut scratch);
    let reference =
        nearest_query_reference_with(&net, &store, &region, PoiCategory::Hospital, &mut scratch);
    assert_eq!(indexed.candidates, reference.candidates);
    assert!(
        indexed.segments_visited < reference.segments_visited,
        "indexed {} vs reference {}",
        indexed.segments_visited,
        reference.segments_visited
    );
}
