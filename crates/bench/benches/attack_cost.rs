//! Cost of the continuous adversarial evaluation: what one tick of
//! [`cloak::TemporalAdversary`] observation costs per owner, per
//! adversary mode, and what the NRE replay inversion (the expensive
//! control-only step: one re-expansion per candidate segment) adds.
//!
//! The attack leg is an evaluation harness, not a serving hot path —
//! these numbers bound how much `rcloak attack` and the scenario
//! matrix's attack cells cost per observed receipt, and catch
//! accidental quadratic blowups in the reachability or peel scans.
//!
//! The `movement_prune` group isolates the PR 5 graph-index win: the
//! movement model's `region ∩ h-hop-reach(candidates)` computed by the
//! [`ReachScratch`] BFS reference vs the word-packed
//! [`roadnet::ReachIndex`] masks (OR + bit tests) — identical sets,
//! unit-tested in `cloak::attack::temporal`.

use cloak::attack::temporal::{
    AdversaryConfig, AdversaryMode, Observation, ReachScratch, ReplayProbe, TemporalAdversary,
};
use cloak::{random_expansion, LevelRequirement, PrivacyProfile, RgeEngine};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use keystream::{Key256, KeyManager};
use mobisim::OccupancySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{grid_city, RoadNetwork, SegmentId};

/// A pre-generated keyed receipt stream: the owner shuttles between two
/// adjacent segments, fresh keys per tick (what the adversary actually
/// observes from the pipeline).
fn keyed_stream(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    ticks: usize,
) -> Vec<(u64, Vec<SegmentId>)> {
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(8))
        .level(LevelRequirement::with_k(16))
        .build()
        .expect("valid profile");
    let engine = RgeEngine::new();
    (0..ticks)
        .map(|t| {
            let seg = SegmentId(100 + (t % 2) as u32);
            let keys: Vec<Key256> = KeyManager::from_seed(profile.level_count(), 900 + t as u64)
                .iter()
                .map(|(_, k)| k)
                .collect();
            let out = cloak::anonymize(net, snapshot, seg, &profile, &keys, t as u64, &engine)
                .expect("grid cloaks succeed");
            (t as u64 + 1, out.payload.segments)
        })
        .collect()
}

fn bench_observe_modes(c: &mut Criterion) {
    let net = grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
    let stream = keyed_stream(&net, &snapshot, 16);
    let mut group = c.benchmark_group("temporal_adversary_observe");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    // Every mode, including the Bayesian trajectory particle filter
    // (`Adaptive`): its cell prices the per-receipt propagate + weight +
    // resample loop against the closed-form portfolio modes.
    for mode in AdversaryMode::ALL {
        group.bench_with_input(BenchmarkId::new("mode", mode.name()), &mode, |b, &mode| {
            let mut adversary = TemporalAdversary::new(
                &net,
                AdversaryConfig {
                    mode,
                    ..Default::default()
                },
            );
            b.iter(|| {
                let mut acc = 0usize;
                for (tick, region) in &stream {
                    let obs = adversary.observe(
                        &net,
                        "owner",
                        Observation {
                            tick: *tick,
                            region,
                            snapshot: &snapshot,
                            snapshot_fresh: true,
                        },
                        None,
                        None,
                    );
                    acc += obs.support;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_replay_inversion(c: &mut Criterion) {
    let net = grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
    let requirement = LevelRequirement::with_k(16);
    let owner_seed = 0x17e_a5ed;
    // The keyless-deterministic control stream: same per-owner seed
    // every tick, exactly what the pipeline's NRE leg publishes.
    let stream: Vec<(u64, Vec<SegmentId>)> = (0..16)
        .map(|t| {
            let seg = SegmentId(100 + (t % 2) as u32);
            let mut rng = StdRng::seed_from_u64(owner_seed);
            let out = random_expansion(&net, &snapshot, seg, &requirement, &mut rng)
                .expect("grid expansions succeed");
            (t as u64 + 1, out.segments)
        })
        .collect();
    let mut group = c.benchmark_group("nre_replay_inversion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("per_tick", |b| {
        let mut adversary = TemporalAdversary::new(&net, AdversaryConfig::default());
        b.iter(|| {
            let mut acc = 0usize;
            for (tick, region) in &stream {
                let obs = adversary.observe(
                    &net,
                    "victim",
                    Observation {
                        tick: *tick,
                        region,
                        snapshot: &snapshot,
                        snapshot_fresh: true,
                    },
                    Some(ReplayProbe {
                        requirement: &requirement,
                        seed: owner_seed,
                    }),
                    None,
                );
                acc += obs.support;
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The PR 6 population cells: one tick of observations over a 16-owner
/// population under the full adversary (`All`), with per-owner
/// `begin_tick` + live mask unions vs `begin_tick_population` packing
/// every owner's movement mask in one OR-pass up front. Observations
/// are bit-identical (property-tested in
/// `crates/cloak/tests/batch_prop.rs`); the delta is the batched mask
/// matrix vs per-observe unions.
fn bench_observe_batched(c: &mut Criterion) {
    let net = grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
    let requirement = LevelRequirement::with_k(8);
    const OWNERS: usize = 16;
    const TICKS: usize = 4;
    let owners: Vec<String> = (0..OWNERS).map(|i| format!("owner-{i}")).collect();
    // Per-tick, per-owner regions: each owner shuttles between two
    // nearby segments, region drawn by the keyless expansion (region
    // shape is all the adversary sees; the draw just has to be cheap
    // and deterministic).
    let regions: Vec<Vec<Vec<SegmentId>>> = (0..TICKS)
        .map(|t| {
            (0..OWNERS)
                .map(|i| {
                    let seg = SegmentId((40 + i * 9 + t) as u32);
                    let mut rng = StdRng::seed_from_u64((t * 1000 + i) as u64);
                    random_expansion(&net, &snapshot, seg, &requirement, &mut rng)
                        .expect("grid expansions succeed")
                        .segments
                })
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("observe_batched");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("per_owner", |b| {
        let mut adversary = TemporalAdversary::new(&net, AdversaryConfig::default());
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            let round = &regions[(tick as usize - 1) % TICKS];
            adversary.begin_tick(&snapshot, true);
            let mut acc = 0usize;
            for (owner, region) in owners.iter().zip(round) {
                let obs = adversary.observe(
                    &net,
                    owner,
                    Observation {
                        tick,
                        region,
                        snapshot: &snapshot,
                        snapshot_fresh: true,
                    },
                    None,
                    None,
                );
                acc += obs.support;
            }
            black_box(acc)
        })
    });
    group.bench_function("batched", |b| {
        let mut adversary = TemporalAdversary::new(&net, AdversaryConfig::default());
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            let round = &regions[(tick as usize - 1) % TICKS];
            adversary.begin_tick_population(&snapshot, true, owners.iter().map(String::as_str));
            let mut acc = 0usize;
            for (owner, region) in owners.iter().zip(round) {
                let obs = adversary.observe(
                    &net,
                    owner,
                    Observation {
                        tick,
                        region,
                        snapshot: &snapshot,
                        snapshot_fresh: true,
                    },
                    None,
                    None,
                );
                acc += obs.support;
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The movement model's per-observation kernel, reference vs packed:
/// mark everything within `h` hops of the candidate support, then test
/// each region segment. The packed path ORs precomputed masks instead
/// of expanding a frontier — the PR 5 ≥5× cell.
fn bench_movement_prune(c: &mut Criterion) {
    let net = grid_city(12, 12, 100.0);
    let hops = 4; // what AdversaryConfig::default derives on this grid
    let support: Vec<SegmentId> = (0..12u32).map(|i| SegmentId(90 + i * 3)).collect();
    let region: Vec<SegmentId> = (0..16u32).map(|i| SegmentId(100 + i)).collect();
    let mut group = c.benchmark_group("movement_prune");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("bfs_reference", |b| {
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            scratch.expand(&net, &support, hops);
            black_box(region.iter().filter(|&&s| scratch.contains(s)).count())
        })
    });
    // Build the packed index outside the timed region: it is the
    // built-once artifact the adversary amortizes over every tick.
    let index = net.reach_index(hops);
    group.bench_function("packed_mask", |b| {
        let mut union = Vec::new();
        b.iter(|| {
            index.union_into(support.iter().copied(), &mut union);
            black_box(
                region
                    .iter()
                    .filter(|&&s| roadnet::ReachIndex::mask_contains(&union, s))
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_observe_modes,
    bench_replay_inversion,
    bench_observe_batched,
    bench_movement_prune
);
criterion_main!(benches);
