//! Criterion bench: `AnonymizerServer` batch throughput at 1, 4, and 8
//! workers on a grid-city workload.
//!
//! Expected shape after the lock-free refactor: requests/sec scales with
//! the worker count (the old global `Mutex<AnonymizerService>` pinned all
//! worker counts to single-threaded throughput). The harness prints mean
//! time per 256-request batch; divide to compare req/s across worker
//! counts.

use anonymizer::{AnonymizeRequest, AnonymizerConfig, AnonymizerServer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobisim::OccupancySnapshot;
use roadnet::{grid_city, SegmentId};

const BATCH: usize = 256;

fn requests(segment_count: u32) -> Vec<AnonymizeRequest> {
    (0..BATCH)
        .map(|i| {
            AnonymizeRequest::new(
                format!("owner-{i}"),
                SegmentId((i as u32 * 37) % segment_count),
                0xbea7 + i as u64,
            )
        })
        .collect()
}

fn bench_server_throughput(c: &mut Criterion) {
    // Worker scaling needs real cores: on a 1-CPU host every worker
    // count measures the same single-threaded throughput.
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut group = c.benchmark_group("server_throughput_256req");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for workers in [1usize, 4, 8] {
        let net = grid_city(20, 20, 100.0);
        let segment_count = net.segment_count() as u32;
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let server =
            AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), workers, 42);
        let reqs = requests(segment_count);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| {
                let results = server.anonymize_batch(reqs.clone());
                assert!(results.iter().all(|r| r.is_ok()));
                results.len()
            })
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
