//! Micro-benches of the allocation-free hot path, with and without
//! scratch reuse, isolating each layer the refactor touched:
//!
//! * **adjacency expansion** — walking every segment's neighbors through
//!   the allocating `neighbor_segments` vs the borrowed CSR slice;
//! * **single-owner cloak** — one full `anonymize` with a throwaway
//!   [`cloak::CloakScratch`] per call vs one reused across calls;
//! * **LBS nearest query** — one `nearest_query` with a throwaway
//!   [`lbs::SearchScratch`] vs one reused across calls, and the PR 5
//!   graph-index cells: the landmark-directed search
//!   (`nearest_query_with`) vs the doubling reference
//!   (`nearest_query_reference_with`), on a dense category and on a
//!   sparse far-away one (where goal direction matters most).
//!
//! The `fresh`/`reused` and `indexed`/`reference` variants compute
//! bit-identical candidate sets (property-tested in
//! `crates/lbs/tests/indexed_prop.rs`), so the deltas are pure
//! allocator traffic and pure search work respectively.
//!
//! The `keyed_draw` group prices the keystream primitive itself —
//! stream initialization (sponge absorption) plus draws, and the
//! chain-ratchet `derive_key` — the cells the ChaCha20-class PRF swap
//! touches directly. With `BENCH_OUT=path` set, a plain-timed
//! `keyed_draw` point is written as JSON for CI's perf-trajectory gate
//! (same schema and min-of-`BENCH_RUNS` methodology as
//! `pipeline_ticks.rs`).

use cloak::{
    anonymize_batch_with_scratch, anonymize_with_scratch, BatchCloakItem, BatchCloakScratch,
    CloakScratch, LevelRequirement, PrivacyProfile, RgeEngine, RpleEngine,
};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use keystream::{derive_key, DrawStream, Key256, KeyManager};
use lbs::{nearest_query_reference_with, nearest_query_with, PoiCategory, PoiStore, SearchScratch};
use mobisim::OccupancySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{grid_city, RoadNetwork, SegmentId};

fn bench_adjacency(c: &mut Criterion) {
    let net = grid_city(20, 20, 100.0);
    let mut group = c.benchmark_group("adjacency_full_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("alloc_vec", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in net.segment_ids() {
                acc += net.neighbor_segments(s).len();
            }
            black_box(acc)
        })
    });
    group.bench_function("csr_slice", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in net.segment_ids() {
                acc += net.neighbor_segments_csr(s).len();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn cloak_world() -> (RoadNetwork, OccupancySnapshot, PrivacyProfile, Vec<Key256>) {
    let net = grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(6))
        .level(LevelRequirement::with_k(14))
        .build()
        .expect("valid profile");
    let keys = KeyManager::from_seed(2, 7).iter().map(|(_, k)| k).collect();
    (net, snapshot, profile, keys)
}

fn bench_single_cloak(c: &mut Criterion) {
    let (net, snapshot, profile, keys) = cloak_world();
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&net, 12);
    let mut group = c.benchmark_group("single_owner_cloak");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, engine) in [
        ("rge", &rge as &dyn cloak::ReversibleEngine),
        ("rple", &rple),
    ] {
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "fresh_scratch"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                anonymize_with_scratch(
                    &net,
                    &snapshot,
                    SegmentId(100),
                    &profile,
                    &keys,
                    nonce,
                    engine,
                    &mut CloakScratch::new(),
                )
            })
        });
        let mut scratch = CloakScratch::new();
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "reused_scratch"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                anonymize_with_scratch(
                    &net,
                    &snapshot,
                    SegmentId(100),
                    &profile,
                    &keys,
                    nonce,
                    engine,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

/// The PR 6 owner-batched cells: cloak a 16-owner population of one
/// snapshot through a single `anonymize_batch_with_scratch` call
/// (shared table state, structure-of-arrays round/hint arenas) vs the
/// per-owner `anonymize_with_scratch` loop. Receipts are bit-identical
/// (property-tested in `crates/cloak/tests/batch_prop.rs`), so the
/// delta is pure shared-state reuse and arena locality.
fn bench_batch_cloak(c: &mut Criterion) {
    let (net, snapshot, profile, _) = cloak_world();
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&net, 12);
    const OWNERS: u64 = 16;
    let key_vecs: Vec<Vec<Key256>> = (0..OWNERS)
        .map(|i| {
            KeyManager::from_seed(2, 100 + i)
                .iter()
                .map(|(_, k)| k)
                .collect()
        })
        .collect();
    let segments: Vec<SegmentId> = (0..OWNERS as u32).map(|i| SegmentId(60 + i * 7)).collect();
    let mut group = c.benchmark_group("batch_cloak");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, engine) in [
        ("rge", &rge as &dyn cloak::ReversibleEngine),
        ("rple", &rple),
    ] {
        let mut scratch = CloakScratch::new();
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "per_owner"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                let mut ok = 0usize;
                for (seg, keys) in segments.iter().zip(&key_vecs) {
                    ok += usize::from(
                        anonymize_with_scratch(
                            &net,
                            &snapshot,
                            *seg,
                            &profile,
                            keys,
                            nonce,
                            engine,
                            &mut scratch,
                        )
                        .is_ok(),
                    );
                }
                black_box(ok)
            })
        });
        let mut batch_scratch = BatchCloakScratch::new();
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "batched"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                let items: Vec<BatchCloakItem<'_>> = segments
                    .iter()
                    .zip(&key_vecs)
                    .map(|(seg, keys)| BatchCloakItem {
                        segment: *seg,
                        profile: &profile,
                        keys,
                        nonce,
                        max_attempts: 1,
                    })
                    .collect();
                let results = anonymize_batch_with_scratch(
                    &net,
                    &snapshot,
                    &items,
                    engine,
                    &mut batch_scratch,
                );
                black_box(results.iter().filter(|r| r.is_ok()).count())
            })
        });
    }
    group.finish();
}

fn bench_lbs_nearest(c: &mut Criterion) {
    let net = grid_city(16, 16, 100.0);
    let mut rng = StdRng::seed_from_u64(0x1b5);
    let store = PoiStore::generate(&net, 200, &mut rng);
    let region: Vec<SegmentId> = [200u32, 201, 216, 217].map(SegmentId).to_vec();
    let mut group = c.benchmark_group("lbs_nearest_query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("fresh_scratch", |b| {
        b.iter(|| {
            nearest_query_with(
                &net,
                &store,
                &region,
                PoiCategory::Restaurant,
                &mut SearchScratch::new(),
            )
            .len()
        })
    });
    let mut scratch = SearchScratch::new();
    group.bench_function("reused_scratch", |b| {
        b.iter(|| {
            nearest_query_with(&net, &store, &region, PoiCategory::Restaurant, &mut scratch).len()
        })
    });
    group.finish();
}

/// The PR 5 speedup cells: landmark-directed nearest search vs the
/// doubling reference, identical candidates. `dense` queries a common
/// category (POIs everywhere — the win is one bounded search instead of
/// doubling restarts); `sparse_far` queries a category with a single
/// remote POI (the win adds frontier pruning toward the goal).
fn bench_lbs_indexed_vs_reference(c: &mut Criterion) {
    let net = grid_city(16, 16, 100.0);
    // Build the one-time graph index outside the timed region: the
    // bench prices the per-query cost, which is what a serving loop
    // pays at steady state.
    let _ = net.landmark_table();
    let mut rng = StdRng::seed_from_u64(0x1b5);
    let dense = PoiStore::generate(&net, 200, &mut rng);
    let mut sparse = PoiStore::new(net.segment_count());
    // A single hospital in the far corner of the map.
    sparse.add(SegmentId(0), 25.0, PoiCategory::Hospital);
    let region: Vec<SegmentId> = [200u32, 201, 216, 217].map(SegmentId).to_vec();
    let mut group = c.benchmark_group("lbs_nearest_indexed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let mut scratch = SearchScratch::new();
    for (label, store, category) in [
        ("dense", &dense, PoiCategory::Restaurant),
        ("sparse_far", &sparse, PoiCategory::Hospital),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "reference"), &(), |b, ()| {
            b.iter(|| {
                nearest_query_reference_with(&net, store, &region, category, &mut scratch).len()
            })
        });
        group.bench_with_input(BenchmarkId::new(label, "indexed"), &(), |b, ()| {
            b.iter(|| nearest_query_with(&net, store, &region, category, &mut scratch).len())
        });
    }
    group.finish();
}

/// One pass of the keyed-draw workload: the keystream work of cloaking
/// a small population — per owner, one stream initialization (sponge
/// absorption of key and context) plus a run of draws, and one
/// chain-style `derive_key` ratchet. Returns a fold of the outputs so
/// the work cannot be optimized away.
fn keyed_draw_pass(streams: usize, draws: usize) -> u64 {
    let mut acc = 0u64;
    let mut chain = Key256::from_seed(0x1e57);
    for i in 0..streams {
        let key = Key256::from_seed(i as u64);
        let ctx = (i as u64).to_le_bytes();
        let mut s = DrawStream::new(key, &ctx);
        for _ in 0..draws {
            acc = acc.wrapping_add(s.next_u64());
        }
        chain = derive_key(chain, b"bench/ratchet");
    }
    acc ^ chain.as_bytes()[0] as u64
}

/// The PR 7 keystream cells: the ChaCha20-class sponge `DrawStream`
/// (initialization + draws) and the chain-ratchet `derive_key`, timed in
/// isolation from any graph work.
fn bench_keyed_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyed_draw");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("stream_init_plus_32_draws", |b| {
        b.iter(|| black_box(keyed_draw_pass(64, 32)))
    });
    group.bench_function("derive_key_ratchet", |b| {
        let mut chain = Key256::from_seed(7);
        b.iter(|| {
            for _ in 0..64 {
                chain = derive_key(chain, b"bench/ratchet");
            }
            black_box(chain)
        })
    });
    group.finish();
}

/// Plain-timed `keyed_draw` point, emitted as JSON when `BENCH_OUT` is
/// set — the keystream cell of the perf trajectory CI gates per commit.
/// Schema matches `pipeline_ticks.rs`:
/// `{ "keyed_draw": { "mean_tick_ms": f, "ticks_per_sec": f } }`, where
/// one "tick" is [`keyed_draw_pass`] over 512 streams × 32 draws.
fn write_json_point() {
    let Ok(path) = std::env::var("BENCH_OUT") else {
        return;
    };
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
    let measure = if quick {
        std::time::Duration::from_millis(400)
    } else {
        std::time::Duration::from_secs(2)
    };
    let runs: usize = std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    let mut mean_ms = f64::INFINITY;
    for _ in 0..runs {
        // Warm-up pass before timing.
        black_box(keyed_draw_pass(512, 32));
        let t0 = std::time::Instant::now();
        let mut ticks = 0u64;
        while t0.elapsed() < measure || ticks == 0 {
            black_box(keyed_draw_pass(512, 32));
            ticks += 1;
        }
        mean_ms = mean_ms.min(t0.elapsed().as_secs_f64() * 1e3 / ticks as f64);
    }
    println!("keyed_draw mean {mean_ms:.4} ms/pass (min of {runs})");
    let json = format!(
        "{{\n  \"keyed_draw\": {{ \"mean_tick_ms\": {mean_ms:.4}, \"ticks_per_sec\": {:.1} }}\n}}\n",
        1e3 / mean_ms
    );
    std::fs::write(&path, json).expect("write BENCH_OUT");
    println!("wrote bench point to {path}");
}

criterion_group!(
    benches,
    bench_adjacency,
    bench_single_cloak,
    bench_batch_cloak,
    bench_lbs_nearest,
    bench_lbs_indexed_vs_reference,
    bench_keyed_draw
);

fn main() {
    // `BENCH_OUT` is the CI trajectory mode: measure the keystream cell
    // plain-timed and emit JSON; the criterion groups are the local
    // exploration mode.
    if std::env::var("BENCH_OUT").is_ok() {
        write_json_point();
    } else {
        benches();
    }
}
