//! Micro-benches of the allocation-free hot path, with and without
//! scratch reuse, isolating each layer the refactor touched:
//!
//! * **adjacency expansion** — walking every segment's neighbors through
//!   the allocating `neighbor_segments` vs the borrowed CSR slice;
//! * **single-owner cloak** — one full `anonymize` with a throwaway
//!   [`cloak::CloakScratch`] per call vs one reused across calls;
//! * **LBS nearest query** — one `nearest_query` with a throwaway
//!   [`lbs::SearchScratch`] vs one reused across calls.
//!
//! The `fresh` and `reused` variants compute bit-identical results (the
//! scratch is plain state), so the delta is pure allocator traffic.

use cloak::{
    anonymize_with_scratch, CloakScratch, LevelRequirement, PrivacyProfile, RgeEngine, RpleEngine,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use keystream::{Key256, KeyManager};
use lbs::{nearest_query_with, PoiCategory, PoiStore, SearchScratch};
use mobisim::OccupancySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{grid_city, RoadNetwork, SegmentId};

fn bench_adjacency(c: &mut Criterion) {
    let net = grid_city(20, 20, 100.0);
    let mut group = c.benchmark_group("adjacency_full_sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("alloc_vec", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in net.segment_ids() {
                acc += net.neighbor_segments(s).len();
            }
            black_box(acc)
        })
    });
    group.bench_function("csr_slice", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in net.segment_ids() {
                acc += net.neighbor_segments_csr(s).len();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn cloak_world() -> (RoadNetwork, OccupancySnapshot, PrivacyProfile, Vec<Key256>) {
    let net = grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(6))
        .level(LevelRequirement::with_k(14))
        .build()
        .expect("valid profile");
    let keys = KeyManager::from_seed(2, 7).iter().map(|(_, k)| k).collect();
    (net, snapshot, profile, keys)
}

fn bench_single_cloak(c: &mut Criterion) {
    let (net, snapshot, profile, keys) = cloak_world();
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&net, 12);
    let mut group = c.benchmark_group("single_owner_cloak");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, engine) in [
        ("rge", &rge as &dyn cloak::ReversibleEngine),
        ("rple", &rple),
    ] {
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "fresh_scratch"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                anonymize_with_scratch(
                    &net,
                    &snapshot,
                    SegmentId(100),
                    &profile,
                    &keys,
                    nonce,
                    engine,
                    &mut CloakScratch::new(),
                )
            })
        });
        let mut scratch = CloakScratch::new();
        let mut nonce = 0u64;
        group.bench_with_input(BenchmarkId::new(label, "reused_scratch"), &(), |b, ()| {
            b.iter(|| {
                nonce += 1;
                anonymize_with_scratch(
                    &net,
                    &snapshot,
                    SegmentId(100),
                    &profile,
                    &keys,
                    nonce,
                    engine,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

fn bench_lbs_nearest(c: &mut Criterion) {
    let net = grid_city(16, 16, 100.0);
    let mut rng = StdRng::seed_from_u64(0x1b5);
    let store = PoiStore::generate(&net, 200, &mut rng);
    let region: Vec<SegmentId> = [200u32, 201, 216, 217].map(SegmentId).to_vec();
    let mut group = c.benchmark_group("lbs_nearest_query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("fresh_scratch", |b| {
        b.iter(|| {
            nearest_query_with(
                &net,
                &store,
                &region,
                PoiCategory::Restaurant,
                &mut SearchScratch::new(),
            )
            .len()
        })
    });
    let mut scratch = SearchScratch::new();
    group.bench_function("reused_scratch", |b| {
        b.iter(|| {
            nearest_query_with(&net, &store, &region, PoiCategory::Restaurant, &mut scratch).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_adjacency,
    bench_single_cloak,
    bench_lbs_nearest
);
criterion_main!(benches);
