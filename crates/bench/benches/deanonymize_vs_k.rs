//! Criterion bench for experiment B2: de-anonymization time (full peel to
//! L0) vs k, for RGE and RPLE.
//!
//! Expected shape: both scale with the number of removed segments; RPLE's
//! backward lookup is a table probe while RGE rebuilds the transition
//! table per step, so RGE costs more per removed segment.

use bench::{World, DEFAULT_T};
use cloak::{
    anonymize_with_retry, deanonymize, AnonymizationOutcome, LevelRequirement, PrivacyProfile,
    ReversibleEngine, RgeEngine, RpleEngine,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keystream::{Key256, KeyManager, Level};

fn prepare(
    world: &World,
    engine: &dyn ReversibleEngine,
    k: u32,
) -> (KeyManager, Vec<AnonymizationOutcome>) {
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(k))
        .build()
        .unwrap();
    let mgr = KeyManager::from_seed(1, 7);
    let keys: Vec<Key256> = mgr.iter().map(|(_, key)| key).collect();
    let sites = world.request_sites(24, k as u64 + 3);
    let outs = sites
        .iter()
        .enumerate()
        .filter_map(|(i, &site)| {
            anonymize_with_retry(
                &world.net,
                &world.snapshot,
                site,
                &profile,
                &keys,
                i as u64,
                engine,
                8,
            )
            .ok()
            .map(|(o, _)| o)
        })
        .collect();
    (mgr, outs)
}

fn bench_deanonymize(c: &mut Criterion) {
    let world = World::paper_scale(42);
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut group = c.benchmark_group("b2_deanonymize_vs_k");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for k in [5u32, 10, 20, 40, 80] {
        for (name, engine) in [("RGE", &rge as &dyn ReversibleEngine), ("RPLE", &rple)] {
            let (mgr, outs) = prepare(&world, engine, k);
            if outs.is_empty() {
                continue;
            }
            let peel = mgr.keys_down_to(Level(0)).unwrap();
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let out = &outs[i % outs.len()];
                    i += 1;
                    deanonymize(&world.net, &out.payload, &peel, engine)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_deanonymize);
criterion_main!(benches);
