//! Criterion bench for experiment B1: anonymization time vs k, for RGE,
//! RPLE and the non-reversible NRE baseline.
//!
//! Expected shape (paper §III): RPLE steps are cheaper than RGE (table
//! lookup vs on-the-fly table build); NRE is cheapest and irreversible.

use bench::{World, DEFAULT_T};
use cloak::{
    anonymize_with_retry, random_expansion, LevelRequirement, PrivacyProfile, RgeEngine, RpleEngine,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keystream::KeyManager;

fn bench_anonymize(c: &mut Criterion) {
    let world = World::paper_scale(42);
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut group = c.benchmark_group("b1_anonymize_vs_k");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for k in [5u32, 10, 20, 40, 80] {
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(k))
            .build()
            .unwrap();
        let mgr = KeyManager::from_seed(1, 7);
        let keys: Vec<_> = mgr.iter().map(|(_, key)| key).collect();
        let sites = world.request_sites(64, k as u64);

        group.bench_with_input(BenchmarkId::new("RGE", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let site = sites[i % sites.len()];
                i += 1;
                anonymize_with_retry(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &keys,
                    i as u64,
                    &rge,
                    8,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("RPLE", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let site = sites[i % sites.len()];
                i += 1;
                anonymize_with_retry(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &keys,
                    i as u64,
                    &rple,
                    8,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("NRE-baseline", k), &k, |b, _| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(k as u64);
            let req = LevelRequirement::with_k(k);
            let mut i = 0usize;
            b.iter(|| {
                let site = sites[i % sites.len()];
                i += 1;
                random_expansion(&world.net, &world.snapshot, site, &req, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_anonymize);
criterion_main!(benches);
