//! Criterion bench for experiment B3: anonymization time vs the number of
//! privacy levels (geometric per-level k).
//!
//! Expected shape: cost grows with the top level's k (the total region
//! size), not with the level count itself — levels only partition the
//! same chain.

use bench::{World, DEFAULT_T};
use cloak::{anonymize_with_retry, PrivacyProfile, ReversibleEngine, RgeEngine, RpleEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keystream::{Key256, KeyManager};

fn bench_levels(c: &mut Criterion) {
    let world = World::paper_scale(42);
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut group = c.benchmark_group("b3_levels");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for n in [2usize, 3, 4, 5] {
        let profile = PrivacyProfile::geometric(n, 5).unwrap();
        let mgr = KeyManager::from_seed(n, 7);
        let keys: Vec<Key256> = mgr.iter().map(|(_, key)| key).collect();
        let sites = world.request_sites(64, n as u64 + 9);
        for (name, engine) in [("RGE", &rge as &dyn ReversibleEngine), ("RPLE", &rple)] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let site = sites[i % sites.len()];
                    i += 1;
                    anonymize_with_retry(
                        &world.net,
                        &world.snapshot,
                        site,
                        &profile,
                        &keys,
                        i as u64,
                        engine,
                        8,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
