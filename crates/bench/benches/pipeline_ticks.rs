//! Criterion bench: sustained throughput of the continuous anonymization
//! pipeline, in ticks per second.
//!
//! Each iteration is one full tick — traffic step, snapshot recapture +
//! `Arc` swap, batched re-anonymization of the tracked owners, and LBS
//! probes — so mean time/iter is the steady-state tick latency; its
//! reciprocal is sustained ticks/sec. Run once with verification off
//! (pure pipeline cost) and once with the full invariant check, for both
//! engines.

use anonymizer::{AnonymizerConfig, ContinuousPipeline, EngineChoice, PipelineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobisim::SimConfig;
use roadnet::grid_city;

fn pipeline(engine: EngineChoice, verify: bool) -> ContinuousPipeline {
    ContinuousPipeline::new(
        grid_city(12, 12, 100.0),
        SimConfig {
            cars: 1000,
            seed: 42,
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
        PipelineConfig {
            tracked_owners: 64,
            verify,
            ..Default::default()
        },
    )
}

fn bench_pipeline_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_tick_64owners");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for (engine, label) in [
        (EngineChoice::Rge, "rge"),
        (EngineChoice::Rple { t_len: 12 }, "rple"),
    ] {
        for verify in [false, true] {
            let mut p = pipeline(engine, verify);
            let name = if verify { "verified" } else { "raw" };
            group.bench_with_input(BenchmarkId::new(label, name), &verify, |b, _| {
                b.iter(|| {
                    let report = p.tick().expect("invariants hold");
                    assert!(report.issued > 0);
                    report.issued
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_ticks);
criterion_main!(benches);
