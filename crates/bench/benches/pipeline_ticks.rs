//! Criterion bench: sustained throughput of the continuous anonymization
//! pipeline, in ticks per second.
//!
//! Each iteration is one full tick — traffic step, snapshot recapture +
//! `Arc` swap, batched re-anonymization of the tracked owners, and LBS
//! probes — so mean time/iter is the steady-state tick latency; its
//! reciprocal is sustained ticks/sec. Run once with verification off
//! (pure pipeline cost) and once with the full invariant check, for both
//! engines.
//!
//! Environment knobs (for CI's perf-trajectory job):
//!
//! * `BENCH_QUICK=1` shrinks warm-up/measurement so the run finishes in
//!   a couple of seconds;
//! * `BENCH_OUT=path` switches to the CI trajectory mode: a single
//!   plain-timed pass over the four configurations, written as JSON
//!   (the `BENCH_pipeline.json` artifact) instead of the criterion
//!   groups.

use anonymizer::{
    AnonymizerConfig, AttackConfig, ContinuousPipeline, EngineChoice, PipelineConfig,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use mobisim::SimConfig;
use roadnet::grid_city;
use std::time::{Duration, Instant};

fn pipeline(engine: EngineChoice, verify: bool) -> ContinuousPipeline {
    pipeline_with(engine, verify, false)
}

fn pipeline_with(engine: EngineChoice, verify: bool, attack: bool) -> ContinuousPipeline {
    ContinuousPipeline::new(
        grid_city(12, 12, 100.0),
        SimConfig {
            cars: 1000,
            seed: 42,
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
        PipelineConfig {
            tracked_owners: 64,
            verify,
            attack: attack.then(|| AttackConfig {
                // Rollups only: the long-form log would grow unboundedly
                // over a timed run.
                keep_records: false,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
}

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn bench_pipeline_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_tick_64owners");
    group.sample_size(10);
    let (warm_ms, measure_ms) = if quick() { (100, 400) } else { (500, 3000) };
    group.warm_up_time(Duration::from_millis(warm_ms));
    group.measurement_time(Duration::from_millis(measure_ms));

    for (engine, label) in [
        (EngineChoice::Rge, "rge"),
        (EngineChoice::Rple { t_len: 12 }, "rple"),
    ] {
        for verify in [false, true] {
            let mut p = pipeline(engine, verify);
            let name = if verify { "verified" } else { "raw" };
            group.bench_with_input(BenchmarkId::new(label, name), &verify, |b, _| {
                b.iter(|| {
                    let report = p.tick().expect("invariants hold");
                    assert!(report.issued > 0);
                    report.issued
                })
            });
        }
    }
    group.finish();
}

/// Plain-timed measurement of the same workload, emitted as JSON when
/// `BENCH_OUT` is set — one point of the perf trajectory CI records per
/// commit. Schema: `{ "<engine>_<mode>": { "mean_tick_ms": f, "ticks_per_sec": f } }`.
///
/// `BENCH_RUNS=n` (default 1) repeats each configuration and keeps the
/// per-config minimum — the same min-of-n methodology as the committed
/// `BENCH_pipeline.json` points, so CI's fresh point carries comparable
/// noise to the baseline it is gated against.
fn write_json_point() {
    let Ok(path) = std::env::var("BENCH_OUT") else {
        return;
    };
    let measure = if quick() {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(2)
    };
    let runs: usize = std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    let mut entries = Vec::new();
    for (engine, label) in [
        (EngineChoice::Rge, "rge"),
        (EngineChoice::Rple { t_len: 12 }, "rple"),
    ] {
        // (mode name, verify, attack leg): the `attacked` cells price a
        // tick with the full adversary + NRE control riding along — the
        // configuration the owner-batched core accelerates most.
        for (mode, verify, attack) in [
            ("raw", false, false),
            ("verified", true, false),
            ("attacked", false, true),
        ] {
            let mut mean_ms = f64::INFINITY;
            for _ in 0..runs {
                let mut p = pipeline_with(engine, verify, attack);
                // Warm-up: reach buffer high-water marks before timing.
                for _ in 0..20 {
                    p.tick().expect("invariants hold");
                }
                let t0 = Instant::now();
                let mut ticks = 0u64;
                while t0.elapsed() < measure || ticks == 0 {
                    p.tick().expect("invariants hold");
                    ticks += 1;
                }
                mean_ms = mean_ms.min(t0.elapsed().as_secs_f64() * 1e3 / ticks as f64);
            }
            println!("{label}/{mode:<30} mean {mean_ms:.3} ms/tick (min of {runs})");
            entries.push(format!(
                "  \"{label}_{mode}\": {{ \"mean_tick_ms\": {mean_ms:.4}, \"ticks_per_sec\": {:.1} }}",
                1e3 / mean_ms
            ));
        }
    }
    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    std::fs::write(&path, json).expect("write BENCH_OUT");
    println!("wrote bench point to {path}");
}

criterion_group!(benches, bench_pipeline_ticks);

fn main() {
    // `BENCH_OUT` is the CI trajectory mode: measure once, plain-timed,
    // and emit JSON — running the criterion groups too would double the
    // job's measurement work for output it discards.
    if std::env::var("BENCH_OUT").is_ok() {
        write_json_point();
    } else {
        benches();
    }
}
