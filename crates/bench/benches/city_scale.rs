//! Criterion bench: the city-scale trajectory — generated road
//! networks, graph-index build, and sustained sharded pipeline ticks.
//!
//! Three cost layers, measured per city size:
//!
//! 1. **map generation** — `roadnet::city_map(seed, segments)`, the
//!    arterial-grid + local-street synthesizer;
//! 2. **graph-index build** — landmark distance grid + packed
//!    reachability, the parallel two-phase build (worker count from
//!    [`roadnet::IndexBudget`]);
//! 3. **sharded ticks** — steady-state [`ShardedPipeline`] tick latency
//!    (8 shards, 128 tracked owners, verification on), at each
//!    `{segments} × {cars}` cell of the city grid.
//!
//! Environment knobs, matching `pipeline_ticks.rs`:
//!
//! * `BENCH_QUICK=1` restricts to the 10k-segment column and shrinks
//!   the measurement windows so CI finishes in seconds;
//! * `BENCH_OUT=path` switches to the CI trajectory mode: plain-timed
//!   passes written as JSON (the `BENCH_city.json` artifact) instead of
//!   the criterion groups;
//! * `BENCH_RUNS=n` keeps the per-cell minimum of `n` runs.

use anonymizer::{AnonymizerConfig, PipelineConfig, ShardedPipeline};
use criterion::{criterion_group, BenchmarkId, Criterion};
use mobisim::SimConfig;
use roadnet::city_map;
use std::time::{Duration, Instant};

/// One seed for every cell: the map, not its RNG, is what scales.
const SEED: u64 = 7;
const SHARDS: usize = 8;
const OWNERS: usize = 128;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn runs() -> usize {
    std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// `10_000 -> "10k"` — cell-key suffixes.
fn k(n: usize) -> String {
    format!("{}k", n / 1000)
}

fn sharded(segments: usize, cars: usize) -> ShardedPipeline {
    ShardedPipeline::new(
        city_map(SEED, segments),
        SimConfig {
            cars,
            seed: 42,
            ..Default::default()
        },
        AnonymizerConfig::default(),
        PipelineConfig {
            tracked_owners: OWNERS,
            lbs_probes: 0,
            ..Default::default()
        },
        SHARDS,
    )
}

fn bench_city_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("city_scale");
    group.sample_size(10);
    let (warm_ms, measure_ms) = if quick() { (200, 800) } else { (1000, 4000) };
    group.warm_up_time(Duration::from_millis(warm_ms));
    group.measurement_time(Duration::from_millis(measure_ms));

    // Interactive criterion runs keep to the 10k column; the 100k cells
    // are the JSON trajectory's job (minutes, not samples).
    let segments = 10_000;
    group.bench_with_input(
        BenchmarkId::new("citygen", k(segments)),
        &segments,
        |b, &n| b.iter(|| city_map(SEED, n).segment_count()),
    );
    group.bench_with_input(
        BenchmarkId::new("index_build", k(segments)),
        &segments,
        |b, &n| {
            b.iter(|| {
                let net = city_map(SEED, n);
                net.graph_index().landmarks().count()
            })
        },
    );
    let mut p = sharded(segments, 10_000);
    group.bench_with_input(
        BenchmarkId::new("sharded_tick", format!("{}_{}cars", k(segments), k(10_000))),
        &segments,
        |b, _| {
            b.iter(|| {
                let report = p.tick().expect("invariants hold");
                assert!(report.issued + report.failed > 0);
                report.issued
            })
        },
    );
    group.finish();
}

/// Plain-timed trajectory point, emitted as JSON when `BENCH_OUT` is
/// set. Schema (one object, flat):
///
/// ```text
/// "city_gen_<segs>":            { "mean_ms": f }
/// "city_index_<segs>":          { "mean_ms": f }
/// "city_tick_<segs>_<cars>":    { "mean_tick_ms": f, "ticks_per_sec": f, "issued_per_tick": f }
/// ```
///
/// Quick mode measures the 10k-segment column only; the full mode adds
/// the 100k column (both car counts), which is the committed
/// `BENCH_city.json` shape.
fn write_json_point() {
    let Ok(path) = std::env::var("BENCH_OUT") else {
        return;
    };
    let runs = runs();
    let segment_grid: &[usize] = if quick() {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    let car_grid: &[usize] = if quick() {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    // Tick counts bound the full run's wall clock on a 1-CPU runner:
    // the 100k cells cost tens of ms per tick, so a fixed budget beats
    // a fixed duration here.
    let (warm_ticks, timed_ticks) = if quick() { (2, 8) } else { (5, 30) };
    let mut entries = Vec::new();

    for &segments in segment_grid {
        let mut gen_ms = f64::INFINITY;
        let mut index_ms = f64::INFINITY;
        // The build cells are milliseconds, not seconds: a handful of
        // extra repeats costs nothing and keeps the gated minimum out
        // of scheduler-noise territory on shared runners.
        for _ in 0..runs.max(5) {
            let t0 = Instant::now();
            let net = city_map(SEED, segments);
            gen_ms = gen_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            net.graph_index();
            index_ms = index_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "city_gen_{:<18} min {gen_ms:.1} ms (min of {runs})",
            k(segments)
        );
        println!(
            "city_index_{:<16} min {index_ms:.1} ms (min of {runs})",
            k(segments)
        );
        entries.push(format!(
            "  \"city_gen_{}\": {{ \"mean_ms\": {gen_ms:.2} }}",
            k(segments)
        ));
        entries.push(format!(
            "  \"city_index_{}\": {{ \"mean_ms\": {index_ms:.2} }}",
            k(segments)
        ));

        for &cars in car_grid {
            let mut mean_ms = f64::INFINITY;
            let mut issued_per_tick = 0.0;
            for _ in 0..runs {
                let mut p = sharded(segments, cars);
                for _ in 0..warm_ticks {
                    p.tick().expect("invariants hold");
                }
                let t0 = Instant::now();
                let mut issued = 0usize;
                for _ in 0..timed_ticks {
                    issued += p.tick().expect("invariants hold").issued;
                }
                let ms = t0.elapsed().as_secs_f64() * 1e3 / timed_ticks as f64;
                if ms < mean_ms {
                    mean_ms = ms;
                    issued_per_tick = issued as f64 / timed_ticks as f64;
                }
            }
            let cell = format!("city_tick_{}_{}", k(segments), k(cars));
            println!(
                "{cell:<28} mean {mean_ms:.2} ms/tick, {issued_per_tick:.0} receipts/tick (min of {runs})"
            );
            entries.push(format!(
                "  \"{cell}\": {{ \"mean_tick_ms\": {mean_ms:.3}, \"ticks_per_sec\": {:.1}, \"issued_per_tick\": {issued_per_tick:.1} }}",
                1e3 / mean_ms
            ));
        }
    }
    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    std::fs::write(&path, json).expect("write BENCH_OUT");
    println!("wrote city bench point to {path}");
}

criterion_group!(benches, bench_city_scale);

fn main() {
    if std::env::var("BENCH_OUT").is_ok() {
        write_json_point();
    } else {
        benches();
    }
}
