//! Criterion bench for experiment B4: RPLE pre-assignment (Algorithm 1)
//! cost vs transition-list length T, on the paper-scale map.
//!
//! Expected shape: build time and memory grow roughly linearly in T
//! (every (segment, neighbor) pair scans at most T slots), matching the
//! paper's "larger memory space to store the collision-free links".

use bench::World;
use cloak::PreassignedTables;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_preassign(c: &mut Criterion) {
    let world = World::paper_scale(42);
    let mut group = c.benchmark_group("b4_preassign");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for t in [4usize, 6, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| PreassignedTables::build(&world.net, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preassign);
criterion_main!(benches);
