//! Regenerates every experiment table of the reproduction.
//!
//! Usage:
//!   repro [b1|b2|b3|b4|b5|b6|b7|b8|all] [--small] [--trials N]
//!
//! By default runs on the paper-scale world (Atlanta-like map, 10,000
//! cars); `--small` switches to a 20×20 grid with 1,500 cars for quick
//! iterations.

use bench::World;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut small = false;
    let mut trials = 30usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--small" => small = true,
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if other.starts_with('-') => usage(),
            other => which.push(other.to_lowercase()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |id: &str| all || which.iter().any(|w| w == id);

    let t0 = Instant::now();
    eprintln!(
        "building {} world...",
        if small { "small" } else { "paper-scale" }
    );
    let world = if small {
        World::small(42)
    } else {
        World::paper_scale(42)
    };
    eprintln!(
        "world ready: {} segments, {} users ({} ms)\n",
        world.net.segment_count(),
        world.snapshot.total_users(),
        t0.elapsed().as_millis()
    );

    let ks = [5u32, 10, 20, 40, 80];
    if want("b1") {
        print_timed(|| bench::b1_anonymize_vs_k(&world, &ks, trials));
    }
    if want("b2") {
        print_timed(|| bench::b2_deanonymize_vs_k(&world, &ks, trials));
    }
    if want("b3") {
        print_timed(|| bench::b3_levels(&world, &[2, 3, 4, 5], trials));
    }
    if want("b4") {
        print_timed(|| bench::b4_preassign(&world, &[4, 6, 8, 12, 16]));
    }
    if want("b5") {
        print_timed(|| bench::b5_privacy(&world, 20, 300));
    }
    if want("b6") {
        print_timed(|| {
            bench::b6_success_vs_tolerance(&world, 20, &[0.8, 1.0, 1.5, 2.0, 3.0], trials)
        });
    }
    if want("b7") {
        print_timed(|| bench::b7_quality_vs_k(&world, &ks, trials));
    }
    if want("b8") {
        print_timed(|| bench::b8_overhead(&world, &ks, trials));
    }
    if want("b9") {
        print_timed(|| bench::b9_query_cost_vs_k(&world, &ks, trials.min(15)));
    }
    if want("b10") {
        print_timed(|| bench::b10_collision_ablation(&world, &ks, trials));
    }
}

fn print_timed<F: FnOnce() -> bench::Table>(f: F) {
    let t0 = Instant::now();
    let table = f();
    println!("{table}");
    println!(
        "  ({} ran in {:.1} s)\n",
        table.id,
        t0.elapsed().as_secs_f64()
    );
}

fn usage() -> ! {
    eprintln!("usage: repro [b1..b10|all] [--small] [--trials N]");
    std::process::exit(2);
}
