//! Shared experiment harness for the ReverseCloak reproduction.
//!
//! Every table/figure of the experiment index (DESIGN.md §5) is
//! implemented as a function returning printable rows, shared between the
//! `repro` binary (which prints the paper-style tables) and the criterion
//! benches (which time the same workloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cloak::{
    anonymize_with_retry, deanonymize, random_expansion, LevelRequirement, PreassignedTables,
    PrivacyProfile, RegionQuality, ReversibleEngine, RgeEngine, RpleEngine, SpatialTolerance,
    SuccessRate,
};
use keystream::{Key256, KeyManager, Level};
use mobisim::{OccupancySnapshot, SimConfig, Simulation};
use roadnet::{RoadNetwork, SegmentId};
use std::time::Instant;

/// The default transition-list length for RPLE in comparisons.
pub const DEFAULT_T: usize = 12;

/// The paper-style experiment world: a map plus frozen traffic.
pub struct World {
    /// The road network.
    pub net: RoadNetwork,
    /// Frozen users-per-segment at request time.
    pub snapshot: OccupancySnapshot,
    /// Segments with at least one user (cloaking request sites).
    pub occupied: Vec<SegmentId>,
}

impl World {
    /// Builds the full paper-scale world (6,979 junctions, 9,187
    /// segments, 10,000 cars).
    pub fn paper_scale(seed: u64) -> Self {
        Self::build(roadnet::atlanta_like(seed), 10_000, seed)
    }

    /// A smaller world for quick runs and CI.
    pub fn small(seed: u64) -> Self {
        Self::build(roadnet::grid_city(20, 20, 100.0), 1_500, seed)
    }

    fn build(net: RoadNetwork, cars: usize, seed: u64) -> Self {
        let mut sim = Simulation::new(
            net,
            SimConfig {
                cars,
                seed,
                ..Default::default()
            },
        );
        sim.run(3, 10.0);
        let snapshot = OccupancySnapshot::capture(&sim);
        let occupied = snapshot.occupied_segments().collect();
        World {
            net: sim.network().clone(),
            snapshot,
            occupied,
        }
    }

    /// Deterministic pseudo-random request sites.
    pub fn request_sites(&self, trials: usize, seed: u64) -> Vec<SegmentId> {
        let mut state = seed ^ 0x5bf0_3635;
        (0..trials)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.occupied[(state >> 33) as usize % self.occupied.len()]
            })
            .collect()
    }
}

/// One row of a printable experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Column values, already formatted.
    pub cells: Vec<String>,
}

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (e.g. "B1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<&'static str>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.cells.get(i).map_or(0, |c| c.len()))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, "{h:>w$}  ")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (c, w) in row.cells.iter().zip(&widths) {
                write!(f, "{c:>w$}  ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn single_level_profile(k: u32) -> PrivacyProfile {
    PrivacyProfile::builder()
        .level(LevelRequirement::with_k(k))
        .build()
        .expect("k >= 1")
}

fn keys_for(profile: &PrivacyProfile, seed: u64) -> (KeyManager, Vec<Key256>) {
    let mgr = KeyManager::from_seed(profile.level_count(), seed);
    let keys = mgr.iter().map(|(_, k)| k).collect();
    (mgr, keys)
}

/// Timed anonymization over `sites`; returns (mean µs, success rate,
/// mean region size).
pub fn time_anonymize(
    world: &World,
    engine: &dyn ReversibleEngine,
    profile: &PrivacyProfile,
    sites: &[SegmentId],
) -> (f64, SuccessRate, f64) {
    let (_, keys) = keys_for(profile, 0xbead);
    let mut total_us = 0.0;
    let mut sr = SuccessRate::new();
    let mut sizes = 0usize;
    for (i, &site) in sites.iter().enumerate() {
        let t0 = Instant::now();
        let result = anonymize_with_retry(
            &world.net,
            &world.snapshot,
            site,
            profile,
            &keys,
            i as u64 + 1,
            engine,
            8,
        );
        total_us += t0.elapsed().as_secs_f64() * 1e6;
        match result {
            Ok((out, _)) => {
                sizes += out.payload.region_size();
                sr.record(true);
            }
            Err(_) => sr.record(false),
        }
    }
    let succ = sr.successes.max(1) as f64;
    (total_us / sites.len() as f64, sr, sizes as f64 / succ)
}

/// B1: anonymization time vs δk for RGE, RPLE and the NRE baseline.
pub fn b1_anonymize_vs_k(world: &World, ks: &[u32], trials: usize) -> Table {
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut rows = Vec::new();
    for &k in ks {
        let profile = single_level_profile(k);
        let sites = world.request_sites(trials, 0x517e);
        let (rge_us, _, rge_size) = time_anonymize(world, &rge, &profile, &sites);
        let (rple_us, rple_sr, _) = time_anonymize(world, &rple, &profile, &sites);
        // NRE baseline.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(k as u64);
        let req = LevelRequirement::with_k(k);
        let t0 = Instant::now();
        for &site in &sites {
            let _ = random_expansion(&world.net, &world.snapshot, site, &req, &mut rng);
        }
        let nre_us = t0.elapsed().as_secs_f64() * 1e6 / sites.len() as f64;
        rows.push(Row {
            cells: vec![
                k.to_string(),
                format!("{rge_us:.0}"),
                format!("{rple_us:.0}"),
                format!("{nre_us:.0}"),
                format!("{rge_size:.1}"),
                format!("{:.2}", rple_sr.rate()),
            ],
        });
    }
    Table {
        id: "B1",
        title: "anonymization time vs k (µs/request)",
        headers: vec!["k", "RGE", "RPLE", "NRE", "|region|", "RPLE succ"],
        rows,
    }
}

/// B2: de-anonymization (full peel) time vs δk for RGE and RPLE.
pub fn b2_deanonymize_vs_k(world: &World, ks: &[u32], trials: usize) -> Table {
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let engines: [&dyn ReversibleEngine; 2] = [&rge, &rple];
    let mut rows = Vec::new();
    for &k in ks {
        let profile = single_level_profile(k);
        let sites = world.request_sites(trials, 0x517e);
        let mut cells = vec![k.to_string()];
        for engine in engines {
            let (mgr, keys) = keys_for(&profile, 0xbead);
            let mut total_us = 0.0;
            let mut done = 0;
            for (i, &site) in sites.iter().enumerate() {
                if let Ok((out, _)) = anonymize_with_retry(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &keys,
                    i as u64 + 1,
                    engine,
                    8,
                ) {
                    let peel = mgr.keys_down_to(Level(0)).unwrap();
                    let t0 = Instant::now();
                    let view = deanonymize(&world.net, &out.payload, &peel, engine)
                        .expect("reversal always succeeds with the right keys");
                    total_us += t0.elapsed().as_secs_f64() * 1e6;
                    assert_eq!(view.segments, vec![site]);
                    done += 1;
                }
            }
            cells.push(format!("{:.0}", total_us / done.max(1) as f64));
        }
        rows.push(Row { cells });
    }
    Table {
        id: "B2",
        title: "de-anonymization time vs k, full peel to L0 (µs/request)",
        headers: vec!["k", "RGE", "RPLE"],
        rows,
    }
}

/// B3: anonymization time vs number of levels (geometric k).
pub fn b3_levels(world: &World, level_counts: &[usize], trials: usize) -> Table {
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut rows = Vec::new();
    for &n in level_counts {
        let profile = PrivacyProfile::geometric(n, 5).unwrap();
        let sites = world.request_sites(trials, 0x517e);
        let (rge_us, _, size) = time_anonymize(world, &rge, &profile, &sites);
        let (rple_us, _, _) = time_anonymize(world, &rple, &profile, &sites);
        rows.push(Row {
            cells: vec![
                n.to_string(),
                format!("{:.0}", 5 * (1u32 << (n - 1))),
                format!("{rge_us:.0}"),
                format!("{rple_us:.0}"),
                format!("{size:.1}"),
            ],
        });
    }
    Table {
        id: "B3",
        title: "anonymization time vs number of levels (k = 5·2^i, µs/request)",
        headers: vec!["levels", "top k", "RGE", "RPLE", "|region|"],
        rows,
    }
}

/// B4: RPLE pre-assignment cost and memory vs transition-list length T.
pub fn b4_preassign(world: &World, ts: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &t in ts {
        let t0 = Instant::now();
        let tables = PreassignedTables::build(&world.net, t);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(Row {
            cells: vec![
                t.to_string(),
                format!("{ms:.1}"),
                format!("{:.2}", tables.memory_bytes() as f64 / (1 << 20) as f64),
                tables.placed_links().to_string(),
                tables.dropped_links().to_string(),
            ],
        });
    }
    Table {
        id: "B4",
        title: "RPLE pre-assignment vs transition-list length T",
        headers: vec![
            "T",
            "build ms",
            "memory MiB",
            "links placed",
            "links dropped",
        ],
        rows,
    }
}

/// B5: privacy strength — keyless adversary vs key holder.
pub fn b5_privacy(world: &World, k: u32, trials: u32) -> Table {
    let engine = RgeEngine::new();
    let profile = single_level_profile(k);
    let site = world.occupied[world.occupied.len() / 2];
    let (hit, predicted) = cloak::attack::guess_success_rate(
        &world.net,
        &world.snapshot,
        site,
        &profile,
        &engine,
        trials,
        0xa11ce,
    );
    let (support, dev) =
        cloak::attack::selection_uniformity(&world.net, site, &engine, 3000, 0xcafe);
    // Key-holder recovery rate (must be 1.0).
    let (mgr, keys) = keys_for(&profile, 0xbead);
    let mut recovered = SuccessRate::new();
    let mut entropy_sum = 0.0;
    let sites = world.request_sites(50, 0xd00d);
    for (i, &s) in sites.iter().enumerate() {
        if let Ok((out, _)) = anonymize_with_retry(
            &world.net,
            &world.snapshot,
            s,
            &profile,
            &keys,
            i as u64,
            &engine,
            8,
        ) {
            entropy_sum += cloak::attack::l0_posterior_entropy(&out.payload.segments);
            let view = deanonymize(
                &world.net,
                &out.payload,
                &mgr.keys_down_to(Level(0)).unwrap(),
                &engine,
            )
            .unwrap();
            recovered.record(view.segments == vec![s]);
        }
    }
    Table {
        id: "B5",
        title: "privacy strength: keyless adversary vs key holder",
        headers: vec!["metric", "value", "reference"],
        rows: vec![
            Row {
                cells: vec![
                    "keyless guess hit rate".into(),
                    format!("{hit:.4}"),
                    format!("{predicted:.4} (uniform 1/|region|)"),
                ],
            },
            Row {
                cells: vec![
                    "first-transition max deviation".into(),
                    format!("{dev:.4}"),
                    format!("0 ideal, over {support} candidates"),
                ],
            },
            Row {
                cells: vec![
                    "mean adversary entropy (bits)".into(),
                    format!("{:.2}", entropy_sum / recovered.attempts.max(1) as f64),
                    format!("log2(k·region scale) ≈ {:.2}", (k as f64).log2()),
                ],
            },
            Row {
                cells: vec![
                    "key-holder exact recovery".into(),
                    format!("{:.2}", recovered.rate()),
                    "1.00 required".into(),
                ],
            },
            {
                let adv = cloak::attack::density_guess_success_rate(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &engine,
                    trials,
                    0xdead,
                );
                Row {
                    cells: vec![
                        "density-aware adversary hit rate".into(),
                        format!("{:.4}", adv.hit_rate),
                        format!(
                            "{:.4} posterior mass; ≤ {:.4} bound (k-anonymity, not a chain leak)",
                            adv.true_posterior_mass, adv.max_posterior_mass
                        ),
                    ],
                }
            },
        ],
    }
}

/// B6: cloaking success rate vs spatial tolerance σs (as a multiple of
/// the expected region extent for the requested k).
pub fn b6_success_vs_tolerance(world: &World, k: u32, factors: &[f64], trials: usize) -> Table {
    let mean_len =
        world.net.total_length(world.net.segment_ids()) / world.net.segment_count() as f64;
    // Expected segments needed ≈ k / mean users-per-segment.
    let density = world.snapshot.total_users() as f64 / world.net.segment_count() as f64;
    let base = k as f64 / density * mean_len;
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut rows = Vec::new();
    for &f in factors {
        let tol = SpatialTolerance::TotalLength(base * f);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(k).tolerance(tol))
            .build()
            .unwrap();
        let sites = world.request_sites(trials, 0x517e);
        let mut cells = vec![format!("{f:.1}")];
        for engine in [&rge as &dyn ReversibleEngine, &rple] {
            let (_, sr, _) = time_anonymize(world, engine, &profile, &sites);
            cells.push(format!("{:.2}", sr.rate()));
        }
        rows.push(Row { cells });
    }
    Table {
        id: "B6",
        title: "cloaking success rate vs spatial tolerance (σs as multiple of expected extent)",
        headers: vec!["σs factor", "RGE", "RPLE"],
        rows,
    }
}

/// B7: relative anonymity and relative spatial resolution vs k.
pub fn b7_quality_vs_k(world: &World, ks: &[u32], trials: usize) -> Table {
    let engine = RgeEngine::new();
    let mut rows = Vec::new();
    for &k in ks {
        let mean_len =
            world.net.total_length(world.net.segment_ids()) / world.net.segment_count() as f64;
        let density = world.snapshot.total_users() as f64 / world.net.segment_count() as f64;
        let tol = SpatialTolerance::TotalLength(3.0 * k as f64 / density * mean_len);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(k).tolerance(tol))
            .build()
            .unwrap();
        let (_, keys) = keys_for(&profile, 0xbead);
        let sites = world.request_sites(trials, 0x517e);
        let mut rel_k = 0.0;
        let mut rel_s = 0.0;
        let mut done = 0;
        for (i, &site) in sites.iter().enumerate() {
            if let Ok((out, _)) = anonymize_with_retry(
                &world.net,
                &world.snapshot,
                site,
                &profile,
                &keys,
                i as u64,
                &engine,
                8,
            ) {
                let q = RegionQuality::measure(&world.net, &world.snapshot, &profile, &out);
                rel_k += q.relative_anonymity;
                rel_s += q.relative_spatial_resolution;
                done += 1;
            }
        }
        let d = done.max(1) as f64;
        rows.push(Row {
            cells: vec![
                k.to_string(),
                format!("{:.2}", rel_k / d),
                format!("{:.2}", rel_s / d),
                format!("{done}/{}", sites.len()),
            ],
        });
    }
    Table {
        id: "B7",
        title:
            "relative anonymity (achieved/requested k) and relative spatial resolution vs k (RGE)",
        headers: vec!["k", "rel. anonymity", "rel. resolution", "succeeded"],
        rows,
    }
}

/// B8 (ablation): reversibility overhead — draw rounds per added segment
/// and voided rounds, RGE vs RPLE.
pub fn b8_overhead(world: &World, ks: &[u32], trials: usize) -> Table {
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut rows = Vec::new();
    for &k in ks {
        let profile = single_level_profile(k);
        let (_, keys) = keys_for(&profile, 0xbead);
        let sites = world.request_sites(trials, 0x517e);
        let mut cells = vec![k.to_string()];
        for engine in [&rge as &dyn ReversibleEngine, &rple] {
            let mut draws = 0u64;
            let mut voided = 0u64;
            let mut added = 0u64;
            for (i, &site) in sites.iter().enumerate() {
                if let Ok((out, _)) = anonymize_with_retry(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &keys,
                    i as u64,
                    engine,
                    8,
                ) {
                    for l in &out.per_level {
                        draws += l.draws as u64;
                        voided += l.voided as u64;
                        added += l.added as u64;
                    }
                }
            }
            cells.push(format!("{:.2}", draws as f64 / added.max(1) as f64));
            cells.push(format!("{:.2}", voided as f64 / added.max(1) as f64));
        }
        rows.push(Row { cells });
    }
    Table {
        id: "B8",
        title: "reversibility overhead: draw rounds per added segment (ablation)",
        headers: vec!["k", "RGE draws", "RGE voided", "RPLE draws", "RPLE voided"],
        rows,
    }
}

/// B9: anonymous query-processing cost vs k — the trade-off `σs` exists
/// to bound (paper §II-A: region size "has a direct influence on the
/// performance of the anonymous query processing technique").
pub fn b9_query_cost_vs_k(world: &World, ks: &[u32], trials: usize) -> Table {
    use lbs::{nearest_query, refine_nearest, PoiCategory, PoiStore};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x901);
    let store = PoiStore::generate(&world.net, world.net.segment_count() / 10, &mut rng);
    let engine = RgeEngine::new();
    let mut rows = Vec::new();
    for &k in ks {
        let profile = single_level_profile(k);
        let (_, keys) = keys_for(&profile, 0xbead);
        let sites = world.request_sites(trials, 0x517e);
        let mut cand = 0usize;
        let mut visited = 0usize;
        let mut q_us = 0.0;
        let mut exact_cand = 0usize;
        let mut refine_ok = 0usize;
        let mut done = 0usize;
        for (i, &site) in sites.iter().enumerate() {
            let Ok((out, _)) = anonymize_with_retry(
                &world.net,
                &world.snapshot,
                site,
                &profile,
                &keys,
                i as u64,
                &engine,
                8,
            ) else {
                continue;
            };
            let t0 = Instant::now();
            let answer = nearest_query(
                &world.net,
                &store,
                &out.payload.segments,
                PoiCategory::Restaurant,
            );
            q_us += t0.elapsed().as_secs_f64() * 1e6;
            cand += answer.len();
            visited += answer.segments_visited;
            // The exact (non-anonymous) query for comparison.
            let exact = nearest_query(&world.net, &store, &[site], PoiCategory::Restaurant);
            exact_cand += exact.len();
            // The true nearest must be recoverable from the candidate set.
            if let (Some(a), Some(b)) = (
                refine_nearest(&world.net, &answer.candidates, site),
                refine_nearest(&world.net, &exact.candidates, site),
            ) {
                if a.id == b.id {
                    refine_ok += 1;
                }
            }
            done += 1;
        }
        let d = done.max(1) as f64;
        rows.push(Row {
            cells: vec![
                k.to_string(),
                format!("{:.1}", cand as f64 / d),
                format!("{:.1}", exact_cand as f64 / d),
                format!("{:.0}", visited as f64 / d),
                format!("{:.0}", q_us / d),
                format!("{:.2}", refine_ok as f64 / d),
            ],
        });
    }
    Table {
        id: "B9",
        title: "anonymous query processing cost vs k (nearest-POI, RGE regions)",
        headers: vec![
            "k",
            "candidates",
            "exact cands",
            "segs visited",
            "query µs",
            "refine match",
        ],
        rows,
    }
}

/// B10 (ablation): the paper's "collision" issue quantified — fraction of
/// backward steps with multiple consistent predecessors when hypothesis
/// testing runs *without* the encrypted round metadata.
pub fn b10_collision_ablation(world: &World, ks: &[u32], trials: usize) -> Table {
    use cloak::ambiguity_profile;
    let rge = RgeEngine::new();
    let rple = RpleEngine::build(&world.net, DEFAULT_T);
    let mut rows = Vec::new();
    for &k in ks {
        let profile = single_level_profile(k);
        let (_, keys) = keys_for(&profile, 0xbead);
        let sites = world.request_sites(trials, 0x517e);
        let mut cells = vec![k.to_string()];
        for engine in [&rge as &dyn ReversibleEngine, &rple] {
            let mut agg = cloak::AmbiguityReport::default();
            for (i, &site) in sites.iter().enumerate() {
                if let Ok((out, _)) = anonymize_with_retry(
                    &world.net,
                    &world.snapshot,
                    site,
                    &profile,
                    &keys,
                    i as u64,
                    engine,
                    8,
                ) {
                    let r = ambiguity_profile(&world.net, &out, &keys, engine);
                    agg.steps += r.steps;
                    agg.ambiguous_steps += r.ambiguous_steps;
                    agg.total_candidates += r.total_candidates;
                    agg.max_candidates = agg.max_candidates.max(r.max_candidates);
                }
            }
            cells.push(format!("{:.3}", agg.collision_rate()));
            cells.push(format!("{:.2}", agg.mean_candidates()));
        }
        rows.push(Row { cells });
    }
    Table {
        id: "B10",
        title: "collision ablation: backward ambiguity without round metadata",
        headers: vec![
            "k",
            "RGE coll rate",
            "RGE mean cands",
            "RPLE coll rate",
            "RPLE mean cands",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds() {
        let w = World::small(1);
        assert!(w.occupied.len() > 100);
        assert_eq!(w.snapshot.total_users(), 1500);
        let sites = w.request_sites(10, 2);
        assert_eq!(sites.len(), 10);
        for s in sites {
            assert!(w.snapshot.users_on(s) > 0);
        }
    }

    #[test]
    fn b1_on_small_world_has_expected_shape() {
        let w = World::small(2);
        let t = b1_anonymize_vs_k(&w, &[5, 10], 5);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.headers.len(), t.rows[0].cells.len());
        let text = t.to_string();
        assert!(text.contains("B1"));
    }

    #[test]
    fn b4_memory_grows_with_t() {
        let w = World::small(3);
        let t = b4_preassign(&w, &[4, 8]);
        let m4: f64 = t.rows[0].cells[2].parse().unwrap();
        let m8: f64 = t.rows[1].cells[2].parse().unwrap();
        assert!(m8 > m4);
    }

    #[test]
    fn b5_recovery_is_total() {
        let w = World::small(4);
        let t = b5_privacy(&w, 10, 60);
        let recovery: f64 = t.rows[3].cells[1].parse().unwrap();
        assert_eq!(recovery, 1.0);
    }
}
