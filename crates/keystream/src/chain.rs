//! Forward-secret per-owner chain state.
//!
//! A continuous pipeline re-anonymizes every tracked owner tick after
//! tick, so the receipt stream is longitudinal: if one key compromise
//! today unlocked every past receipt, temporal privacy would be only as
//! strong as the most recent secret. [`ChainState`] prevents that with a
//! hash-forward ratchet (the rolling-state protocol of Photon's CHAIN
//! design): each re-anonymization advances the state through the one-way
//! [`derive_key`] sponge and **overwrites** the previous state in place.
//! Epoch `e`'s per-level keys derive from epoch `e`'s state only, so:
//!
//! * a requester granted keys at epoch `e` can deanonymize epoch `e`'s
//!   receipt forever (the keys are self-contained);
//! * anyone holding only the *current* state — including the anonymizer
//!   itself — cannot reconstruct any earlier epoch's keys, because
//!   walking the chain backwards means inverting the permutation through
//!   its hidden capacity.
//!
//! Serialization is deliberately confined to [`crate::journal`]: the
//! chain journal persists only the *latest* state per owner (compaction
//! erases superseded states from disk), so durability never reopens the
//! backwards-walk the ratchet closes. No other code path can read or
//! reconstruct the raw state.

use crate::key::Key256;
use crate::manager::KeyManager;
use crate::stream::derive_key;
use std::fmt;

/// A per-owner rolling chain state: a 256-bit secret that ratchets
/// forward one epoch per re-anonymization.
///
/// ```
/// use keystream::{ChainState, Key256};
/// let mut chain = ChainState::genesis("alice", &Key256::from_seed(7));
/// chain.ratchet();
/// let epoch1_keys = chain.level_keys(3);
/// chain.ratchet();
/// // The advanced state derives different keys; the old ones are gone.
/// assert_ne!(chain.level_keys(3), epoch1_keys);
/// assert_eq!(chain.epoch(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ChainState {
    state: Key256,
    epoch: u64,
}

impl ChainState {
    /// Creates the epoch-0 genesis state for `owner` from caller-provided
    /// entropy. The owner identity is absorbed alongside the entropy so
    /// two owners never share a chain even under a reused entropy source.
    ///
    /// Epoch 0 is never used for keys directly: callers [`ratchet`]
    /// before deriving, so the first issued receipt carries epoch 1.
    ///
    /// [`ratchet`]: ChainState::ratchet
    pub fn genesis(owner: &str, entropy: &Key256) -> Self {
        let mut ctx = Vec::with_capacity(17 + owner.len());
        ctx.extend_from_slice(b"rc/chain/genesis/");
        ctx.extend_from_slice(owner.as_bytes());
        ChainState {
            state: derive_key(*entropy, &ctx),
            epoch: 0,
        }
    }

    /// Advances the chain one epoch: the state is replaced by its one-way
    /// image, erasing the previous epoch's secret from this value.
    pub fn ratchet(&mut self) {
        self.state = derive_key(self.state, b"rc/chain/ratchet");
        self.epoch += 1;
    }

    /// The current epoch (number of ratchets since genesis).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current epoch's master key. Derived through a context disjoint
    /// from the ratchet's, so handing this key out reveals nothing about
    /// the chain's next state.
    pub fn tick_key(&self) -> Key256 {
        derive_key(self.state, b"rc/chain/tick-key")
    }

    /// Per-level keys for the current epoch: `levels` keys derived from
    /// [`tick_key`](Self::tick_key) via [`KeyManager::derive`].
    pub fn level_keys(&self, levels: usize) -> KeyManager {
        KeyManager::derive(levels, self.tick_key())
    }

    /// Raw state access for the journal only: the WAL must persist the
    /// post-ratchet secret verbatim to survive a restart.
    pub(crate) fn state_key(&self) -> &Key256 {
        &self.state
    }

    /// Journal-recovery constructor: rebuilds a chain from its persisted
    /// `(state, epoch)` pair. Only [`crate::journal`] may call this.
    pub(crate) fn from_parts(state: Key256, epoch: u64) -> Self {
        ChainState { state, epoch }
    }
}

impl fmt::Debug for ChainState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fingerprint only: chain states are live secrets.
        write!(
            f,
            "ChainState(epoch:{}, fp:{})",
            self.epoch,
            self.state.fingerprint()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_deterministic_per_owner_and_entropy() {
        let e = Key256::from_seed(9);
        assert_eq!(
            ChainState::genesis("alice", &e),
            ChainState::genesis("alice", &e)
        );
        assert_ne!(
            ChainState::genesis("alice", &e),
            ChainState::genesis("bob", &e)
        );
        assert_ne!(
            ChainState::genesis("alice", &e),
            ChainState::genesis("alice", &Key256::from_seed(10))
        );
    }

    #[test]
    fn ratchet_advances_epoch_and_changes_every_key() {
        let mut chain = ChainState::genesis("alice", &Key256::from_seed(1));
        let mut tick_keys = std::collections::HashSet::new();
        let mut states = std::collections::HashSet::new();
        for epoch in 1..=100u64 {
            chain.ratchet();
            assert_eq!(chain.epoch(), epoch);
            assert!(tick_keys.insert(chain.tick_key()), "tick key repeated");
            assert!(states.insert(chain.clone()), "chain state repeated");
        }
    }

    #[test]
    fn level_keys_differ_across_epochs_and_levels() {
        let mut chain = ChainState::genesis("carol", &Key256::from_seed(2));
        chain.ratchet();
        let first = chain.level_keys(4);
        chain.ratchet();
        let second = chain.level_keys(4);
        let mut seen = std::collections::HashSet::new();
        for mgr in [&first, &second] {
            for (_, k) in mgr.iter() {
                assert!(seen.insert(k), "level key repeated across epochs");
            }
        }
    }

    #[test]
    fn ratcheted_state_does_not_recover_past_tick_keys() {
        // Forward secrecy at the unit level: after a ratchet, no
        // derivation from the *current* state reproduces the previous
        // epoch's tick key (the chain only runs forward).
        let mut chain = ChainState::genesis("dave", &Key256::from_seed(3));
        chain.ratchet();
        let past = chain.tick_key();
        chain.ratchet();
        assert_ne!(chain.tick_key(), past);
        // Even ratcheting a copy further never cycles back.
        let mut probe = chain.clone();
        for _ in 0..64 {
            probe.ratchet();
            assert_ne!(probe.tick_key(), past);
        }
    }

    #[test]
    fn debug_leaks_no_key_material() {
        let chain = ChainState::genesis("erin", &Key256::from_seed(4));
        let dbg = format!("{chain:?}");
        assert!(dbg.contains("epoch:0"));
        assert!(!dbg.contains(&chain.tick_key().to_hex()));
    }
}
