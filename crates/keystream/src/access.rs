//! Access-control profiles mapping requester trust to key entitlements.
//!
//! The paper: "The 'Anonymizer' maintains a personal access control
//! profile, which decides the assignment of access keys based on trust
//! degree and privileges of the location data requesters."

use crate::key::Key256;
use crate::manager::{KeyManager, Level};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Trust degree of a location data requester; higher is more trusted.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrustDegree(pub u8);

impl fmt::Display for TrustDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trust:{}", self.0)
    }
}

/// Error from access-control decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The requester is not registered in the profile.
    UnknownRequester(String),
    /// The requester's trust grants no de-anonymization privilege at all.
    NotEntitled(String),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::UnknownRequester(who) => write!(f, "unknown requester `{who}`"),
            AccessError::NotEntitled(who) => {
                write!(f, "requester `{who}` is not entitled to any access keys")
            }
        }
    }
}

impl Error for AccessError {}

/// The owner's personal access-control profile.
///
/// Maps requester identities to trust degrees, and trust degrees to the
/// *lowest privacy level* the requester may reduce the cloaked region to
/// (lower level = finer location information = higher privilege).
///
/// ```
/// use keystream::{AccessControlProfile, KeyManager, Level, TrustDegree};
/// let mgr = KeyManager::from_seed(3, 9);
/// let mut acp = AccessControlProfile::new();
/// acp.register_requester("emergency-service", TrustDegree(10));
/// acp.register_requester("ad-network", TrustDegree(1));
/// acp.set_trust_floor(TrustDegree(10), Level(0)); // full de-anonymization
/// acp.set_trust_floor(TrustDegree(1), Level(2));  // may peel to L2 only
/// let keys = acp.keys_for(&mgr, "emergency-service").unwrap();
/// assert_eq!(keys.len(), 3); // Key3, Key2, Key1
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessControlProfile {
    requesters: BTreeMap<String, TrustDegree>,
    /// For each trust degree, the lowest level reachable. Looked up by the
    /// greatest registered degree ≤ the requester's degree.
    floors: BTreeMap<TrustDegree, Level>,
}

impl AccessControlProfile {
    /// An empty profile (nobody is entitled to anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a requester with a trust degree.
    pub fn register_requester(&mut self, id: impl Into<String>, trust: TrustDegree) {
        self.requesters.insert(id.into(), trust);
    }

    /// Removes a requester. Returns whether it existed.
    pub fn revoke_requester(&mut self, id: &str) -> bool {
        self.requesters.remove(id).is_some()
    }

    /// Declares that requesters of at least `trust` may reduce the region
    /// down to `floor`.
    pub fn set_trust_floor(&mut self, trust: TrustDegree, floor: Level) {
        self.floors.insert(trust, floor);
    }

    /// The trust degree of a requester, if registered.
    pub fn trust_of(&self, id: &str) -> Option<TrustDegree> {
        self.requesters.get(id).copied()
    }

    /// The lowest level `id` may reduce to, if any entitlement applies.
    pub fn floor_for(&self, id: &str) -> Option<Level> {
        let trust = self.trust_of(id)?;
        // The most privileged floor among thresholds the requester meets.
        self.floors
            .iter()
            .filter(|(t, _)| **t <= trust)
            .map(|(_, l)| *l)
            .min()
    }

    /// The keys `id` is entitled to fetch, in peeling order (top level
    /// first), per the owner's key manager.
    ///
    /// # Errors
    ///
    /// Fails when the requester is unknown or entitled to nothing.
    pub fn keys_for(
        &self,
        mgr: &KeyManager,
        id: &str,
    ) -> Result<Vec<(Level, Key256)>, AccessError> {
        if self.trust_of(id).is_none() {
            return Err(AccessError::UnknownRequester(id.to_string()));
        }
        let floor = self
            .floor_for(id)
            .ok_or_else(|| AccessError::NotEntitled(id.to_string()))?;
        let keys = mgr
            .keys_down_to(floor)
            .map_err(|_| AccessError::NotEntitled(id.to_string()))?;
        if keys.is_empty() && floor.index() >= mgr.level_count() {
            // Floor at or above the top level grants nothing.
            return Err(AccessError::NotEntitled(id.to_string()));
        }
        Ok(keys)
    }

    /// Number of registered requesters.
    pub fn requester_count(&self) -> usize {
        self.requesters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> (KeyManager, AccessControlProfile) {
        let mgr = KeyManager::from_seed(4, 5);
        let mut acp = AccessControlProfile::new();
        acp.register_requester("police", TrustDegree(10));
        acp.register_requester("friend", TrustDegree(5));
        acp.register_requester("stranger", TrustDegree(0));
        acp.set_trust_floor(TrustDegree(10), Level(0));
        acp.set_trust_floor(TrustDegree(5), Level(2));
        (mgr, acp)
    }

    #[test]
    fn entitlements_by_trust() {
        let (mgr, acp) = profile();
        // Police: full peel, keys for L4..L1.
        let police = acp.keys_for(&mgr, "police").unwrap();
        assert_eq!(police.len(), 4);
        assert_eq!(police[0].0, Level(4));
        assert_eq!(police[3].0, Level(1));
        // Friend: down to L2 => Key4, Key3.
        let friend = acp.keys_for(&mgr, "friend").unwrap();
        assert_eq!(friend.len(), 2);
        assert_eq!(friend[0].0, Level(4));
        assert_eq!(friend[1].0, Level(3));
        // Stranger: no floor at their trust.
        assert_eq!(
            acp.keys_for(&mgr, "stranger"),
            Err(AccessError::NotEntitled("stranger".into()))
        );
        // Unknown requester.
        assert_eq!(
            acp.keys_for(&mgr, "nobody"),
            Err(AccessError::UnknownRequester("nobody".into()))
        );
    }

    #[test]
    fn higher_trust_wins_when_multiple_floors_apply() {
        let (mgr, mut acp) = profile();
        // Police (trust 10) matches both floors; the most privileged
        // (lowest level) applies.
        acp.set_trust_floor(TrustDegree(8), Level(3));
        assert_eq!(acp.floor_for("police"), Some(Level(0)));
        let keys = acp.keys_for(&mgr, "police").unwrap();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn revoke_and_update() {
        let (_, mut acp) = profile();
        assert!(acp.revoke_requester("friend"));
        assert!(!acp.revoke_requester("friend"));
        assert_eq!(acp.trust_of("friend"), None);
        acp.register_requester("friend", TrustDegree(9));
        assert_eq!(acp.trust_of("friend"), Some(TrustDegree(9)));
        assert_eq!(acp.requester_count(), 3);
    }

    #[test]
    fn floor_at_top_level_grants_nothing() {
        let (mgr, mut acp) = profile();
        acp.register_requester("lbs", TrustDegree(2));
        acp.set_trust_floor(TrustDegree(2), Level(4)); // == top level
        assert!(matches!(
            acp.keys_for(&mgr, "lbs"),
            Err(AccessError::NotEntitled(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(AccessError::UnknownRequester("x".into())
            .to_string()
            .contains('x'));
        assert!(AccessError::NotEntitled("y".into())
            .to_string()
            .contains('y'));
    }
}
