//! Keyed tags (PRF-MACs) over short messages.
//!
//! The cloaked payload carries one tag per privacy level that lets a key
//! holder identify that level's last-added segment (DESIGN.md §3.4). To
//! anyone without the key the tag is pseudorandom.
//!
//! Like [`crate::stream`], this is a simulation-grade PRF: swap in
//! HMAC-SHA256 for production.

use crate::key::Key256;
use crate::stream::DrawStream;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit keyed tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tag128(pub [u8; 16]);

impl Tag128 {
    /// Hex encoding of the tag.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for Tag128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Computes the keyed tag of `message` under `key` in the given domain
/// separation `context`.
///
/// ```
/// use keystream::{tag, Key256};
/// let key = Key256::from_seed(4);
/// let t1 = tag::compute(key, b"level-3", b"segment:42");
/// let t2 = tag::compute(key, b"level-3", b"segment:42");
/// assert_eq!(t1, t2);
/// assert_ne!(t1, tag::compute(key, b"level-3", b"segment:43"));
/// ```
pub fn compute(key: Key256, context: &[u8], message: &[u8]) -> Tag128 {
    // Domain-separate tags from draw streams by a fixed prefix, then absorb
    // context and message with an unambiguous length framing.
    let mut framed = Vec::with_capacity(16 + context.len() + message.len() + 16);
    framed.extend_from_slice(b"reversecloak-tag");
    framed.extend_from_slice(&(context.len() as u64).to_le_bytes());
    framed.extend_from_slice(context);
    framed.extend_from_slice(&(message.len() as u64).to_le_bytes());
    framed.extend_from_slice(message);
    let mut stream = DrawStream::new(key, &framed);
    let a = stream.next_u64();
    let b = stream.next_u64();
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    Tag128(out)
}

/// Verifies that `tag` is the tag of `message`.
pub fn verify(key: Key256, context: &[u8], message: &[u8], tag: Tag128) -> bool {
    compute(key, context, message) == tag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_message_sensitive() {
        let key = Key256::from_seed(11);
        let t = compute(key, b"c", b"m");
        assert_eq!(t, compute(key, b"c", b"m"));
        assert_ne!(t, compute(key, b"c", b"m2"));
        assert_ne!(t, compute(key, b"c2", b"m"));
        assert_ne!(t, compute(Key256::from_seed(12), b"c", b"m"));
    }

    #[test]
    fn framing_prevents_boundary_ambiguity() {
        let key = Key256::from_seed(11);
        // ("ab", "c") vs ("a", "bc") must differ.
        assert_ne!(compute(key, b"ab", b"c"), compute(key, b"a", b"bc"));
        // Empty pieces are fine and distinct.
        assert_ne!(compute(key, b"", b"x"), compute(key, b"x", b""));
    }

    #[test]
    fn verify_roundtrip() {
        let key = Key256::from_seed(2);
        let t = compute(key, b"lvl", b"seg:7");
        assert!(verify(key, b"lvl", b"seg:7", t));
        assert!(!verify(key, b"lvl", b"seg:8", t));
        assert!(!verify(Key256::from_seed(3), b"lvl", b"seg:7", t));
    }

    #[test]
    fn tags_spread_over_messages() {
        // No collisions among a few thousand distinct messages.
        let key = Key256::from_seed(1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u32 {
            let t = compute(key, b"coll", &i.to_le_bytes());
            assert!(seen.insert(t), "collision at {i}");
        }
    }

    #[test]
    fn display_is_hex() {
        let t = Tag128([0xab; 16]);
        assert_eq!(t.to_string(), "ab".repeat(16));
    }
}
