//! 256-bit access keys.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A 256-bit shared secret access key (`Key_i` in the paper).
///
/// Keys drive the pseudo-random segment selection of one privacy level;
/// whoever holds the key can replay — and therefore reverse — that level's
/// expansion.
///
/// The `Debug`/`Display` representations print only a short fingerprint so
/// keys do not leak into logs; use [`Key256::to_hex`] for the full value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Key256([u8; 32]);

impl Key256 {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Key256(bytes)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Generates a random key from the given entropy source.
    ///
    /// This is the "Auto key generation" function of the paper's
    /// Anonymizer GUI.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        Key256(bytes)
    }

    /// Derives a key deterministically from a low-entropy test seed.
    ///
    /// Intended for tests and reproducible experiments, not production use.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_mut(8) {
            state = crate::stream::split_mix64(&mut state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        Key256(bytes)
    }

    /// Hex-encodes the full key (64 lowercase hex digits).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to a String cannot fail");
        }
        s
    }

    /// Parses a 64-digit hex key.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKeyError`] when the input is not exactly 64 hex
    /// digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseKeyError> {
        let s = s.trim();
        if s.len() != 64 {
            return Err(ParseKeyError::WrongLength(s.len()));
        }
        let mut bytes = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(ParseKeyError::InvalidDigit(chunk[0] as char))?;
            let lo = hex_val(chunk[1]).ok_or(ParseKeyError::InvalidDigit(chunk[1] as char))?;
            bytes[i] = (hi << 4) | lo;
        }
        Ok(Key256(bytes))
    }

    /// A short non-secret fingerprint of the key for display purposes.
    pub fn fingerprint(&self) -> String {
        // First 4 bytes of a mixed state, not the key material itself.
        let mut acc = 0xa076_1d64_78bd_642fu64;
        for b in self.0 {
            acc = (acc ^ b as u64).wrapping_mul(0xe703_7ed1_a0b4_28db);
            acc ^= acc >> 32;
        }
        format!("{:08x}", (acc >> 32) as u32)
    }
}

impl fmt::Debug for Key256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key256(fp:{})", self.fingerprint())
    }
}

impl fmt::Display for Key256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{}", self.fingerprint())
    }
}

impl From<[u8; 32]> for Key256 {
    fn from(bytes: [u8; 32]) -> Self {
        Key256(bytes)
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Error from [`Key256::from_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseKeyError {
    /// The string did not contain exactly 64 characters.
    WrongLength(usize),
    /// A character was not a hex digit.
    InvalidDigit(char),
}

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseKeyError::WrongLength(n) => {
                write!(f, "key must be 64 hex digits, got {n} characters")
            }
            ParseKeyError::InvalidDigit(c) => write!(f, "invalid hex digit `{c}` in key"),
        }
    }
}

impl Error for ParseKeyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let k = Key256::from_seed(12345);
        let hex = k.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Key256::from_hex(&hex).unwrap(), k);
        // Uppercase also accepted.
        assert_eq!(Key256::from_hex(&hex.to_uppercase()).unwrap(), k);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Key256::from_hex("abcd"), Err(ParseKeyError::WrongLength(4)));
        let bad = "zz".repeat(32);
        assert_eq!(
            Key256::from_hex(&bad),
            Err(ParseKeyError::InvalidDigit('z'))
        );
    }

    #[test]
    fn seeded_keys_are_deterministic_and_distinct() {
        assert_eq!(Key256::from_seed(7), Key256::from_seed(7));
        assert_ne!(Key256::from_seed(7), Key256::from_seed(8));
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = rand::thread_rng();
        let a = Key256::generate(&mut rng);
        let b = Key256::generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let k = Key256::from_seed(99);
        let dbg = format!("{k:?}");
        assert!(!dbg.contains(&k.to_hex()));
        assert!(dbg.contains("fp:"));
        // Fingerprint is stable.
        assert_eq!(k.fingerprint(), Key256::from_seed(99).fingerprint());
    }

    #[test]
    fn parse_error_display() {
        assert!(ParseKeyError::WrongLength(3).to_string().contains("64 hex"));
        assert!(ParseKeyError::InvalidDigit('q').to_string().contains('q'));
    }
}
