//! Key management for multi-level privacy profiles.
//!
//! The paper's Anonymizer GUI offers "Auto key generation" and "manages
//! \[keys\] locally"; the De-anonymizer "fetches the access keys" it is
//! entitled to. [`KeyManager`] is that local store; the entitlement logic
//! lives in [`crate::access`].

use crate::key::Key256;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A privacy level index.
///
/// Level 0 is the user's own segment and has no key; levels `1..N` each
/// have one key (`Key_i`), used to expand from level `i-1` to level `i`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Level(pub u8);

impl Level {
    /// The level as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Error from [`KeyManager`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The requested level has no key (level 0, or beyond the profile).
    NoSuchLevel(Level),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::NoSuchLevel(l) => write!(f, "no key for level {l}"),
        }
    }
}

impl Error for KeyError {}

/// Holds the per-level access keys of one location data owner.
///
/// ```
/// use keystream::{KeyManager, Level};
/// let mut rng = rand::thread_rng();
/// let mgr = KeyManager::generate(4, &mut rng); // levels L1..L4
/// assert_eq!(mgr.level_count(), 4);
/// let k2 = mgr.key_for(Level(2)).unwrap();
/// assert_eq!(mgr.keys_down_to(Level(2)).unwrap().len(), 2); // Key4, Key3
/// # let _ = k2;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyManager {
    /// `keys[i]` is the key for level `i + 1`.
    keys: Vec<Key256>,
}

impl KeyManager {
    /// Creates a manager from explicit per-level keys; `keys[i]` serves
    /// level `i + 1`.
    pub fn from_keys(keys: Vec<Key256>) -> Self {
        KeyManager { keys }
    }

    /// Auto-generates keys for levels `1..=levels`.
    pub fn generate<R: rand::Rng + ?Sized>(levels: usize, rng: &mut R) -> Self {
        KeyManager {
            keys: (0..levels).map(|_| Key256::generate(rng)).collect(),
        }
    }

    /// Derives per-level keys from a 256-bit master key, domain-separating
    /// each level through the keyed sponge
    /// ([`derive_key`](crate::stream::derive_key)): level `i` gets
    /// `derive_key(master, "rc/level-key/" || i)`. Distinct `(master,
    /// level)` pairs cannot collide short of a sponge collision.
    pub fn derive(levels: usize, master: Key256) -> Self {
        KeyManager {
            keys: (0..levels)
                .map(|i| {
                    let mut ctx = Vec::with_capacity(21);
                    ctx.extend_from_slice(b"rc/level-key/");
                    ctx.extend_from_slice(&(i as u64 + 1).to_le_bytes());
                    crate::stream::derive_key(master, &ctx)
                })
                .collect(),
        }
    }

    /// Deterministic manager for tests and reproducible experiments:
    /// expands the seed to a master key and derives per-level keys via
    /// [`derive`](Self::derive). (An earlier version derived level keys
    /// as `from_seed(seed * 1_000_003 + i)`, under which distinct
    /// `(seed, level)` pairs could collide by shifting the seed along the
    /// multiplier's modular inverse — see the regression test.)
    pub fn from_seed(levels: usize, seed: u64) -> Self {
        Self::derive(levels, Key256::from_seed(seed))
    }

    /// Number of keyed levels (`N - 1` in the paper's notation).
    pub fn level_count(&self) -> usize {
        self.keys.len()
    }

    /// The key for a level.
    ///
    /// # Errors
    ///
    /// Fails for level 0 (never keyed) and for levels beyond the profile.
    pub fn key_for(&self, level: Level) -> Result<Key256, KeyError> {
        if level.0 == 0 {
            return Err(KeyError::NoSuchLevel(level));
        }
        self.keys
            .get(level.index() - 1)
            .copied()
            .ok_or(KeyError::NoSuchLevel(level))
    }

    /// The highest keyed level.
    pub fn top_level(&self) -> Level {
        Level(self.keys.len() as u8)
    }

    /// Keys needed to reduce the exposed region from the top level down to
    /// `target` (exclusive): `Key_N, Key_{N-1}, …, Key_{target+1}`, in
    /// peeling order.
    ///
    /// Reducing to the top level itself needs no keys (empty vec).
    ///
    /// # Errors
    ///
    /// Fails if `target` exceeds the top level.
    pub fn keys_down_to(&self, target: Level) -> Result<Vec<(Level, Key256)>, KeyError> {
        if target.index() > self.keys.len() {
            return Err(KeyError::NoSuchLevel(target));
        }
        Ok((target.index() + 1..=self.keys.len())
            .rev()
            .map(|i| (Level(i as u8), self.keys[i - 1]))
            .collect())
    }

    /// All `(level, key)` pairs, lowest level first.
    pub fn iter(&self) -> impl Iterator<Item = (Level, Key256)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (Level(i as u8 + 1), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_for_levels() {
        let mgr = KeyManager::from_seed(3, 1);
        assert!(mgr.key_for(Level(0)).is_err());
        assert!(mgr.key_for(Level(1)).is_ok());
        assert!(mgr.key_for(Level(3)).is_ok());
        assert_eq!(mgr.key_for(Level(4)), Err(KeyError::NoSuchLevel(Level(4))));
        assert_eq!(mgr.top_level(), Level(3));
    }

    #[test]
    fn keys_down_to_orders_top_first() {
        let mgr = KeyManager::from_seed(4, 2);
        let down_to_1 = mgr.keys_down_to(Level(1)).unwrap();
        let levels: Vec<u8> = down_to_1.iter().map(|(l, _)| l.0).collect();
        assert_eq!(levels, vec![4, 3, 2]);
        assert!(mgr.keys_down_to(Level(4)).unwrap().is_empty());
        assert!(mgr.keys_down_to(Level(5)).is_err());
        // Reducing to L0 needs all keys.
        assert_eq!(mgr.keys_down_to(Level(0)).unwrap().len(), 4);
    }

    #[test]
    fn per_level_keys_are_distinct() {
        let mgr = KeyManager::from_seed(6, 3);
        let mut seen = std::collections::HashSet::new();
        for (_, k) in mgr.iter() {
            assert!(seen.insert(k));
        }
    }

    /// Regression test for the `seed * 1_000_003 + level` derivation:
    /// seeds `s` and `s + inv(1_000_003)` (mod 2^64) produced managers
    /// whose key material was the same sequence shifted by one level —
    /// `(s, L2)` literally equaled `(s + inv, L1)`. The sponge-derived
    /// keys must keep the whole seed×level grid pairwise distinct,
    /// including that adversarial pair.
    #[test]
    fn from_seed_keys_are_distinct_across_a_seed_level_grid() {
        // inv(1_000_003) mod 2^64 by Newton iteration (odd => invertible).
        let k: u64 = 1_000_003;
        let mut inv = k;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(k.wrapping_mul(inv)));
        }
        assert_eq!(k.wrapping_mul(inv), 1);

        let base = 0x5eed_0001u64;
        let seeds = [0, 1, 2, 7, base, base + 1, base.wrapping_add(inv)];
        let mut seen = std::collections::HashSet::new();
        for &seed in &seeds {
            let mgr = KeyManager::from_seed(5, seed);
            for (level, key) in mgr.iter() {
                assert!(
                    seen.insert(key),
                    "key collision at seed {seed}, level {level}"
                );
            }
        }
        // The sharp case the old formula collapsed:
        let a = KeyManager::from_seed(3, base);
        let b = KeyManager::from_seed(3, base.wrapping_add(inv));
        assert_ne!(
            a.key_for(Level(2)).unwrap(),
            b.key_for(Level(1)).unwrap(),
            "level-shifted seeds must not alias"
        );
    }

    #[test]
    fn derive_matches_from_seed_and_separates_masters() {
        let master = Key256::from_seed(11);
        assert_eq!(KeyManager::derive(4, master), KeyManager::from_seed(4, 11));
        assert_ne!(
            KeyManager::derive(4, master),
            KeyManager::derive(4, Key256::from_seed(12))
        );
    }

    #[test]
    fn generate_produces_requested_count() {
        let mut rng = rand::thread_rng();
        let mgr = KeyManager::generate(5, &mut rng);
        assert_eq!(mgr.level_count(), 5);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            KeyError::NoSuchLevel(Level(7)).to_string(),
            "no key for level L7"
        );
    }
}
