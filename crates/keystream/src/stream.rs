//! Keyed pseudo-random draw streams.
//!
//! ReverseCloak needs a deterministic stream of pseudo-random numbers
//! `R_1, R_2, …` per `(key, level)` pair: the i-th number drives both the
//! i-th forward transition (anonymization) and the corresponding backward
//! transition (de-anonymization). Determinism and replayability are the
//! contract; the keyed generator's strength is what backs the paper's
//! "without the access key, all linked segments are equiprobable" claim.
//!
//! The generator is a ChaCha20-class keyed PRF built from the ChaCha
//! permutation (20 rounds of ARX quarter-rounds over a 16-word state,
//! Bernstein's design), staged exactly like the ChaCha20 cipher itself:
//!
//! 1. **Key schedule.** The 256-bit key is seated directly in state
//!    words 0..8 — ChaCha20's own key placement — with the four
//!    `"expand 32-byte k"` constants as the capacity (words 12..16) and
//!    a domain word folded into the capacity before any permutation
//!    (draw streams and [`derive_key`] can never alias).
//! 2. **Context absorption.** The context is **length delimited**: its
//!    length rides in word 8 and its first 12 bytes in words 9..12 of
//!    the initial state; any remainder is sponge-absorbed into the
//!    48-byte rate, one permutation per block. Distinct `(key, context)`
//!    pairs can never alias through zero padding (`b"level-1"` vs
//!    `b"level-1\0"` was a collision class of the earlier xoshiro
//!    stand-in).
//! 3. **Counter-mode squeeze.** Output blocks are the textbook ChaCha20
//!    block function over the absorbed state: XOR a block counter into
//!    the capacity, permute, and add the input state word-wise
//!    (the feed-forward that makes the permutation one-way), yielding
//!    64 output bytes — eight `u64` draws — per permutation.
//!
//! Remaining gap: *unseeded* key generation ([`crate::key::Key256::generate`])
//! still draws from the caller's `rand` shim, which is not a CSPRNG — see
//! the README's shim caveat.

use crate::key::Key256;

/// Advances a SplitMix64 state and returns the next output.
///
/// Exposed within the crate for low-entropy test-seed expansion
/// ([`crate::key::Key256::from_seed`]); the draw stream itself no longer
/// uses it.
pub(crate) fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ChaCha constants ("expand 32-byte k"), seated in the sponge's
/// capacity words so absorption never writes over them.
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Sponge rate in state words: words `0..12` (48 bytes) absorb input and
/// emit output; words `12..16` are the capacity.
const RATE_WORDS: usize = 12;
/// Sponge rate in bytes.
const RATE_BYTES: usize = RATE_WORDS * 4;

/// Domain word for the draw stream, folded into the capacity at
/// initialization.
const DOMAIN_DRAW: u32 = 0x01;
/// Domain word for 256-bit key derivation.
const DOMAIN_DERIVE: u32 = 0x02;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha20 permutation: 10 double rounds (20 rounds total) of
/// column and diagonal quarter-rounds. (An SSSE3 single-block path was
/// measured here and *lost* to the scalar rounds — the four-lane ILP is
/// already saturated and the diagonalization shuffles are pure
/// overhead — so scalar it stays.)
#[inline]
fn chacha_permute(s: &mut [u32; 16]) {
    for _ in 0..10 {
        quarter_round(s, 0, 4, 8, 12);
        quarter_round(s, 1, 5, 9, 13);
        quarter_round(s, 2, 6, 10, 14);
        quarter_round(s, 3, 7, 11, 15);
        quarter_round(s, 0, 5, 10, 15);
        quarter_round(s, 1, 6, 11, 12);
        quarter_round(s, 2, 7, 8, 13);
        quarter_round(s, 3, 4, 9, 14);
    }
}

/// Absorbs `key` and `context` under `domain`, returning the keyed base
/// state the counter-mode block function squeezes from.
///
/// The layout is ChaCha20's own key schedule — key in words 0..8,
/// constants as the capacity — with the context made injective by
/// length delimitation: its length sits in word 8 and its first 12
/// bytes in words 9..12 of the initial state (so the hot-path contexts
/// cost at most one extra absorption permutation), and any remainder is
/// sponge-absorbed into the rate. Distinct `(key, context, domain)`
/// triples always produce distinct absorption transcripts; zero padding
/// of the trailing block cannot alias two contexts because their
/// lengths already differ in word 8.
fn absorb(key: &Key256, context: &[u8], domain: u32) -> [u32; 16] {
    assert!(
        context.len() as u64 <= u32::MAX as u64,
        "context too long to length-delimit"
    );
    let mut state = [0u32; 16];
    for (i, chunk) in key.as_bytes().chunks_exact(4).enumerate() {
        state[i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    state[8] = context.len() as u32;
    let head = context.len().min(12);
    let mut head_bytes = [0u8; 12];
    head_bytes[..head].copy_from_slice(&context[..head]);
    for (i, chunk) in head_bytes.chunks_exact(4).enumerate() {
        state[9 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    // Capacity: the ChaCha constants tweaked by the domain word, where
    // no absorbed input can reach.
    state[RATE_WORDS..].copy_from_slice(&CHACHA_CONSTANTS);
    state[RATE_WORDS] ^= domain;
    chacha_permute(&mut state);
    // Sponge-absorb any context remainder into the rate, one
    // permutation per 48-byte block.
    for block in context[head..].chunks(RATE_BYTES) {
        for (i, chunk) in block.chunks(4).enumerate() {
            let mut w = [0u8; 4];
            w[..chunk.len()].copy_from_slice(chunk);
            state[i] ^= u32::from_le_bytes(w);
        }
        chacha_permute(&mut state);
    }
    state
}

/// The ChaCha20 block function over `base`: fold the block counter into
/// the capacity, permute, and add the input state word-wise. The
/// feed-forward makes recovering `base` from output infeasible, so all
/// 16 words — eight `u64` draws — are output.
#[inline]
fn chacha_block(base: &[u32; 16], counter: u64) -> [u64; 8] {
    let mut input = *base;
    input[13] ^= counter as u32;
    input[14] ^= (counter >> 32) as u32;
    let mut t = input;
    chacha_permute(&mut t);
    let mut out = [0u64; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        let lo = t[2 * i].wrapping_add(input[2 * i]) as u64;
        let hi = t[2 * i + 1].wrapping_add(input[2 * i + 1]) as u64;
        *slot = lo | hi << 32;
    }
    out
}

/// Derives a fresh 256-bit key from `key` under a domain-separation
/// `context`, through the same length-delimited ChaCha sponge as
/// [`DrawStream`] (distinct finalization domain, so derived keys and
/// draw outputs never overlap).
///
/// This is the one-way step behind [`crate::chain::ChainState`]'s
/// hash-forward ratchet and [`crate::manager::KeyManager::derive`]'s
/// per-level keys: recovering the input key from the output would
/// require inverting the permutation through the hidden capacity.
#[inline]
pub fn derive_key(key: Key256, context: &[u8]) -> Key256 {
    let base = absorb(&key, context, DOMAIN_DERIVE);
    let block = chacha_block(&base, 0);
    let mut bytes = [0u8; 32];
    for (chunk, d) in bytes.chunks_mut(8).zip(&block) {
        chunk.copy_from_slice(&d.to_le_bytes());
    }
    Key256::from_bytes(bytes)
}

/// A deterministic keyed stream of pseudo-random `u64` draws.
///
/// ```
/// use keystream::{DrawStream, Key256};
/// let key = Key256::from_seed(1);
/// let mut a = DrawStream::new(key, b"level-1");
/// let mut b = DrawStream::new(key, b"level-1");
/// assert_eq!(a.next_u64(), b.next_u64()); // same key+context => same stream
/// let mut c = DrawStream::new(key, b"level-2");
/// assert_ne!(a.next_u64(), c.next_u64()); // contexts separate streams
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawStream {
    /// The absorbed `(key, context)` state every output block derives
    /// from (never itself output — the block function feed-forwards).
    base: [u32; 16],
    /// The current output block, consumed front to back.
    block: [u64; 8],
    /// Next unread index into `block` (starts exhausted: the first
    /// block is generated lazily on the first draw).
    cursor: usize,
    /// Counter of the next block to generate.
    next_block: u64,
    drawn: u64,
}

impl DrawStream {
    /// Creates the stream for `key` in a domain-separation `context`
    /// (for ReverseCloak: the privacy level and request nonce).
    #[inline]
    pub fn new(key: Key256, context: &[u8]) -> Self {
        DrawStream {
            base: absorb(&key, context, DOMAIN_DRAW),
            block: [0u64; 8],
            cursor: 8,
            next_block: 0,
            drawn: 0,
        }
    }

    /// An O(1) substream: the same absorbed `(key, context)` base with
    /// the block-counter space partitioned by `lane`, so no absorption
    /// permutation is paid per substream. Lane `l` squeezes counter
    /// blocks `(l + 1) << 32` onward, and the parent stream stays below
    /// `1 << 32`; parent and substreams can therefore never overlap
    /// (each would have to consume over 2³⁵ draws first).
    ///
    /// ReverseCloak's engines fork one lane per expansion step — the
    /// step index is public protocol structure, not secret input, so it
    /// belongs in the counter, and a level pays one context absorption
    /// for its whole walk instead of one per step.
    #[inline]
    pub fn fork(&self, lane: u32) -> DrawStream {
        DrawStream {
            base: self.base,
            block: [0u64; 8],
            cursor: 8,
            next_block: (u64::from(lane) + 1) << 32,
            drawn: 0,
        }
    }

    /// The next pseudo-random draw `R_i`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.cursor == self.block.len() {
            self.block = chacha_block(&self.base, self.next_block);
            self.next_block += 1;
            self.cursor = 0;
        }
        let result = self.block[self.cursor];
        self.cursor += 1;
        self.drawn += 1;
        result
    }

    /// A draw reduced modulo `n` — the paper's *pick value*
    /// `p_i = R_i mod |CanA|`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick modulus must be positive");
        (self.next_u64() % n as u64) as usize
    }

    /// How many draws have been consumed so far.
    pub fn draws_consumed(&self) -> u64 {
        self.drawn
    }

    /// Collects the next `n` draws (convenience for replaying a level's
    /// sequence before walking it backwards).
    pub fn take_draws(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_context_same_stream() {
        let key = Key256::from_seed(42);
        let a = DrawStream::new(key, b"ctx").take_draws(100);
        let b = DrawStream::new(key, b"ctx").take_draws(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_diverge() {
        let a = DrawStream::new(Key256::from_seed(1), b"ctx").take_draws(8);
        let b = DrawStream::new(Key256::from_seed(2), b"ctx").take_draws(8);
        assert_ne!(a, b);
    }

    #[test]
    fn different_contexts_diverge() {
        let key = Key256::from_seed(1);
        let a = DrawStream::new(key, b"level-1").take_draws(8);
        let b = DrawStream::new(key, b"level-2").take_draws(8);
        assert_ne!(a, b);
        // Length-extension-style near-collisions must also diverge.
        let c = DrawStream::new(key, b"ab").take_draws(8);
        let d = DrawStream::new(key, b"ab\0").take_draws(8);
        assert_ne!(c, d);
    }

    /// Regression test for the zero-padding collision of the former
    /// xoshiro stand-in: contexts differing only in trailing `\0` bytes
    /// absorbed identically (8-byte chunks, no length framing). The
    /// length-delimited sponge must keep every such pair apart.
    #[test]
    fn trailing_zero_contexts_are_distinct() {
        let key = Key256::from_seed(7);
        let pairs: [(&[u8], &[u8]); 4] = [
            (b"level-1", b"level-1\0"),
            (b"level-1", b"level-1\0\0\0\0\0\0\0\0"),
            (b"", b"\0"),
            (b"rc/step/\x01\x02", b"rc/step/\x01\x02\0\0"),
        ];
        for (short, padded) in pairs {
            let a = DrawStream::new(key, short).take_draws(8);
            let b = DrawStream::new(key, padded).take_draws(8);
            assert_ne!(a, b, "contexts {short:?} and {padded:?} collided");
        }
    }

    #[test]
    fn draws_consumed_counts() {
        let mut s = DrawStream::new(Key256::from_seed(5), b"x");
        assert_eq!(s.draws_consumed(), 0);
        s.next_u64();
        s.pick(10);
        assert_eq!(s.draws_consumed(), 2);
    }

    #[test]
    fn forks_are_deterministic_and_disjoint() {
        let key = Key256::from_seed(21);
        let base = DrawStream::new(key, b"walk");
        // Deterministic: the same lane forked twice yields one stream.
        assert_eq!(base.fork(3).take_draws(20), base.fork(3).take_draws(20));
        // Disjoint: the parent and every lane draw from separate counter
        // windows, so no draw appears twice across any of them.
        let mut all: Vec<u64> = base.clone().take_draws(20);
        for lane in 0..8u32 {
            all.extend(base.fork(lane).take_draws(20));
        }
        let unique: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "overlapping fork keystreams");
    }

    #[test]
    fn fork_ignores_parent_position() {
        // Forking is a function of the absorbed base alone: a parent
        // that has already drawn yields the same substreams as a fresh
        // one, so walk code may fork in any order.
        let key = Key256::from_seed(22);
        let fresh = DrawStream::new(key, b"walk");
        let mut advanced = DrawStream::new(key, b"walk");
        advanced.take_draws(17);
        assert_eq!(fresh.fork(5).take_draws(8), advanced.fork(5).take_draws(8));
    }

    #[test]
    fn stream_continues_past_the_first_block() {
        // 8 draws per block: crossing the block boundary must keep the
        // stream deterministic and non-repeating.
        let key = Key256::from_seed(13);
        let a = DrawStream::new(key, b"blocks").take_draws(40);
        let b = DrawStream::new(key, b"blocks").take_draws(40);
        assert_eq!(a, b);
        let unique: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 40, "no repeated draws across blocks");
    }

    #[test]
    fn pick_is_in_range_and_covers_values() {
        let mut s = DrawStream::new(Key256::from_seed(9), b"p");
        let mut seen = [false; 7];
        for _ in 0..500 {
            let p = s.pick(7);
            assert!(p < 7);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&v| v), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn pick_zero_panics() {
        DrawStream::new(Key256::from_seed(1), b"z").pick(0);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude bias check: mean of 10_000 draws scaled to [0,1) near 0.5.
        let mut s = DrawStream::new(Key256::from_seed(77), b"uniform");
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| s.next_u64() as f64 / u64::MAX as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bit_balance() {
        let mut s = DrawStream::new(Key256::from_seed(3), b"bits");
        let mut ones = 0u32;
        let n = 4096;
        for _ in 0..n {
            ones += s.next_u64().count_ones();
        }
        let frac = ones as f64 / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn derive_key_is_deterministic_and_separated_from_draws() {
        let key = Key256::from_seed(21);
        assert_eq!(derive_key(key, b"ctx"), derive_key(key, b"ctx"));
        assert_ne!(derive_key(key, b"ctx"), derive_key(key, b"ctx2"));
        assert_ne!(derive_key(key, b"ctx"), key, "derivation moves the key");
        // Distinct finalization domains: the derived key bytes must not
        // equal the draw stream's first 32 output bytes.
        let draws = DrawStream::new(key, b"ctx").take_draws(4);
        let mut stream_bytes = [0u8; 32];
        for (chunk, d) in stream_bytes.chunks_mut(8).zip(&draws) {
            chunk.copy_from_slice(&d.to_le_bytes());
        }
        assert_ne!(*derive_key(key, b"ctx").as_bytes(), stream_bytes);
    }

    #[test]
    fn derive_key_is_length_delimited_too() {
        let key = Key256::from_seed(4);
        assert_ne!(derive_key(key, b"a"), derive_key(key, b"a\0"));
        assert_ne!(derive_key(key, b""), derive_key(key, b"\0"));
    }

    /// The SSSE3 permutation must be bit-exact with the scalar
    /// reference — every draw everywhere depends on it.
    /// The permutation must actually be ChaCha20: pin one quarter-round
    /// test vector from RFC 7539 §2.1.1.
    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }
}
