//! Keyed pseudo-random draw streams.
//!
//! ReverseCloak needs a deterministic stream of pseudo-random numbers
//! `R_1, R_2, …` per `(key, level)` pair: the i-th number drives both the
//! i-th forward transition (anonymization) and the corresponding backward
//! transition (de-anonymization). Determinism and replayability are the
//! contract; statistical quality keeps the selection unbiased.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna) seeded from the access
//! key through SplitMix64, the seeding procedure its authors recommend.
//! This is a *stand-in PRF*: indistinguishable for simulation and
//! experimentation purposes, but not a cryptographic guarantee — a
//! production deployment would swap in ChaCha20 or HMAC-DRBG behind the
//! same interface (see DESIGN.md §1).

use crate::key::Key256;

/// Advances a SplitMix64 state and returns the next output.
///
/// Exposed within the crate for key derivation and tagging.
pub(crate) fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic keyed stream of pseudo-random `u64` draws.
///
/// ```
/// use keystream::{DrawStream, Key256};
/// let key = Key256::from_seed(1);
/// let mut a = DrawStream::new(key, b"level-1");
/// let mut b = DrawStream::new(key, b"level-1");
/// assert_eq!(a.next_u64(), b.next_u64()); // same key+context => same stream
/// let mut c = DrawStream::new(key, b"level-2");
/// assert_ne!(a.next_u64(), c.next_u64()); // contexts separate streams
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawStream {
    s: [u64; 4],
    drawn: u64,
}

impl DrawStream {
    /// Creates the stream for `key` in a domain-separation `context`
    /// (for ReverseCloak: the privacy level and request nonce).
    pub fn new(key: Key256, context: &[u8]) -> Self {
        // Absorb key bytes and context into a SplitMix64 chain.
        let mut st = 0x6a09_e667_f3bc_c908u64; // fractional bits of sqrt(2)
        for chunk in key.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            st ^= u64::from_le_bytes(w);
            let _ = split_mix64(&mut st);
        }
        for chunk in context.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            st ^= u64::from_le_bytes(w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let _ = split_mix64(&mut st);
        }
        st ^= (context.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = split_mix64(&mut st);
        }
        // xoshiro must not start from the all-zero state; the SplitMix64
        // seeding makes that astronomically unlikely but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        DrawStream { s, drawn: 0 }
    }

    /// The next pseudo-random draw `R_i`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        self.drawn += 1;
        result
    }

    /// A draw reduced modulo `n` — the paper's *pick value*
    /// `p_i = R_i mod |CanA|`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick modulus must be positive");
        (self.next_u64() % n as u64) as usize
    }

    /// How many draws have been consumed so far.
    pub fn draws_consumed(&self) -> u64 {
        self.drawn
    }

    /// Collects the next `n` draws (convenience for replaying a level's
    /// sequence before walking it backwards).
    pub fn take_draws(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_context_same_stream() {
        let key = Key256::from_seed(42);
        let a = DrawStream::new(key, b"ctx").take_draws(100);
        let b = DrawStream::new(key, b"ctx").take_draws(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_diverge() {
        let a = DrawStream::new(Key256::from_seed(1), b"ctx").take_draws(8);
        let b = DrawStream::new(Key256::from_seed(2), b"ctx").take_draws(8);
        assert_ne!(a, b);
    }

    #[test]
    fn different_contexts_diverge() {
        let key = Key256::from_seed(1);
        let a = DrawStream::new(key, b"level-1").take_draws(8);
        let b = DrawStream::new(key, b"level-2").take_draws(8);
        assert_ne!(a, b);
        // Length-extension-style near-collisions must also diverge.
        let c = DrawStream::new(key, b"ab").take_draws(8);
        let d = DrawStream::new(key, b"ab\0").take_draws(8);
        assert_ne!(c, d);
    }

    #[test]
    fn draws_consumed_counts() {
        let mut s = DrawStream::new(Key256::from_seed(5), b"x");
        assert_eq!(s.draws_consumed(), 0);
        s.next_u64();
        s.pick(10);
        assert_eq!(s.draws_consumed(), 2);
    }

    #[test]
    fn pick_is_in_range_and_covers_values() {
        let mut s = DrawStream::new(Key256::from_seed(9), b"p");
        let mut seen = [false; 7];
        for _ in 0..500 {
            let p = s.pick(7);
            assert!(p < 7);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&v| v), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn pick_zero_panics() {
        DrawStream::new(Key256::from_seed(1), b"z").pick(0);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude bias check: mean of 10_000 draws scaled to [0,1) near 0.5.
        let mut s = DrawStream::new(Key256::from_seed(77), b"uniform");
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| s.next_u64() as f64 / u64::MAX as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bit_balance() {
        let mut s = DrawStream::new(Key256::from_seed(3), b"bits");
        let mut ones = 0u32;
        let n = 4096;
        for _ in 0..n {
            ones += s.next_u64().count_ones();
        }
        let frac = ones as f64 / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }
}
