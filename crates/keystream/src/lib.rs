//! # keystream — keyed pseudo-randomness and key management for ReverseCloak
//!
//! ReverseCloak drives every segment selection with a shared secret access
//! key: "each road segment is selected in a pseudo-random manner with an
//! access key … with a certain access key, a fixed segment is
//! deterministically selected; without the access key, all its linked
//! segments would have the same probability to be selected". This crate
//! provides:
//!
//! * [`Key256`] — 256-bit access keys with hex I/O and auto generation,
//! * [`DrawStream`] — the deterministic keyed stream of pseudo-random draws
//!   `R_1, R_2, …` shared by anonymization and de-anonymization, now a
//!   ChaCha20-class sponge PRF with length-delimited absorption,
//! * [`ChainState`] — the forward-secret per-owner chain: a hash-forward
//!   ratchet whose per-epoch keys make past receipts unrecoverable from
//!   current state,
//! * [`tag`] — keyed tags used by the payload to bootstrap reversal,
//! * [`KeyManager`] / [`AccessControlProfile`] — the owner-side key store
//!   and the trust-based entitlement logic of the paper's toolkit.
//!
//! ```
//! use keystream::{DrawStream, Key256, KeyManager, Level};
//!
//! let mgr = KeyManager::from_seed(3, 7);
//! let key = mgr.key_for(Level(1))?;
//! let mut stream = DrawStream::new(key, b"request-42/level-1");
//! let pick = stream.pick(6); // p_i = R_i mod |CanA|
//! assert!(pick < 6);
//! # Ok::<(), keystream::KeyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod chain;
pub mod journal;
pub mod key;
pub mod keyring;
pub mod manager;
pub mod stream;
pub mod tag;

pub use access::{AccessControlProfile, AccessError, TrustDegree};
pub use chain::ChainState;
pub use journal::{ChainStore, FileStore, JournalError, MemStore};
pub use key::{Key256, ParseKeyError};
pub use keyring::{read_keyring, write_keyring, write_keyring_file, KeyringError};
pub use manager::{KeyError, KeyManager, Level};
pub use stream::{derive_key, DrawStream};
pub use tag::Tag128;
