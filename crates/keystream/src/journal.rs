//! Durable chain-state journal: an append-only, checksummed write-ahead
//! log of per-owner ratchet advances.
//!
//! PR 7's forward-secret ratchet lives in service memory, so a restart
//! would re-genesis every owner's [`ChainState`] and silently break
//! receipt continuity: a requester's captured epoch-`e` grant must keep
//! opening epoch `e` across the service lifetime. The [`ChainStore`]
//! trait is the persistence boundary that fixes this without widening
//! the secrecy surface more than necessary:
//!
//! * [`MemStore`] keeps the live map in process memory only — exactly
//!   today's behavior, nothing survives a restart;
//! * [`FileStore`] appends one length-framed, CRC-checked record per
//!   ratchet advance and recovers by scanning to the last valid record,
//!   tolerating torn or truncated tails from a crash mid-write.
//!
//! # Record format
//!
//! ```text
//! record   := [len: u32 le] [crc32(payload): u32 le] [payload]
//! payload  := kind: u8 ++ body
//! kind 1   := advance   — epoch u64 le ++ state[32] ++ owner_len u16 le ++ owner
//! kind 2   := snapshot  — count u32 le ++ count × (epoch ++ state ++ owner_len ++ owner)
//! ```
//!
//! Recovery folds records in order: an advance upserts one owner, a
//! snapshot replaces the whole live map. The scan stops at the first
//! record that is truncated, oversized, CRC-corrupt, or structurally
//! invalid — everything after it is dropped (write-ahead-log prefix
//! semantics), and [`FileStore::open`] truncates the file back to the
//! valid prefix before appending again.
//!
//! # Forward secrecy vs. durability
//!
//! An append-only log of every advance would retain *old* chain states
//! on disk — undoing exactly the erasure the ratchet provides in memory.
//! Compaction is the erasure boundary: every `compact_every` appends (or
//! on an explicit [`ChainStore::compact`]) the live `(owner → state,
//! epoch)` map is snapshotted to a temp file which atomically replaces
//! the log, destroying all superseded states. Between compactions the
//! journal deliberately trades a bounded window of past states for
//! crash-safety; deployments wanting a tighter window lower
//! `compact_every`.
//!
//! ```
//! use keystream::{ChainState, FileStore, ChainStore, Key256};
//! let path = std::env::temp_dir().join(format!("rc-journal-doc-{}.wal", std::process::id()));
//! let _ = std::fs::remove_file(&path);
//! let store = FileStore::open(&path)?;
//! let mut chain = ChainState::genesis("alice", &Key256::from_seed(7));
//! chain.ratchet();
//! store.record("alice", &chain)?;
//! drop(store);
//! // A fresh open replays the log: alice's chain is back at epoch 1.
//! let recovered = FileStore::open(&path)?;
//! assert_eq!(recovered.load()?, vec![("alice".to_string(), chain)]);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), keystream::JournalError>(())
//! ```

use crate::chain::ChainState;
use crate::key::Key256;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Record kind byte for a single-owner ratchet advance.
const KIND_ADVANCE: u8 = 1;
/// Record kind byte for a full live-map compaction snapshot.
const KIND_SNAPSHOT: u8 = 2;
/// Fixed bytes per chain entry inside a payload: epoch + state + owner_len.
const ENTRY_FIXED: usize = 8 + 32 + 2;
/// Upper bound on a single record payload; anything larger is treated as
/// a corrupt tail rather than trusted as an allocation size.
const MAX_RECORD_LEN: u32 = 64 << 20;
/// Default number of appended advances between automatic compactions.
const DEFAULT_COMPACT_EVERY: usize = 1024;

/// Errors from the chain journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// Which journal operation was running (`"open"`, `"append"`, …).
        op: &'static str,
        /// The journal path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// A deterministic fault injector refused the operation (test-only
    /// stores; never produced by [`MemStore`] or [`FileStore`]).
    Injected(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, message } => {
                write!(f, "journal {op} failed on {path}: {message}")
            }
            JournalError::Injected(what) => write!(f, "injected journal fault: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Persistence boundary for per-owner chain state.
///
/// The anonymizer journals the **post-ratchet** state through this trait
/// before issuing any receipt for that epoch, so a store that reports
/// `Ok` has durably (to its own guarantee level) recorded every epoch a
/// receipt may reference.
pub trait ChainStore: Send + Sync {
    /// Appends `owner`'s freshly ratcheted state to the journal.
    fn record(&self, owner: &str, state: &ChainState) -> Result<(), JournalError>;

    /// Returns the live `(owner, state)` map recovered from the journal,
    /// sorted by owner for deterministic replay.
    fn load(&self) -> Result<Vec<(String, ChainState)>, JournalError>;

    /// Compacts the journal down to a single snapshot of the live map,
    /// erasing all superseded (older-epoch) states it retained.
    fn compact(&self) -> Result<(), JournalError>;
}

/// In-memory [`ChainStore`]: today's behavior — chains live only for the
/// process lifetime and a restart re-genesises every owner.
///
/// It still tracks the live map so in-process restart simulations (and
/// the fault harness) can share one store between service generations
/// via `Arc`, but nothing ever touches disk.
#[derive(Debug, Default)]
pub struct MemStore {
    live: Mutex<HashMap<String, ChainState>>,
}

impl MemStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ChainStore for MemStore {
    fn record(&self, owner: &str, state: &ChainState) -> Result<(), JournalError> {
        self.live.lock().insert(owner.to_string(), state.clone());
        Ok(())
    }

    fn load(&self) -> Result<Vec<(String, ChainState)>, JournalError> {
        let mut out: Vec<_> = self
            .live
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn compact(&self) -> Result<(), JournalError> {
        Ok(())
    }
}

/// Durable [`ChainStore`] backed by a checksummed append-only log file.
///
/// See the [module docs](self) for the record format, torn-tail recovery
/// rules, and the compaction/forward-secrecy trade-off.
#[derive(Debug)]
pub struct FileStore {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    file: File,
    path: PathBuf,
    live: HashMap<String, ChainState>,
    /// Advances appended since the last snapshot (persisted or scanned).
    since_snapshot: usize,
    compact_every: usize,
}

impl FileStore {
    /// Opens (or creates) the journal at `path`, scans it to the last
    /// valid record, truncates any torn tail, and rebuilds the live map.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        Self::open_with_compaction(path, DEFAULT_COMPACT_EVERY)
    }

    /// [`open`](Self::open) with an explicit auto-compaction cadence:
    /// after every `compact_every` appended advances the log is rewritten
    /// as a single snapshot. Lower values shrink the window of past
    /// states the log retains; `usize::MAX` disables auto-compaction.
    pub fn open_with_compaction(
        path: impl AsRef<Path>,
        compact_every: usize,
    ) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let io = |op: &'static str, e: std::io::Error| JournalError::Io {
            op,
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io("open", e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| io("read", e))?;
        let scan = scan_log(&data);
        if scan.valid_len < data.len() {
            // Drop the torn/corrupt tail so new appends extend the valid
            // prefix instead of burying records behind garbage.
            file.set_len(scan.valid_len as u64)
                .map_err(|e| io("truncate", e))?;
        }
        file.seek(SeekFrom::Start(scan.valid_len as u64))
            .map_err(|e| io("seek", e))?;
        Ok(FileStore {
            inner: Mutex::new(Inner {
                file,
                path,
                live: scan.live,
                since_snapshot: scan.since_snapshot,
                compact_every: compact_every.max(1),
            }),
        })
    }

    /// The journal's on-disk size in bytes (valid prefix only).
    pub fn log_bytes(&self) -> Result<u64, JournalError> {
        let inner = self.inner.lock();
        inner
            .file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| JournalError::Io {
                op: "stat",
                path: inner.path.display().to_string(),
                message: e.to_string(),
            })
    }
}

impl Inner {
    fn io(&self, op: &'static str, e: std::io::Error) -> JournalError {
        JournalError::Io {
            op,
            path: self.path.display().to_string(),
            message: e.to_string(),
        }
    }

    fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        let framed = frame(payload);
        self.file
            .write_all(&framed)
            .and_then(|_| self.file.flush())
            .map_err(|e| self.io("append", e))
    }

    /// Rewrites the log as one snapshot record via a temp file and an
    /// atomic rename, then reopens the handle. This is the erasure
    /// boundary: every superseded state the log retained is destroyed.
    fn compact(&mut self) -> Result<(), JournalError> {
        let mut entries: Vec<_> = self.live.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut payload = Vec::with_capacity(
            1 + 4
                + entries
                    .iter()
                    .map(|(o, _)| ENTRY_FIXED + o.len())
                    .sum::<usize>(),
        );
        payload.push(KIND_SNAPSHOT);
        payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (owner, state) in entries {
            encode_entry(&mut payload, owner, state);
        }
        let tmp = self.path.with_file_name(format!(
            "{}.tmp",
            self.path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "chain-journal".to_string())
        ));
        {
            let mut f = File::create(&tmp).map_err(|e| self.io("compact-create", e))?;
            f.write_all(&frame(&payload))
                .and_then(|_| f.sync_all())
                .map_err(|e| self.io("compact-write", e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| self.io("compact-rename", e))?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| self.io("compact-reopen", e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| self.io("compact-seek", e))?;
        self.since_snapshot = 0;
        Ok(())
    }
}

impl ChainStore for FileStore {
    fn record(&self, owner: &str, state: &ChainState) -> Result<(), JournalError> {
        let mut inner = self.inner.lock();
        let mut payload = Vec::with_capacity(1 + ENTRY_FIXED + owner.len());
        payload.push(KIND_ADVANCE);
        encode_entry(&mut payload, owner, state);
        inner.append(&payload)?;
        inner.live.insert(owner.to_string(), state.clone());
        inner.since_snapshot += 1;
        if inner.since_snapshot >= inner.compact_every {
            inner.compact()?;
        }
        Ok(())
    }

    fn load(&self) -> Result<Vec<(String, ChainState)>, JournalError> {
        let inner = self.inner.lock();
        let mut out: Vec<_> = inner
            .live
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn compact(&self) -> Result<(), JournalError> {
        self.inner.lock().compact()
    }
}

/// Serializes one `(owner, state)` entry into `out`.
fn encode_entry(out: &mut Vec<u8>, owner: &str, state: &ChainState) {
    out.extend_from_slice(&state.epoch().to_le_bytes());
    out.extend_from_slice(state.state_key().as_bytes());
    out.extend_from_slice(&(owner.len() as u16).to_le_bytes());
    out.extend_from_slice(owner.as_bytes());
}

/// Frames a payload as `[len][crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

struct ScanResult {
    live: HashMap<String, ChainState>,
    valid_len: usize,
    since_snapshot: usize,
}

/// Folds the log's records in order, stopping at the first truncated,
/// oversized, CRC-corrupt, or structurally invalid record. Everything
/// up to that point is the recovered state; `valid_len` marks where
/// appends may safely resume.
fn scan_log(data: &[u8]) -> ScanResult {
    let mut live = HashMap::new();
    let mut offset = 0usize;
    let mut since_snapshot = 0usize;
    while data.len() - offset >= 8 {
        let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = data.get(offset + 8..offset + 8 + len) else {
            break; // torn tail: record extends past end of file
        };
        if crc32(payload) != crc {
            break;
        }
        match parse_payload(payload) {
            Some(Record::Advance(owner, state)) => {
                live.insert(owner, state);
                since_snapshot += 1;
            }
            Some(Record::Snapshot(entries)) => {
                live = entries.into_iter().collect();
                since_snapshot = 0;
            }
            None => break, // CRC-valid but structurally alien: corrupt tail
        }
        offset += 8 + len;
    }
    ScanResult {
        live,
        valid_len: offset,
        since_snapshot,
    }
}

enum Record {
    Advance(String, ChainState),
    Snapshot(Vec<(String, ChainState)>),
}

/// Parses one entry at `*pos`, enforcing bounds before any allocation.
fn parse_entry(payload: &[u8], pos: &mut usize) -> Option<(String, ChainState)> {
    let fixed = payload.get(*pos..*pos + ENTRY_FIXED)?;
    let epoch = u64::from_le_bytes(fixed[0..8].try_into().unwrap());
    let state: [u8; 32] = fixed[8..40].try_into().unwrap();
    let owner_len = u16::from_le_bytes(fixed[40..42].try_into().unwrap()) as usize;
    let owner_bytes = payload.get(*pos + ENTRY_FIXED..*pos + ENTRY_FIXED + owner_len)?;
    let owner = std::str::from_utf8(owner_bytes).ok()?.to_string();
    *pos += ENTRY_FIXED + owner_len;
    Some((
        owner,
        ChainState::from_parts(Key256::from_bytes(state), epoch),
    ))
}

fn parse_payload(payload: &[u8]) -> Option<Record> {
    let (&kind, rest) = payload.split_first()?;
    match kind {
        KIND_ADVANCE => {
            let mut pos = 0;
            let (owner, state) = parse_entry(rest, &mut pos)?;
            (pos == rest.len()).then_some(Record::Advance(owner, state))
        }
        KIND_SNAPSHOT => {
            let count_bytes = rest.get(..4)?;
            let count = u32::from_le_bytes(count_bytes.try_into().unwrap()) as usize;
            // Each entry needs at least ENTRY_FIXED bytes, so an honest
            // count is bounded by the payload itself — never trust it as
            // an allocation size beyond that.
            if count > (rest.len() - 4) / ENTRY_FIXED {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            let mut pos = 4;
            for _ in 0..count {
                entries.push(parse_entry(rest, &mut pos)?);
            }
            (pos == rest.len()).then_some(Record::Snapshot(entries))
        }
        _ => None,
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(owner: &str, epochs: u64) -> ChainState {
        let mut c = ChainState::genesis(owner, &Key256::from_seed(11));
        for _ in 0..epochs {
            c.ratchet();
        }
        c
    }

    fn tmp_path(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "rc-journal-{}-{}-{name}.wal",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn memstore_roundtrips_live_map_without_durability() {
        let store = MemStore::new();
        store.record("bob", &chain("bob", 3)).unwrap();
        store.record("alice", &chain("alice", 1)).unwrap();
        store.record("bob", &chain("bob", 4)).unwrap();
        let live = store.load().unwrap();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].0, "alice");
        assert_eq!(live[1].1.epoch(), 4);
        store.compact().unwrap();
        assert_eq!(store.load().unwrap().len(), 2);
    }

    #[test]
    fn filestore_recovers_latest_state_per_owner() {
        let path = tmp_path("recover");
        {
            let store = FileStore::open(&path).unwrap();
            for e in 1..=5 {
                store.record("alice", &chain("alice", e)).unwrap();
            }
            store.record("bob", &chain("bob", 2)).unwrap();
        }
        let store = FileStore::open(&path).unwrap();
        let live = store.load().unwrap();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0], ("alice".into(), chain("alice", 5)));
        assert_eq!(live[1], ("bob".into(), chain("bob", 2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_mid_log_byte_invalidates_the_tail() {
        let path = tmp_path("corrupt");
        {
            let store = FileStore::open(&path).unwrap();
            for e in 1..=4 {
                store.record("alice", &chain("alice", e)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = bytes.len() / 4;
        // Flip a byte inside the second record's payload.
        bytes[record_len + 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = FileStore::open(&path).unwrap();
        // Only the first record survives; the corrupt record and every
        // record after it are dropped (WAL prefix semantics).
        assert_eq!(
            store.load().unwrap(),
            vec![("alice".into(), chain("alice", 1))]
        );
        // The torn tail was truncated away so appends resume cleanly.
        assert_eq!(store.log_bytes().unwrap(), record_len as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_bounds_the_log_and_preserves_the_live_map() {
        let path = tmp_path("compact");
        let store = FileStore::open_with_compaction(&path, 8).unwrap();
        for e in 1..=100 {
            store.record("alice", &chain("alice", e)).unwrap();
            store.record("bob", &chain("bob", e)).unwrap();
        }
        // Auto-compaction keeps the log within one cadence of appends.
        let per_record = 8 + 1 + ENTRY_FIXED + 5;
        assert!(store.log_bytes().unwrap() <= (8 * per_record + 256) as u64);
        let live_before = store.load().unwrap();
        store.compact().unwrap();
        assert_eq!(store.load().unwrap(), live_before);
        drop(store);
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.load().unwrap(), live_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_erases_superseded_states_from_disk() {
        let path = tmp_path("erase");
        let store = FileStore::open(&path).unwrap();
        let old = chain("alice", 1);
        store.record("alice", &old).unwrap();
        store.record("alice", &chain("alice", 2)).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let old_state = old.state_key().as_bytes();
        assert!(
            raw.windows(32).any(|w| w == old_state),
            "pre-compaction log should still hold the old state"
        );
        store.compact().unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(
            !raw.windows(32).any(|w| w == old_state),
            "compaction must erase superseded chain states"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_unwritable_path_with_io_error() {
        let err = FileStore::open("/definitely/not/a/real/dir/chain.wal").unwrap_err();
        assert!(matches!(err, JournalError::Io { op: "open", .. }));
        assert!(err.to_string().contains("journal open failed"));
    }
}
