//! Keyring persistence: saving and loading per-level keys.
//!
//! The paper's Anonymizer "automatically generate\[s\] and manage\[s\] access
//! keys"; this module is the storage half — a simple line format
//!
//! ```text
//! # reversecloak keyring v1
//! level 1 <64-hex>
//! level 2 <64-hex>
//! ```
//!
//! **The file contains secrets.** [`write_keyring_file`] creates it with
//! owner-only permissions (`0o600`) on Unix; callers streaming through
//! [`write_keyring`] with their own writer are responsible for placing
//! the output somewhere equally protected.

use crate::key::Key256;
use crate::manager::KeyManager;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error from keyring I/O.
#[derive(Debug)]
pub enum KeyringError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a reason.
    Parse(usize, String),
    /// Levels were missing or out of order.
    BadLevels(String),
}

impl fmt::Display for KeyringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyringError::Io(e) => write!(f, "i/o error: {e}"),
            KeyringError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            KeyringError::BadLevels(msg) => write!(f, "bad keyring structure: {msg}"),
        }
    }
}

impl Error for KeyringError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KeyringError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KeyringError {
    fn from(e: std::io::Error) -> Self {
        KeyringError::Io(e)
    }
}

/// Writes a key manager's keys as a keyring.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_keyring<W: Write>(mgr: &KeyManager, mut w: W) -> Result<(), KeyringError> {
    writeln!(w, "# reversecloak keyring v1")?;
    for (level, key) in mgr.iter() {
        writeln!(w, "level {} {}", level.0, key.to_hex())?;
    }
    Ok(())
}

/// Writes a key manager's keys as a keyring file at `path`, created (or
/// truncated) with owner-only permissions (`0o600`) on Unix — the file
/// contains secrets, so group/world readability is never acceptable.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_keyring_file(
    mgr: &KeyManager,
    path: impl AsRef<std::path::Path>,
) -> Result<(), KeyringError> {
    let mut opts = std::fs::OpenOptions::new();
    opts.write(true).create(true).truncate(true);
    #[cfg(unix)]
    {
        use std::os::unix::fs::OpenOptionsExt;
        opts.mode(0o600);
    }
    let file = opts.open(path)?;
    // `mode` only applies at creation; tighten pre-existing files too.
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        let mut perm = file.metadata()?.permissions();
        perm.set_mode(0o600);
        file.set_permissions(perm)?;
    }
    let mut w = std::io::BufWriter::new(file);
    write_keyring(mgr, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a keyring written by [`write_keyring`].
///
/// # Errors
///
/// Fails on malformed lines, duplicate/missing levels, or bad hex.
pub fn read_keyring<R: BufRead>(r: R) -> Result<KeyManager, KeyringError> {
    let mut entries: Vec<(u8, Key256)> = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("level") => {}
            Some(other) => {
                return Err(KeyringError::Parse(
                    lineno,
                    format!("unknown record `{other}`"),
                ))
            }
            None => continue,
        }
        let level: u8 = parts
            .next()
            .ok_or_else(|| KeyringError::Parse(lineno, "missing level number".into()))?
            .parse()
            .map_err(|_| KeyringError::Parse(lineno, "invalid level number".into()))?;
        let hex = parts
            .next()
            .ok_or_else(|| KeyringError::Parse(lineno, "missing key".into()))?;
        let key = Key256::from_hex(hex)
            .map_err(|e| KeyringError::Parse(lineno, format!("invalid key: {e}")))?;
        if parts.next().is_some() {
            return Err(KeyringError::Parse(lineno, "trailing tokens".into()));
        }
        entries.push((level, key));
    }
    entries.sort_by_key(|(l, _)| *l);
    for (i, (l, _)) in entries.iter().enumerate() {
        let expect = i as u8 + 1;
        if *l != expect {
            return Err(KeyringError::BadLevels(format!(
                "expected level {expect}, found level {l}"
            )));
        }
    }
    if entries.is_empty() {
        return Err(KeyringError::BadLevels("no keys in keyring".into()));
    }
    Ok(KeyManager::from_keys(
        entries.into_iter().map(|(_, k)| k).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mgr = KeyManager::from_seed(4, 77);
        let mut buf = Vec::new();
        write_keyring(&mgr, &mut buf).unwrap();
        let back = read_keyring(buf.as_slice()).unwrap();
        assert_eq!(mgr, back);
    }

    #[test]
    fn file_roundtrip_creates_owner_only_permissions() {
        let mgr = KeyManager::from_seed(3, 42);
        let path = std::env::temp_dir().join(format!("rc-keyring-test-{}.txt", std::process::id()));
        // Pre-create the file wide open: the writer must tighten it.
        std::fs::write(&path, "stale").unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o644)).unwrap();
        }
        write_keyring_file(&mgr, &path).unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let mode = std::fs::metadata(&path).unwrap().permissions().mode() & 0o777;
            assert_eq!(mode, 0o600, "keyring file must be owner-only");
        }
        let back =
            read_keyring(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        assert_eq!(mgr, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn accepts_shuffled_levels() {
        let mgr = KeyManager::from_seed(3, 5);
        let mut buf = Vec::new();
        write_keyring(&mgr, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1..].reverse(); // shuffle key lines, keep header first
        let shuffled = lines.join("\n");
        let back = read_keyring(shuffled.as_bytes()).unwrap();
        assert_eq!(mgr, back);
    }

    #[test]
    fn rejects_gaps_and_duplicates() {
        let k = Key256::from_seed(1).to_hex();
        let gap = format!("level 1 {k}\nlevel 3 {k}\n");
        assert!(matches!(
            read_keyring(gap.as_bytes()),
            Err(KeyringError::BadLevels(_))
        ));
        let dup = format!("level 1 {k}\nlevel 1 {k}\n");
        assert!(read_keyring(dup.as_bytes()).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_keyring("level\n".as_bytes()).is_err());
        assert!(read_keyring("level x abc\n".as_bytes()).is_err());
        assert!(read_keyring("level 1 nothex\n".as_bytes()).is_err());
        let k = Key256::from_seed(1).to_hex();
        assert!(read_keyring(format!("level 1 {k} extra\n").as_bytes()).is_err());
        assert!(read_keyring(format!("key 1 {k}\n").as_bytes()).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            read_keyring("# empty\n".as_bytes()),
            Err(KeyringError::BadLevels(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = KeyringError::Parse(3, "oops".into());
        assert!(e.to_string().contains("line 3"));
    }
}
