//! Torn-write recovery properties of the chain journal.
//!
//! A crash can cut the write-ahead log at *any* byte. Recovery must
//! yield exactly the longest valid record prefix — never a partially
//! applied record, never a panic — and every recovered epoch must be
//! monotone (the last fully journaled advance per owner).

use keystream::{ChainState, ChainStore, FileStore, Key256};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const OWNERS: [&str; 3] = ["alice", "bob", "carol"];
const RECORDS: usize = 18;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tmp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "rc-journal-prop-{}-{}-{name}.wal",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn chain_at(owner: &str, epoch: u64) -> ChainState {
    let mut c = ChainState::genesis(owner, &Key256::from_seed(77));
    for _ in 0..epoch {
        c.ratchet();
    }
    c
}

/// Writes a fixed round-robin log (no auto-compaction) and returns the
/// full log bytes, the per-record `(owner, epoch)` schedule, and each
/// record's *end* offset in the file.
fn build_log() -> (Vec<u8>, Vec<(&'static str, u64)>, Vec<u64>) {
    let path = tmp_path("build");
    let store = FileStore::open_with_compaction(&path, usize::MAX).unwrap();
    let mut schedule = Vec::new();
    let mut ends = Vec::new();
    for i in 0..RECORDS {
        let owner = OWNERS[i % OWNERS.len()];
        let epoch = (i / OWNERS.len() + 1) as u64;
        store.record(owner, &chain_at(owner, epoch)).unwrap();
        schedule.push((owner, epoch));
        ends.push(store.log_bytes().unwrap());
    }
    drop(store);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, schedule, ends)
}

/// The live map a correct recovery must produce when exactly the first
/// `k` records survive.
fn expected_after(schedule: &[(&str, u64)], k: usize) -> HashMap<String, u64> {
    let mut live = HashMap::new();
    for &(owner, epoch) in &schedule[..k] {
        live.insert(owner.to_string(), epoch);
    }
    live
}

fn recover_truncated(bytes: &[u8], cut: usize, name: &str) -> HashMap<String, ChainState> {
    let path = tmp_path(name);
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let store = FileStore::open(&path).unwrap();
    let live: HashMap<_, _> = store.load().unwrap().into_iter().collect();
    std::fs::remove_file(&path).ok();
    live
}

fn assert_prefix_recovery(live: &HashMap<String, ChainState>, schedule: &[(&str, u64)], k: usize) {
    let expected = expected_after(schedule, k);
    assert_eq!(
        live.len(),
        expected.len(),
        "recovery after {k} records must hold exactly the owners journaled so far"
    );
    for (owner, epoch) in expected {
        let state = live
            .get(&owner)
            .unwrap_or_else(|| panic!("owner {owner} lost by recovery at prefix {k}"));
        assert_eq!(state.epoch(), epoch, "owner {owner} epoch at prefix {k}");
        assert_eq!(
            state,
            &chain_at(&owner, epoch),
            "owner {owner} state bytes must match the journaled chain"
        );
    }
}

/// The satellite requirement verbatim: truncate at **every byte offset
/// of the final record** and recover. Every cut inside the final record
/// must yield the full prefix before it — the torn record contributes
/// nothing, and no epoch regresses below its last complete advance.
#[test]
fn truncation_at_every_byte_of_final_record_yields_longest_valid_prefix() {
    let (bytes, schedule, ends) = build_log();
    let penultimate = ends[RECORDS - 2] as usize;
    let full = ends[RECORDS - 1] as usize;
    assert_eq!(full, bytes.len());
    for cut in penultimate..full {
        let live = recover_truncated(&bytes, cut, "final");
        assert_prefix_recovery(&live, &schedule, RECORDS - 1);
    }
    // And the untruncated log recovers every record.
    let live = recover_truncated(&bytes, full, "final-full");
    assert_prefix_recovery(&live, &schedule, RECORDS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any cut anywhere in the log recovers exactly the records fully
    /// contained in the surviving bytes.
    #[test]
    fn any_truncation_recovers_exactly_the_contained_records(raw_cut in any::<u64>()) {
        let (bytes, schedule, ends) = build_log();
        let cut = (raw_cut % (bytes.len() as u64 + 1)) as usize;
        let k = ends.iter().filter(|&&end| end as usize <= cut).count();
        let live = recover_truncated(&bytes, cut, "anycut");
        assert_prefix_recovery(&live, &schedule, k);
    }

    /// Flipping any byte anywhere invalidates that record and the whole
    /// tail behind it — recovery falls back to the longest valid prefix
    /// instead of trusting a corrupt record.
    #[test]
    fn any_single_byte_corruption_recovers_the_prefix_before_it(
        raw_pos in any::<u64>(),
        raw_mask in any::<u8>(),
    ) {
        let (mut bytes, schedule, ends) = build_log();
        let pos = (raw_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= raw_mask | 1; // never a no-op flip
        // The corrupt byte lives in record k (0-based): every record
        // ending at or before `pos` survives, nothing after does.
        let k = ends.iter().filter(|&&end| end as usize <= pos).count();
        let live = recover_truncated(&bytes, bytes.len(), "flip");
        assert_prefix_recovery(&live, &schedule, k);
    }
}
