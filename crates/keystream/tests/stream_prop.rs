//! Property and statistical tests of the keyed stream and tags: the
//! pseudo-randomness the privacy argument rests on.

use keystream::{tag, DrawStream, Key256, KeyManager, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streams_are_deterministic_functions_of_key_and_context(
        key_seed in any::<u64>(),
        ctx in proptest::collection::vec(any::<u8>(), 0..64),
        n in 1usize..64,
    ) {
        let key = Key256::from_seed(key_seed);
        let a = DrawStream::new(key, &ctx).take_draws(n);
        let b = DrawStream::new(key, &ctx).take_draws(n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn different_keys_give_different_streams(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        ctx in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(seed_a != seed_b);
        let a = DrawStream::new(Key256::from_seed(seed_a), &ctx).take_draws(16);
        let b = DrawStream::new(Key256::from_seed(seed_b), &ctx).take_draws(16);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn context_bytes_matter(
        key_seed in any::<u64>(),
        ctx in proptest::collection::vec(any::<u8>(), 1..48),
        flip in 0usize..48,
    ) {
        let key = Key256::from_seed(key_seed);
        let mut ctx2 = ctx.clone();
        let i = flip % ctx2.len();
        ctx2[i] ^= 0x01;
        let a = DrawStream::new(key, &ctx).take_draws(8);
        let b = DrawStream::new(key, &ctx2).take_draws(8);
        prop_assert_ne!(a, b, "single-bit context change must change the stream");
    }

    #[test]
    fn pick_respects_modulus(
        key_seed in any::<u64>(),
        n in 1usize..10_000,
        draws in 1usize..32,
    ) {
        let mut s = DrawStream::new(Key256::from_seed(key_seed), b"pick");
        for _ in 0..draws {
            prop_assert!(s.pick(n) < n);
        }
    }

    #[test]
    fn tags_commit_to_all_inputs(
        key_seed in any::<u64>(),
        ctx in proptest::collection::vec(any::<u8>(), 0..24),
        msg in proptest::collection::vec(any::<u8>(), 0..24),
        flip_msg in any::<bool>(),
        flip_at in 0usize..24,
    ) {
        let key = Key256::from_seed(key_seed);
        let t = tag::compute(key, &ctx, &msg);
        prop_assert!(tag::verify(key, &ctx, &msg, t));
        // Flipping one bit anywhere breaks verification.
        let (mut ctx2, mut msg2) = (ctx.clone(), msg.clone());
        let target = if flip_msg { &mut msg2 } else { &mut ctx2 };
        if !target.is_empty() {
            let i = flip_at % target.len();
            target[i] ^= 0x80;
            prop_assert!(!tag::verify(key, &ctx2, &msg2, t));
        }
    }

    #[test]
    fn key_hex_roundtrip(key_seed in any::<u64>()) {
        let k = Key256::from_seed(key_seed);
        prop_assert_eq!(Key256::from_hex(&k.to_hex()).unwrap(), k);
    }

    /// Distinct `(seed, level)` pairs must never share a key — the old
    /// `seed * 1_000_003 + level` derivation collided whenever two seeds
    /// differed by the multiplier's modular inverse.
    #[test]
    fn seeded_level_keys_form_a_collision_free_grid(
        seed_a in any::<u64>(),
        delta in 1u64..1u64 << 32,
        levels in 1usize..6,
    ) {
        let seed_b = seed_a.wrapping_add(delta);
        let a = KeyManager::from_seed(levels, seed_a);
        let b = KeyManager::from_seed(levels, seed_b);
        let mut seen = std::collections::HashSet::new();
        for mgr in [&a, &b] {
            for (_, key) in mgr.iter() {
                prop_assert!(seen.insert(key), "duplicate key in seed×level grid");
            }
        }
        prop_assert_eq!(a.key_for(Level(1)).unwrap(), KeyManager::from_seed(levels, seed_a).key_for(Level(1)).unwrap());
    }
}

/// Avalanche: flipping one key bit flips ~half of the first output bits.
#[test]
fn key_avalanche() {
    let base = Key256::from_seed(1234);
    let base_out = DrawStream::new(base, b"avalanche").take_draws(4);
    let mut total_flips = 0u32;
    let mut trials = 0u32;
    for byte in 0..32 {
        for bit in [0u8, 3, 7] {
            let mut bytes = *base.as_bytes();
            bytes[byte] ^= 1 << bit;
            let out = DrawStream::new(Key256::from_bytes(bytes), b"avalanche").take_draws(4);
            for (a, b) in base_out.iter().zip(&out) {
                total_flips += (a ^ b).count_ones();
                trials += 64;
            }
        }
    }
    let frac = total_flips as f64 / trials as f64;
    assert!(
        (frac - 0.5).abs() < 0.03,
        "avalanche fraction {frac} should be near 0.5"
    );
}

/// Chi-square-style residue balance of `pick` over a non-power-of-two
/// modulus (the pick-value path used by the cloaking engines).
#[test]
fn pick_residues_are_balanced() {
    let mut s = DrawStream::new(Key256::from_seed(777), b"chi");
    let n = 7usize;
    let draws = 70_000;
    let mut counts = vec![0u32; n];
    for _ in 0..draws {
        counts[s.pick(n)] += 1;
    }
    let expect = draws as f64 / n as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum();
    // 6 degrees of freedom; 22.46 is the 0.1% critical value.
    assert!(chi2 < 22.46, "chi-square {chi2} too large: {counts:?}");
}
