//! Property tests for the heterogeneous behavior models.
//!
//! Whatever [`BehaviorMix`] a simulation runs under — homogeneous taxis,
//! commuter cycles, rush-hour waves, or arbitrary heterogeneous weight
//! vectors — every car's trajectory must stay *physical*:
//!
//! * **CSR adjacency** — a car's current segment plus its pending route
//!   forms a chain in the road graph: each consecutive pair shares a
//!   junction (`RoadNetwork::segments_adjacent`), so no behavior model
//!   ever teleports a car onto a disconnected segment;
//! * **speed bound** — between consecutive ticks a car moves at most
//!   `vmax · dt` meters of road, so its new segment is inside the
//!   `ceil(vmax·dt / min_len) + 1`-hop reachable set of its old one
//!   (the same conservative bound the movement-model adversary prunes
//!   with — if traffic violated it, the adversary's soundness proof
//!   would be vacuous);
//! * **striping** — `kind_for` respects the weight vector: every kind
//!   with nonzero weight appears, zero-weight kinds never do, and the
//!   assignment is deterministic.

use mobisim::{BehaviorKind, BehaviorMix, RushSchedule, SimConfig, Simulation};
use proptest::prelude::*;
use roadnet::{grid_city, RoadNetwork, SegmentId};

fn named_mixes() -> Vec<BehaviorMix> {
    vec![
        BehaviorMix::uniform(),
        BehaviorMix::commuter_city(),
        BehaviorMix::taxi_fleet(),
        BehaviorMix::rush_hour(),
    ]
}

/// The conservative hop budget for one tick: a car driving flat-out for
/// `dt` seconds crosses at most `vmax·dt / min_len` whole segments, +1
/// for starting mid-segment.
fn hop_budget(net: &RoadNetwork, vmax: f64, dt: f64) -> usize {
    let min_len = net
        .segments()
        .map(|s| s.length())
        .fold(f64::INFINITY, f64::min);
    ((vmax * dt / min_len).ceil() as usize) + 1
}

fn assert_trajectories_physical(mix: BehaviorMix, seed: u64, ticks: usize, dt: f64) {
    let net = grid_city(6, 6, 100.0);
    let cfg = SimConfig {
        cars: 80,
        seed,
        behavior: mix.clone(),
        ..Default::default()
    };
    let vmax = cfg.speed_range.1;
    let mut sim = Simulation::new(net.clone(), cfg);
    let reach = net.reach_index(hop_budget(&net, vmax, dt));

    for tick in 0..ticks {
        let before: Vec<SegmentId> = sim.cars().iter().map(|c| c.segment()).collect();
        sim.step(dt);
        for (i, car) in sim.cars().iter().enumerate() {
            // Speed bound: the tick's displacement stays inside the
            // conservative reachable set.
            assert!(
                reach.reaches(before[i], car.segment()),
                "{mix:?}: tick {tick}, car {i} jumped {:?} -> {:?}",
                before[i],
                car.segment()
            );
            // CSR adjacency: current segment + pending route is a chain.
            // The route vector is stored reversed (next hop at the back),
            // and the first hop may re-traverse the current segment
            // (trips are planned from its far endpoint).
            let mut prev = car.segment();
            for &next in car.route().iter().rev() {
                assert!(
                    prev == next || net.segments_adjacent(prev, next),
                    "{mix:?}: tick {tick}, car {i} routed {prev:?} -> {next:?} (not adjacent)"
                );
                prev = next;
            }
            // Per-car speed stays inside the configured range.
            assert!(
                car.speed() >= 0.0 && car.speed() <= vmax,
                "{mix:?}: car {i} speed {}",
                car.speed()
            );
        }
    }
}

#[test]
fn named_mixes_keep_trajectories_physical() {
    for mix in named_mixes() {
        assert_trajectories_physical(mix, 0xbe4a_u64, 20, 10.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary heterogeneous weight vectors and schedules: adjacency
    /// and the `vmax·dt` reach bound hold at every tick.
    #[test]
    fn arbitrary_mixes_keep_trajectories_physical(
        seed in any::<u64>(),
        taxis in 0u32..5,
        commuters in 0u32..8,
        parked in 0u32..5,
        period in 4u64..24,
        dt in 4.0f64..16.0,
    ) {
        let morning = (1, (period / 2).max(2));
        let evening = (period / 2 + 1, period);
        let mix = BehaviorMix::Heterogeneous {
            taxis,
            commuters,
            parked,
            rush: RushSchedule { period, morning, evening },
        };
        assert_trajectories_physical(mix, seed, 8, dt);
    }

    /// `kind_for` is a faithful, deterministic striping of the weight
    /// vector: zero-weight kinds never appear, nonzero-weight kinds all
    /// appear in a large-enough population, and the split tracks the
    /// weights to within a loose tolerance.
    #[test]
    fn kind_striping_tracks_the_weight_vector(
        taxis in 0u32..6,
        commuters in 0u32..6,
        parked in 0u32..6,
    ) {
        prop_assume!(taxis + commuters + parked > 0);
        let mix = BehaviorMix::Heterogeneous {
            taxis,
            commuters,
            parked,
            rush: RushSchedule::default(),
        };
        let population = 3000usize;
        let mut counts = [0usize; 3];
        for i in 0..population {
            let kind = mix.kind_for(i);
            prop_assert_eq!(kind, mix.kind_for(i), "striping must be deterministic");
            counts[match kind {
                BehaviorKind::Taxi => 0,
                BehaviorKind::Commuter => 1,
                BehaviorKind::Parked => 2,
            }] += 1;
        }
        let total = (taxis + commuters + parked) as f64;
        for (count, weight) in counts.iter().zip([taxis, commuters, parked]) {
            if weight == 0 {
                prop_assert_eq!(*count, 0, "zero-weight kind appeared");
            } else {
                let expected = population as f64 * weight as f64 / total;
                prop_assert!(
                    (*count as f64 - expected).abs() < population as f64 * 0.25,
                    "kind share {count} far from expected {expected:.0}"
                );
            }
        }
    }

    /// Parked cars do not move; the density they pin down is the floor
    /// the rush-hour mix builds its wave on.
    #[test]
    fn parked_cars_never_move(seed in any::<u64>()) {
        let net = grid_city(5, 5, 100.0);
        let mut sim = Simulation::new(
            net,
            SimConfig {
                cars: 60,
                seed,
                behavior: BehaviorMix::Heterogeneous {
                    taxis: 0,
                    commuters: 0,
                    parked: 1,
                    rush: RushSchedule::default(),
                },
                ..Default::default()
            },
        );
        let before: Vec<SegmentId> = sim.cars().iter().map(|c| c.segment()).collect();
        sim.run(6, 10.0);
        let after: Vec<SegmentId> = sim.cars().iter().map(|c| c.segment()).collect();
        prop_assert_eq!(before, after, "an all-parked population must be static");
    }
}
