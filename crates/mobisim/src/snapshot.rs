//! Per-segment occupancy snapshots — the interface the anonymizer consumes.
//!
//! A cloaking request is evaluated against the user density *at request
//! time*; [`OccupancySnapshot`] freezes that density so anonymization and
//! later analysis see identical counts.

use crate::car::CarId;
use crate::sim::Simulation;
use roadnet::SegmentId;
use serde::{Deserialize, Serialize};

/// A frozen users-per-segment view of the traffic at some instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySnapshot {
    /// Simulation time the snapshot was taken at (seconds), if known.
    taken_at_ms: u64,
    counts: Vec<u32>,
    total: u64,
}

impl OccupancySnapshot {
    /// Builds a snapshot from raw per-segment counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let total = counts.iter().map(|&c| c as u64).sum();
        OccupancySnapshot {
            taken_at_ms: 0,
            counts,
            total,
        }
    }

    /// Captures the current state of a simulation.
    pub fn capture(sim: &Simulation) -> Self {
        let mut snap = Self::from_counts(Vec::new());
        snap.recapture(sim);
        snap
    }

    /// Re-captures a simulation into this snapshot, reusing the counts
    /// buffer instead of allocating a fresh one — the cadence path of a
    /// continuous pipeline ([`Simulation::capture_into`] delegates
    /// here). Equivalent to `*self = OccupancySnapshot::capture(sim)`.
    pub fn recapture(&mut self, sim: &Simulation) {
        sim.occupancy_into(&mut self.counts);
        self.total = self.counts.iter().map(|&c| c as u64).sum();
        self.taken_at_ms = (sim.clock() * 1000.0) as u64;
    }

    /// A uniform snapshot with `k` users on every segment (useful for
    /// benchmarks that want k-anonymity to depend only on region size).
    pub fn uniform(segments: usize, per_segment: u32) -> Self {
        Self::from_counts(vec![per_segment; segments])
    }

    /// Users on one segment (0 for out-of-range ids).
    pub fn users_on(&self, s: SegmentId) -> u32 {
        self.counts.get(s.index()).copied().unwrap_or(0)
    }

    /// Total users across segments in `ids`.
    pub fn users_in<I: IntoIterator<Item = SegmentId>>(&self, ids: I) -> u64 {
        ids.into_iter().map(|s| self.users_on(s) as u64).sum()
    }

    /// Total users on the map.
    pub fn total_users(&self) -> u64 {
        self.total
    }

    /// Number of segments covered by the snapshot.
    pub fn segment_count(&self) -> usize {
        self.counts.len()
    }

    /// Simulation time of capture in milliseconds.
    pub fn taken_at_ms(&self) -> u64 {
        self.taken_at_ms
    }

    /// Segments with at least one user, in id order. Borrows the
    /// snapshot instead of allocating, so per-tick metrics can scan
    /// occupancy without heap traffic; `.collect()` where a `Vec` is
    /// genuinely needed.
    pub fn occupied_segments(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| SegmentId(i as u32))
    }

    /// The segment a given car occupies per a simulation (pass-through
    /// helper so callers need not keep the simulation around).
    pub fn segment_of(sim: &Simulation, car: CarId) -> Option<SegmentId> {
        sim.car(car).map(|c| c.segment())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use roadnet::grid_city;

    #[test]
    fn capture_matches_simulation() {
        let sim = Simulation::new(
            grid_city(5, 5, 100.0),
            SimConfig {
                cars: 123,
                seed: 1,
                ..Default::default()
            },
        );
        let snap = OccupancySnapshot::capture(&sim);
        assert_eq!(snap.total_users(), 123);
        assert_eq!(snap.segment_count(), sim.network().segment_count());
        let recount: u64 = sim
            .network()
            .segment_ids()
            .map(|s| snap.users_on(s) as u64)
            .sum();
        assert_eq!(recount, 123);
    }

    #[test]
    fn users_in_subsets() {
        let snap = OccupancySnapshot::from_counts(vec![3, 0, 5, 2]);
        assert_eq!(snap.users_on(SegmentId(0)), 3);
        assert_eq!(snap.users_on(SegmentId(99)), 0);
        assert_eq!(snap.users_in([SegmentId(0), SegmentId(2)]), 8);
        assert_eq!(snap.total_users(), 10);
        assert_eq!(
            snap.occupied_segments().collect::<Vec<_>>(),
            vec![SegmentId(0), SegmentId(2), SegmentId(3)]
        );
    }

    #[test]
    fn recapture_reuses_buffer_and_matches_capture() {
        let mut sim = Simulation::new(
            grid_city(5, 5, 100.0),
            SimConfig {
                cars: 80,
                seed: 3,
                ..Default::default()
            },
        );
        let mut snap = OccupancySnapshot::capture(&sim);
        sim.run(5, 10.0);
        sim.capture_into(&mut snap);
        assert_eq!(snap, OccupancySnapshot::capture(&sim));
        assert_eq!(snap.total_users(), 80);
        assert_eq!(snap.taken_at_ms(), 50_000);
    }

    #[test]
    fn uniform_snapshot() {
        let snap = OccupancySnapshot::uniform(10, 4);
        assert_eq!(snap.total_users(), 40);
        assert_eq!(snap.users_on(SegmentId(9)), 4);
    }

    #[test]
    fn segment_of_car() {
        let sim = Simulation::new(
            grid_city(4, 4, 100.0),
            SimConfig {
                cars: 5,
                seed: 2,
                ..Default::default()
            },
        );
        let seg = OccupancySnapshot::segment_of(&sim, CarId(0)).unwrap();
        assert_eq!(seg, sim.car(CarId(0)).unwrap().segment());
        assert!(OccupancySnapshot::segment_of(&sim, CarId(99)).is_none());
    }
}

/// Spatio-temporal occupancy: users seen on each segment at any sampling
/// instant within a time window.
///
/// The paper frames location privacy as control over "different spatial
/// and temporal granularity"; cloaking against a *windowed* snapshot
/// implements the temporal half (Gruteser & Grunwald's temporal
/// cloaking): a region is k-anonymous over the window `[t-δ, t+δ]`
/// rather than a single instant, so fewer segments are needed in sparse
/// traffic at the cost of coarser time information.
impl OccupancySnapshot {
    /// Merges snapshots by per-segment maximum — a conservative
    /// "users that could plausibly be here during the window" count that
    /// never exceeds the true distinct-user count.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different segment counts or the
    /// slice is empty.
    pub fn window_max(snapshots: &[OccupancySnapshot]) -> OccupancySnapshot {
        assert!(!snapshots.is_empty(), "need at least one snapshot");
        let n = snapshots[0].segment_count();
        assert!(
            snapshots.iter().all(|s| s.segment_count() == n),
            "snapshots must cover the same network"
        );
        let mut counts = vec![0u32; n];
        for snap in snapshots {
            for (i, c) in counts.iter_mut().enumerate() {
                *c = (*c).max(snap.counts[i]);
            }
        }
        let mut out = Self::from_counts(counts);
        out.taken_at_ms = snapshots.last().expect("non-empty").taken_at_ms;
        out
    }

    /// Captures a windowed snapshot by stepping a simulation `samples`
    /// times at `dt` seconds and taking the per-segment maximum.
    ///
    /// Edge cases are well-defined: `samples` of 0 or 1 (a zero-length
    /// window) degenerates to [`OccupancySnapshot::capture`] without
    /// stepping the simulation, a window far longer than any trip simply
    /// keeps accumulating per-segment maxima, and empty traffic yields an
    /// all-zero snapshot.
    pub fn capture_window(sim: &mut Simulation, samples: usize, dt: f64) -> OccupancySnapshot {
        let mut snaps = vec![Self::capture(sim)];
        for _ in 1..samples.max(1) {
            sim.step(dt);
            snaps.push(Self::capture(sim));
        }
        Self::window_max(&snaps)
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use crate::sim::SimConfig;
    use roadnet::grid_city;

    #[test]
    fn window_max_dominates_each_instant() {
        let a = OccupancySnapshot::from_counts(vec![3, 0, 5]);
        let b = OccupancySnapshot::from_counts(vec![1, 4, 2]);
        let w = OccupancySnapshot::window_max(&[a.clone(), b.clone()]);
        for s in 0..3u32 {
            let s = SegmentId(s);
            assert!(w.users_on(s) >= a.users_on(s));
            assert!(w.users_on(s) >= b.users_on(s));
        }
        assert_eq!(w.users_on(SegmentId(0)), 3);
        assert_eq!(w.users_on(SegmentId(1)), 4);
        assert_eq!(w.users_on(SegmentId(2)), 5);
    }

    #[test]
    fn windowed_capture_never_below_instant() {
        let net = grid_city(5, 5, 100.0);
        let sim = Simulation::new(
            net,
            SimConfig {
                cars: 150,
                seed: 6,
                ..Default::default()
            },
        );
        let instant = OccupancySnapshot::capture(&sim);
        let mut sim2 = Simulation::new(
            grid_city(5, 5, 100.0),
            SimConfig {
                cars: 150,
                seed: 6,
                ..Default::default()
            },
        );
        let windowed = OccupancySnapshot::capture_window(&mut sim2, 5, 10.0);
        // The window starts at the same instant, so it dominates it.
        for s in 0..instant.segment_count() as u32 {
            assert!(windowed.users_on(SegmentId(s)) >= instant.users_on(SegmentId(s)));
        }
        // Windows make sparse traffic denser (helps cloaking in sparse areas).
        assert!(windowed.total_users() >= instant.total_users());
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn empty_window_panics() {
        let _ = OccupancySnapshot::window_max(&[]);
    }

    #[test]
    #[should_panic(expected = "same network")]
    fn mismatched_sizes_panic() {
        let a = OccupancySnapshot::from_counts(vec![1]);
        let b = OccupancySnapshot::from_counts(vec![1, 2]);
        let _ = OccupancySnapshot::window_max(&[a, b]);
    }
}
