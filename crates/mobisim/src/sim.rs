//! The discrete-time traffic simulation.
//!
//! GTMobiSim semantics, per the paper: "Once a car is generated, the
//! associated destination is also randomly chosen and the route selection
//! is based on shortest path routing." Cars drive their route at a cruise
//! speed; on arrival a fresh random destination is chosen.

use crate::behavior::{BehaviorKind, BehaviorMix, CarBehavior, CommutePhase, RushSchedule};
use crate::car::{Car, CarId, RoadPosition};
use crate::placement::{place_cars, PlacementModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{shortest_path, JunctionId, RoadNetwork, SegmentId, SegmentIndex};

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cars (the paper uses 10,000).
    pub cars: usize,
    /// Placement model for initial positions.
    pub placement: PlacementModel,
    /// Cruise speed range in m/s (sampled uniformly per car).
    pub speed_range: (f64, f64),
    /// PRNG seed for reproducible traffic.
    pub seed: u64,
    /// Population behavior composition. The [`BehaviorMix::Uniform`]
    /// default reproduces the legacy homogeneous traffic with the exact
    /// legacy RNG draw sequence (receipt digests are pinned against it).
    pub behavior: BehaviorMix,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cars: 10_000,
            placement: PlacementModel::default(),
            speed_range: (8.0, 20.0), // ~30–70 km/h
            seed: 42,
            behavior: BehaviorMix::Uniform,
        }
    }
}

/// A running traffic simulation over a road network.
///
/// ```
/// use mobisim::{SimConfig, Simulation};
/// use roadnet::grid_city;
///
/// let net = grid_city(6, 6, 100.0);
/// let mut sim = Simulation::new(net, SimConfig { cars: 100, ..Default::default() });
/// sim.step(5.0);
/// assert_eq!(sim.cars().len(), 100);
/// ```
#[derive(Debug)]
pub struct Simulation {
    net: RoadNetwork,
    cars: Vec<Car>,
    rng: StdRng,
    clock: f64,
    /// Per-car behavior state; empty under [`BehaviorMix::Uniform`],
    /// where the legacy step loop runs untouched.
    behaviors: Vec<CarBehavior>,
    /// The heterogeneous mixes' rush schedule (`None` for uniform).
    rush: Option<RushSchedule>,
    /// Steps taken so far — the phase clock of the rush schedule.
    tick: u64,
}

impl Simulation {
    /// Creates a simulation: places cars, assigns destinations and routes.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments.
    pub fn new(net: RoadNetwork, cfg: SimConfig) -> Self {
        let index = SegmentIndex::build(&net, suggested_cell(&net));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let placements = place_cars(&net, &index, cfg.placement, cfg.cars, &mut rng);
        let mut cars = Vec::with_capacity(cfg.cars);
        for (i, (seg, off)) in placements.into_iter().enumerate() {
            let speed = rng.gen_range(cfg.speed_range.0..=cfg.speed_range.1);
            let mut car = Car::new(
                CarId(i as u32),
                RoadPosition {
                    segment: seg,
                    offset: off,
                },
                speed,
            );
            let route = plan_trip(&net, &car, &mut rng);
            car.assign_route(route);
            cars.push(car);
        }
        // Heterogeneous mixes layer behavior state on top of the shared
        // placement/speed/first-trip loop above (whose draws stay in the
        // legacy order); commuters and parked cars then drop the initial
        // random trip and anchor where they were placed.
        let rush = cfg.behavior.rush();
        let mut behaviors = Vec::new();
        if rush.is_some() {
            behaviors.reserve(cars.len());
            for (i, car) in cars.iter_mut().enumerate() {
                let mut state = CarBehavior::new(cfg.behavior.kind_for(i));
                match state.kind {
                    BehaviorKind::Taxi => {}
                    BehaviorKind::Parked => car.assign_route(Vec::new()),
                    BehaviorKind::Commuter => {
                        car.assign_route(Vec::new());
                        let home = net.segment(car.segment()).b();
                        state.home = Some(home);
                        state.work = pick_anchor(&net, home, &mut rng);
                        state.phase = CommutePhase::AtHome;
                    }
                }
                behaviors.push(state);
            }
        }
        Simulation {
            net,
            cars,
            rng,
            clock: 0.0,
            behaviors,
            rush,
            tick: 0,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// All cars.
    pub fn cars(&self) -> &[Car] {
        &self.cars
    }

    /// A car by id.
    pub fn car(&self, id: CarId) -> Option<&Car> {
        self.cars.get(id.index())
    }

    /// The segment a car currently occupies — what the anonymizer sees as
    /// its true location (`None` for unknown ids).
    pub fn car_segment(&self, id: CarId) -> Option<SegmentId> {
        self.car(id).map(|c| c.segment())
    }

    /// Simulation time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the simulation by `dt` seconds. Cars that arrive get a new
    /// random destination (continuous traffic, as in GTMobiSim); under a
    /// heterogeneous [`BehaviorMix`] each car instead follows its
    /// archetype (taxis hop, commuters follow the rush schedule, parked
    /// cars stay put).
    pub fn step(&mut self, dt: f64) {
        self.clock += dt;
        self.tick += 1;
        let Some(rush) = self.rush else {
            // Legacy homogeneous loop, untouched: the digest-pinned RNG
            // draw sequence.
            for i in 0..self.cars.len() {
                let finished = self.cars[i].advance(&self.net, dt);
                if finished {
                    self.cars[i].finish_trip();
                    let route = plan_trip(&self.net, &self.cars[i], &mut self.rng);
                    self.cars[i].assign_route(route);
                }
            }
            return;
        };
        // Phase of the step that is now elapsing.
        let phase = (self.tick - 1) % rush.period;
        for i in 0..self.cars.len() {
            match self.behaviors[i].kind {
                BehaviorKind::Parked => {}
                BehaviorKind::Taxi => {
                    let finished = self.cars[i].advance(&self.net, dt);
                    if finished {
                        self.cars[i].finish_trip();
                        let route = plan_trip(&self.net, &self.cars[i], &mut self.rng);
                        self.cars[i].assign_route(route);
                    }
                }
                BehaviorKind::Commuter => {
                    let car_id = self.cars[i].id();
                    let state = &mut self.behaviors[i];
                    // Departure decisions happen at anchors, before any
                    // movement this step. Each commuter waits for its own
                    // staggered phase inside the window, so the
                    // population departs as a rolling wave.
                    let depart_to = match state.phase {
                        CommutePhase::AtHome
                            if rush.in_morning(phase)
                                && phase >= rush.departure_phase(car_id, rush.morning) =>
                        {
                            state.work
                        }
                        CommutePhase::AtWork
                            if rush.in_evening(phase)
                                && phase >= rush.departure_phase(car_id, rush.evening) =>
                        {
                            state.home
                        }
                        _ => None,
                    };
                    if let Some(dest) = depart_to {
                        let route = plan_trip_to(&self.net, &self.cars[i], dest);
                        if !route.is_empty() {
                            let state = &mut self.behaviors[i];
                            state.phase = match state.phase {
                                CommutePhase::AtHome => CommutePhase::ToWork,
                                _ => CommutePhase::ToHome,
                            };
                            self.cars[i].assign_route(route);
                        }
                        // No route (anchor unreachable or already here):
                        // stay parked and retry next step in the window.
                    }
                    let state = &self.behaviors[i];
                    if matches!(state.phase, CommutePhase::ToWork | CommutePhase::ToHome) {
                        let finished = self.cars[i].advance(&self.net, dt);
                        if finished {
                            self.cars[i].finish_trip();
                            let state = &mut self.behaviors[i];
                            state.phase = match state.phase {
                                CommutePhase::ToWork => CommutePhase::AtWork,
                                _ => CommutePhase::AtHome,
                            };
                        }
                    }
                }
            }
        }
    }

    /// Runs `steps` steps of `dt` seconds each.
    pub fn run(&mut self, steps: usize, dt: f64) {
        for _ in 0..steps {
            self.step(dt);
        }
    }

    /// Current number of users on each segment, indexed by segment id.
    pub fn occupancy(&self) -> Vec<u32> {
        let mut counts = Vec::new();
        self.occupancy_into(&mut counts);
        counts
    }

    /// Like [`occupancy`](Self::occupancy), writing into a caller-owned
    /// buffer (resized and zeroed first) — the snapshot-recapture path
    /// that reuses one counts buffer across cadences.
    pub fn occupancy_into(&self, counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(self.net.segment_count(), 0);
        for car in &self.cars {
            counts[car.segment().index()] += 1;
        }
    }

    /// Captures the current occupancy into an existing snapshot, reusing
    /// its counts buffer (see [`crate::OccupancySnapshot::recapture`]).
    pub fn capture_into(&self, snap: &mut crate::OccupancySnapshot) {
        snap.recapture(self);
    }

    /// Steps taken so far (the rush schedule's phase clock).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The behavior archetype of a car ([`BehaviorKind::Taxi`] for every
    /// car under the uniform mix; `None` for unknown ids).
    pub fn behavior_kind(&self, id: CarId) -> Option<BehaviorKind> {
        if id.index() >= self.cars.len() {
            return None;
        }
        Some(match self.behaviors.get(id.index()) {
            Some(state) => state.kind,
            None => BehaviorKind::Taxi,
        })
    }
}

/// Routes a car to a fixed destination junction (commuter anchors),
/// from the far endpoint of its current segment — the same routing and
/// advance machinery as the random trips, so behavior-model motion
/// inherits the CSR-adjacency and speed-bound guarantees structurally.
fn plan_trip_to(net: &RoadNetwork, car: &Car, dest: JunctionId) -> Vec<SegmentId> {
    let start = net.segment(car.segment()).b();
    if dest == start {
        return Vec::new();
    }
    match shortest_path(net, start, dest) {
        Some(route) => route.segments,
        None => Vec::new(),
    }
}

/// Picks a commuter's second anchor: a random junction provably
/// reachable from `home` (8 attempts, like trip planning).
fn pick_anchor<R: Rng + ?Sized>(
    net: &RoadNetwork,
    home: JunctionId,
    rng: &mut R,
) -> Option<JunctionId> {
    for _attempt in 0..8 {
        let dest = JunctionId(rng.gen_range(0..net.junction_count() as u32));
        if dest == home {
            continue;
        }
        if let Some(route) = shortest_path(net, home, dest) {
            if !route.segments.is_empty() {
                return Some(dest);
            }
        }
    }
    None
}

/// Picks a random reachable destination and returns the remaining route
/// (segments after the car's current one).
fn plan_trip<R: Rng + ?Sized>(net: &RoadNetwork, car: &Car, rng: &mut R) -> Vec<SegmentId> {
    // Route from the far endpoint of the current segment.
    let seg = net.segment(car.segment());
    let start = seg.b();
    for _attempt in 0..8 {
        let dest = JunctionId(rng.gen_range(0..net.junction_count() as u32));
        if dest == start {
            continue;
        }
        if let Some(route) = shortest_path(net, start, dest) {
            if !route.segments.is_empty() {
                return route.segments;
            }
        }
    }
    Vec::new() // isolated pocket: car parks, will retry next arrival
}

/// A sensible spatial-index cell size: ~4 average segment lengths.
fn suggested_cell(net: &RoadNetwork) -> f64 {
    let total: f64 = net.segments().map(|s| s.length()).sum();
    let mean = total / net.segment_count().max(1) as f64;
    (mean * 4.0).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    fn small_sim(cars: usize, seed: u64) -> Simulation {
        Simulation::new(
            grid_city(6, 6, 100.0),
            SimConfig {
                cars,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn all_cars_have_routes_initially() {
        let sim = small_sim(200, 1);
        let en_route = sim.cars().iter().filter(|c| c.is_en_route()).count();
        // A connected grid: virtually every car gets a route (cars whose
        // random destination equaled their start 8 times would park —
        // astronomically unlikely here).
        assert_eq!(en_route, 200);
    }

    #[test]
    fn occupancy_sums_to_car_count() {
        let mut sim = small_sim(300, 2);
        assert_eq!(sim.occupancy().iter().sum::<u32>(), 300);
        sim.run(20, 10.0);
        assert_eq!(sim.occupancy().iter().sum::<u32>(), 300);
    }

    #[test]
    fn clock_advances() {
        let mut sim = small_sim(10, 3);
        sim.run(5, 2.5);
        assert!((sim.clock() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn cars_actually_move() {
        let mut sim = small_sim(100, 4);
        let before: Vec<_> = sim
            .cars()
            .iter()
            .map(|c| (c.segment(), c.position().offset))
            .collect();
        sim.run(30, 10.0);
        let moved = sim
            .cars()
            .iter()
            .zip(&before)
            .filter(|(c, (s, o))| c.segment() != *s || (c.position().offset - o).abs() > 1.0)
            .count();
        assert!(moved > 90, "only {moved} cars moved");
        let total_odometer: f64 = sim.cars().iter().map(|c| c.odometer()).sum();
        assert!(total_odometer > 0.0);
    }

    #[test]
    fn trips_complete_over_time() {
        let mut sim = small_sim(50, 5);
        sim.run(400, 10.0); // over an hour of driving on a small grid
        let trips: u32 = sim.cars().iter().map(|c| c.trips_completed()).sum();
        assert!(trips > 0, "no car completed a trip");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = small_sim(100, 7);
        let mut b = small_sim(100, 7);
        a.run(10, 5.0);
        b.run(10, 5.0);
        assert_eq!(a.occupancy(), b.occupancy());
        let mut c = small_sim(100, 8);
        c.run(10, 5.0);
        assert_ne!(a.occupancy(), c.occupancy());
    }

    fn mixed_sim(mix: BehaviorMix, cars: usize, seed: u64) -> Simulation {
        Simulation::new(
            grid_city(6, 6, 100.0),
            SimConfig {
                cars,
                seed,
                behavior: mix,
                ..Default::default()
            },
        )
    }

    #[test]
    fn uniform_mix_is_bit_identical_to_legacy_default() {
        // The digest-pinning guarantee at the simulation layer: adding
        // the behavior field must not change a single draw of the
        // default configuration.
        let mut legacy = small_sim(200, 11);
        let mut uniform = mixed_sim(BehaviorMix::uniform(), 200, 11);
        legacy.run(15, 10.0);
        uniform.run(15, 10.0);
        assert_eq!(legacy.occupancy(), uniform.occupancy());
    }

    #[test]
    fn parked_cars_never_move() {
        let mut sim = mixed_sim(BehaviorMix::rush_hour(), 200, 12);
        let parked: Vec<(usize, SegmentId, f64)> = sim
            .cars()
            .iter()
            .enumerate()
            .filter(|(i, _)| sim.behavior_kind(CarId(*i as u32)) == Some(BehaviorKind::Parked))
            .map(|(i, c)| (i, c.segment(), c.position().offset))
            .collect();
        assert!(!parked.is_empty(), "rush-hour mix must park some cars");
        sim.run(40, 10.0);
        for (i, seg, off) in parked {
            let car = &sim.cars()[i];
            assert_eq!(car.segment(), seg);
            assert_eq!(car.position().offset, off);
        }
    }

    #[test]
    fn commuters_cycle_between_anchors() {
        let mut sim = mixed_sim(BehaviorMix::commuter_city(), 300, 13);
        // Two simulated days: every reachable commuter should complete
        // at least one leg (home→work counts as a trip).
        sim.run(48, 10.0);
        let commuter_trips: u32 = sim
            .cars()
            .iter()
            .enumerate()
            .filter(|(i, _)| sim.behavior_kind(CarId(*i as u32)) == Some(BehaviorKind::Commuter))
            .map(|(_, c)| c.trips_completed())
            .sum();
        assert!(commuter_trips > 0, "no commuter completed a leg");
    }

    #[test]
    fn heterogeneous_occupancy_still_sums_to_car_count() {
        for mix in [
            BehaviorMix::commuter_city(),
            BehaviorMix::taxi_fleet(),
            BehaviorMix::rush_hour(),
        ] {
            let mut sim = mixed_sim(mix, 250, 14);
            sim.run(30, 10.0);
            assert_eq!(sim.occupancy().iter().sum::<u32>(), 250);
        }
    }

    #[test]
    fn rush_hour_creates_a_density_wave() {
        // During a rush window, moving commuters concentrate along
        // shortest paths; between windows they sit at anchors. The
        // en-route count must visibly oscillate across a day.
        let mut sim = mixed_sim(BehaviorMix::rush_hour(), 400, 15);
        let mut en_route = Vec::new();
        for _ in 0..16 {
            sim.step(10.0);
            en_route.push(sim.cars().iter().filter(|c| c.is_en_route()).count());
        }
        let max = *en_route.iter().max().unwrap();
        let min = *en_route.iter().min().unwrap();
        assert!(
            max >= min + 20,
            "no departure wave: en-route counts {en_route:?}"
        );
    }

    #[test]
    fn car_lookup() {
        let sim = small_sim(10, 9);
        assert!(sim.car(CarId(9)).is_some());
        assert!(sim.car(CarId(10)).is_none());
        assert_eq!(
            sim.car_segment(CarId(9)),
            Some(sim.car(CarId(9)).unwrap().segment())
        );
        assert!(sim.car_segment(CarId(10)).is_none());
    }
}
