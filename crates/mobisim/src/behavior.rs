//! Heterogeneous owner behavior models.
//!
//! The paper evaluates on GTMobiSim-style traffic where every car is an
//! endless random-destination hopper. That homogeneity makes temporal
//! attacks *easier to survive* than they should be: an adaptive tracker
//! feeds on structure — recurring anchor points, predictable departure
//! waves, long stationary dwells — none of which uniform random motion
//! exhibits. This module adds that structure:
//!
//! * [`BehaviorKind::Taxi`] — the legacy model: on arrival, pick a fresh
//!   uniformly random destination and go (random-destination hops).
//! * [`BehaviorKind::Commuter`] — a home↔work cycle: the car owns two
//!   anchor junctions and only travels during the rush windows of a
//!   tick-phase [`RushSchedule`], parked at an anchor otherwise.
//!   Per-car phase offsets stagger departures across a window, so a
//!   population of commuters produces a rush-hour *density wave*
//!   rolling through the network rather than a single spike.
//! * [`BehaviorKind::Parked`] — never moves (long-term parking). Parked
//!   cars still occupy a segment, thickening the occupancy floor the
//!   correlation adversary weights against.
//!
//! Every moving behavior routes through [`roadnet::shortest_path`] and
//! advances via the same per-`dt` budget walk as the legacy model, so
//! two structural guarantees the movement adversary relies on hold *by
//! construction* (and are property-tested in
//! `crates/mobisim/tests/behavior_prop.rs`):
//!
//! 1. **CSR adjacency** — a car only ever crosses to a neighbor of its
//!    current segment;
//! 2. **speed bound** — per-tick displacement never exceeds
//!    `speed · dt ≤ vmax · dt`.
//!
//! The default [`BehaviorMix::Uniform`] reproduces the legacy
//! simulation *exactly* (same RNG draw sequence), so existing receipt
//! digests are untouched — heterogeneity is strictly opt-in.

use crate::car::CarId;
use serde::{Deserialize, Serialize};

/// The motion archetype assigned to one car.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorKind {
    /// Endless random-destination hops (the legacy homogeneous model).
    Taxi,
    /// Home↔work cycles driven by the mix's [`RushSchedule`].
    Commuter,
    /// Never moves.
    Parked,
}

impl BehaviorKind {
    /// Short label for logs and tournament cells.
    pub fn name(self) -> &'static str {
        match self {
            BehaviorKind::Taxi => "taxi",
            BehaviorKind::Commuter => "commuter",
            BehaviorKind::Parked => "parked",
        }
    }
}

/// A tick-phase schedule of commuter departure windows.
///
/// Phases count simulation steps modulo `period`; a commuter at home
/// departs for work during `[morning.0, morning.1)` and returns during
/// `[evening.0, evening.1)`. Individual departure ticks are staggered
/// inside each window by car id, producing a travelling density wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RushSchedule {
    /// Ticks per simulated "day".
    pub period: u64,
    /// Half-open phase window of home→work departures.
    pub morning: (u64, u64),
    /// Half-open phase window of work→home departures.
    pub evening: (u64, u64),
}

impl Default for RushSchedule {
    /// A 24-tick day with 6-tick morning and evening rushes.
    fn default() -> Self {
        RushSchedule {
            period: 24,
            morning: (2, 8),
            evening: (14, 20),
        }
    }
}

impl RushSchedule {
    /// Whether `phase` falls inside the morning departure window.
    pub fn in_morning(&self, phase: u64) -> bool {
        phase >= self.morning.0 && phase < self.morning.1
    }

    /// Whether `phase` falls inside the evening departure window.
    pub fn in_evening(&self, phase: u64) -> bool {
        phase >= self.evening.0 && phase < self.evening.1
    }

    /// The staggered departure phase of car `id` inside `window`: each
    /// car leaves at a fixed offset within the window, spreading a
    /// population's departures into a wave.
    pub fn departure_phase(&self, id: CarId, window: (u64, u64)) -> u64 {
        let width = window.1.saturating_sub(window.0).max(1);
        window.0 + (id.0 as u64).wrapping_mul(0x9e37_79b9) % width
    }
}

/// The population-level behavior composition of a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorMix {
    /// Every car is a [`BehaviorKind::Taxi`], with the legacy RNG draw
    /// sequence preserved bit-for-bit (the receipt-digest-pinned
    /// default).
    #[default]
    Uniform,
    /// Cars striped across kinds by integer weight, with commuter
    /// departures driven by `rush`.
    Heterogeneous {
        /// Weight of [`BehaviorKind::Taxi`] cars.
        taxis: u32,
        /// Weight of [`BehaviorKind::Commuter`] cars.
        commuters: u32,
        /// Weight of [`BehaviorKind::Parked`] cars.
        parked: u32,
        /// The commuters' departure schedule.
        rush: RushSchedule,
    },
}

impl BehaviorMix {
    /// The legacy homogeneous model (every car a taxi, digest-pinned).
    pub fn uniform() -> Self {
        BehaviorMix::Uniform
    }

    /// A residential city: mostly commuters, some taxis, some parked.
    pub fn commuter_city() -> Self {
        BehaviorMix::Heterogeneous {
            taxis: 1,
            commuters: 6,
            parked: 1,
            rush: RushSchedule::default(),
        }
    }

    /// A fleet-dominated city: mostly taxis with a commuter minority.
    pub fn taxi_fleet() -> Self {
        BehaviorMix::Heterogeneous {
            taxis: 6,
            commuters: 1,
            parked: 1,
            rush: RushSchedule::default(),
        }
    }

    /// An aggressive rush-hour wave: commuter-heavy with tight
    /// departure windows and a thick parked floor — the adversarial
    /// density profile the adaptive tracker feeds on.
    pub fn rush_hour() -> Self {
        BehaviorMix::Heterogeneous {
            taxis: 1,
            commuters: 8,
            parked: 3,
            rush: RushSchedule {
                period: 16,
                morning: (1, 4),
                evening: (9, 12),
            },
        }
    }

    /// The kind assigned to car `i`: deterministic weighted striping
    /// (no RNG draws, so the placement/speed draw sequence is
    /// independent of the mix).
    pub fn kind_for(&self, i: usize) -> BehaviorKind {
        match self {
            BehaviorMix::Uniform => BehaviorKind::Taxi,
            BehaviorMix::Heterogeneous {
                taxis,
                commuters,
                parked,
                ..
            } => {
                let total = (taxis + commuters + parked).max(1) as u64;
                // Spread the stripe so kinds interleave instead of
                // clustering in id ranges (tracked owners are a prefix).
                let slot = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % total;
                if slot < *taxis as u64 {
                    BehaviorKind::Taxi
                } else if slot < (*taxis + *commuters) as u64 {
                    BehaviorKind::Commuter
                } else {
                    BehaviorKind::Parked
                }
            }
        }
    }

    /// The rush schedule, when the mix has one.
    pub fn rush(&self) -> Option<RushSchedule> {
        match self {
            BehaviorMix::Uniform => None,
            BehaviorMix::Heterogeneous { rush, .. } => Some(*rush),
        }
    }
}

/// A commuter's position in its home↔work cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommutePhase {
    AtHome,
    ToWork,
    AtWork,
    ToHome,
}

/// Per-car behavior state carried by the simulation (parallel to the
/// car vector; empty under [`BehaviorMix::Uniform`]).
#[derive(Debug, Clone)]
pub(crate) struct CarBehavior {
    pub kind: BehaviorKind,
    /// Work anchor junction (commuters only).
    pub work: Option<roadnet::JunctionId>,
    /// Home anchor junction (commuters only).
    pub home: Option<roadnet::JunctionId>,
    pub phase: CommutePhase,
}

impl CarBehavior {
    pub fn new(kind: BehaviorKind) -> Self {
        CarBehavior {
            kind,
            work: None,
            home: None,
            phase: CommutePhase::AtHome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mix_is_all_taxis() {
        let mix = BehaviorMix::uniform();
        assert!((0..100).all(|i| mix.kind_for(i) == BehaviorKind::Taxi));
        assert!(mix.rush().is_none());
    }

    #[test]
    fn heterogeneous_striping_matches_weights_roughly() {
        let mix = BehaviorMix::commuter_city();
        let n = 8000;
        let commuters = (0..n)
            .filter(|&i| mix.kind_for(i) == BehaviorKind::Commuter)
            .count();
        // 6 of 8 weight → ~75%; the multiplicative stripe is not exact
        // but must be close at scale.
        assert!(
            (commuters as f64 / n as f64 - 0.75).abs() < 0.05,
            "commuter share off: {commuters}/{n}"
        );
    }

    #[test]
    fn departure_phases_stay_inside_the_window() {
        let rush = RushSchedule::default();
        for id in 0..64 {
            let p = rush.departure_phase(CarId(id), rush.morning);
            assert!(rush.in_morning(p), "car {id} departs at phase {p}");
        }
    }

    #[test]
    fn rush_windows_are_half_open() {
        let rush = RushSchedule::default();
        assert!(rush.in_morning(2));
        assert!(!rush.in_morning(8));
        assert!(rush.in_evening(14));
        assert!(!rush.in_evening(20));
    }
}
