//! Mobility trace recording and export.
//!
//! GTMobiSim is a *trace generator*; this module records the simulated
//! motion as `(time, car, segment, offset)` samples and exports them in a
//! simple text format for downstream analysis or replay.

use crate::car::CarId;
use crate::sim::Simulation;
use roadnet::SegmentId;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One trace sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time in seconds.
    pub time: f64,
    /// The sampled car.
    pub car: CarId,
    /// Occupied segment.
    pub segment: SegmentId,
    /// Offset along the segment in meters.
    pub offset: f64,
}

/// A recorded mobility trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<TraceSample>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the position of every car at the simulation's current time.
    pub fn record_all(&mut self, sim: &Simulation) {
        let t = sim.clock();
        for car in sim.cars() {
            self.samples.push(TraceSample {
                time: t,
                car: car.id(),
                segment: car.segment(),
                offset: car.position().offset,
            });
        }
    }

    /// Records a single car.
    pub fn record_car(&mut self, sim: &Simulation, car: CarId) {
        if let Some(c) = sim.car(car) {
            self.samples.push(TraceSample {
                time: sim.clock(),
                car,
                segment: c.segment(),
                offset: c.position().offset,
            });
        }
    }

    /// All samples in recording order.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The trajectory (time-ordered samples) of one car.
    pub fn trajectory(&self, car: CarId) -> Vec<TraceSample> {
        let mut t: Vec<TraceSample> = self
            .samples
            .iter()
            .filter(|s| s.car == car)
            .copied()
            .collect();
        t.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        t
    }

    /// Writes the trace as `time car segment offset` lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# mobisim trace v1: time car segment offset")?;
        for s in &self.samples {
            writeln!(w, "{} {} {} {}", s.time, s.car.0, s.segment.0, s.offset)?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or malformed lines.
    pub fn read_from<R: BufRead>(r: R) -> std::io::Result<Trace> {
        let mut samples = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed trace line {}", i + 1),
                )
            };
            let time: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let car: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let segment: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let offset: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            samples.push(TraceSample {
                time,
                car: CarId(car),
                segment: SegmentId(segment),
                offset,
            });
        }
        Ok(Trace { samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use roadnet::grid_city;

    fn sim() -> Simulation {
        Simulation::new(
            grid_city(4, 4, 100.0),
            SimConfig {
                cars: 20,
                seed: 11,
                ..Default::default()
            },
        )
    }

    #[test]
    fn record_all_counts() {
        let mut s = sim();
        let mut trace = Trace::new();
        trace.record_all(&s);
        s.step(10.0);
        trace.record_all(&s);
        assert_eq!(trace.len(), 40);
        assert!(!trace.is_empty());
    }

    #[test]
    fn trajectory_is_time_ordered() {
        let mut s = sim();
        let mut trace = Trace::new();
        for _ in 0..5 {
            trace.record_car(&s, CarId(3));
            s.step(7.0);
        }
        let traj = trace.trajectory(CarId(3));
        assert_eq!(traj.len(), 5);
        for w in traj.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(trace.trajectory(CarId(99)).is_empty());
    }

    #[test]
    fn roundtrip_text_format() {
        let mut s = sim();
        let mut trace = Trace::new();
        trace.record_all(&s);
        s.step(3.0);
        trace.record_all(&s);
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(trace.len(), back.len());
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            assert_eq!(a.car, b.car);
            assert_eq!(a.segment, b.segment);
            assert!((a.offset - b.offset).abs() < 1e-9);
        }
    }

    #[test]
    fn read_rejects_malformed() {
        assert!(Trace::read_from("1.0 2 3".as_bytes()).is_err());
        assert!(Trace::read_from("x y z w".as_bytes()).is_err());
        assert!(Trace::read_from("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
