//! Cars and their positions on the road network.

use roadnet::{RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated car (mobile user).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CarId(pub u32);

impl CarId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "car{}", self.0)
    }
}

/// A position on the network: a segment plus the distance travelled along
/// it from endpoint `a`, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadPosition {
    /// The occupied segment.
    pub segment: SegmentId,
    /// Distance from the segment's `a` endpoint, clamped to its length.
    pub offset: f64,
}

impl RoadPosition {
    /// A position at the start of a segment.
    pub fn at_start(segment: SegmentId) -> Self {
        RoadPosition {
            segment,
            offset: 0.0,
        }
    }

    /// The fraction `offset / length` in `[0, 1]`.
    pub fn fraction(&self, net: &RoadNetwork) -> f64 {
        let len = net.segment(self.segment).length();
        if len <= 0.0 {
            0.0
        } else {
            (self.offset / len).clamp(0.0, 1.0)
        }
    }

    /// The planar point of this position.
    pub fn point(&self, net: &RoadNetwork) -> roadnet::Point {
        net.point_along(self.segment, self.fraction(net))
    }
}

/// A simulated car: current position, speed and remaining route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Car {
    id: CarId,
    position: RoadPosition,
    /// Cruise speed in meters per second.
    speed: f64,
    /// Remaining segments to traverse after the current one, in order.
    route: Vec<SegmentId>,
    /// Total distance driven so far, in meters.
    odometer: f64,
    /// Number of completed trips.
    trips_completed: u32,
}

impl Car {
    /// Creates a parked car at `position` with the given cruise speed.
    pub(crate) fn new(id: CarId, position: RoadPosition, speed: f64) -> Self {
        Car {
            id,
            position,
            speed: speed.max(0.1),
            route: Vec::new(),
            odometer: 0.0,
            trips_completed: 0,
        }
    }

    /// The car id.
    pub fn id(&self) -> CarId {
        self.id
    }

    /// Current position.
    pub fn position(&self) -> RoadPosition {
        self.position
    }

    /// The segment currently occupied — what the anonymizer sees as `L0`.
    pub fn segment(&self) -> SegmentId {
        self.position.segment
    }

    /// Cruise speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Remaining route after the current segment.
    pub fn route(&self) -> &[SegmentId] {
        &self.route
    }

    /// Whether the car has a trip in progress.
    pub fn is_en_route(&self) -> bool {
        !self.route.is_empty()
    }

    /// Total distance driven.
    pub fn odometer(&self) -> f64 {
        self.odometer
    }

    /// Completed trip count.
    pub fn trips_completed(&self) -> u32 {
        self.trips_completed
    }

    pub(crate) fn assign_route(&mut self, route: Vec<SegmentId>) {
        self.route = route;
        self.route.reverse(); // pop() from the back is the next segment
    }

    pub(crate) fn finish_trip(&mut self) {
        self.trips_completed += 1;
    }

    /// Advances the car by `dt` seconds along its route. Returns `true`
    /// when the trip finished during this step (or there was no trip).
    pub(crate) fn advance(&mut self, net: &RoadNetwork, dt: f64) -> bool {
        let mut budget = self.speed * dt;
        loop {
            let seg_len = net.segment(self.position.segment).length();
            let remaining = (seg_len - self.position.offset).max(0.0);
            if budget < remaining {
                self.position.offset += budget;
                self.odometer += budget;
                return false;
            }
            // Reach the end of the current segment.
            budget -= remaining;
            self.odometer += remaining;
            match self.route.pop() {
                Some(next) => {
                    self.position = RoadPosition::at_start(next);
                }
                None => {
                    self.position.offset = seg_len;
                    return true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    #[test]
    fn car_advances_within_segment() {
        let net = grid_city(2, 2, 100.0);
        let mut car = Car::new(CarId(0), RoadPosition::at_start(SegmentId(0)), 10.0);
        let done = car.advance(&net, 3.0);
        assert!(!done);
        assert_eq!(car.position().offset, 30.0);
        assert!((car.odometer() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn car_crosses_to_next_segment() {
        let net = grid_city(3, 3, 100.0);
        let mut car = Car::new(CarId(0), RoadPosition::at_start(SegmentId(0)), 10.0);
        car.assign_route(vec![SegmentId(2)]);
        // 100 m segment + 50 m into the next = 15 s at 10 m/s.
        let done = car.advance(&net, 15.0);
        assert!(!done);
        assert_eq!(car.segment(), SegmentId(2));
        assert_eq!(car.position().offset, 50.0);
        assert!(!car.is_en_route()); // route consumed, still finishing s2
    }

    #[test]
    fn car_finishes_at_route_end_and_clamps() {
        let net = grid_city(2, 2, 100.0);
        let mut car = Car::new(CarId(1), RoadPosition::at_start(SegmentId(0)), 10.0);
        let done = car.advance(&net, 1000.0);
        assert!(done);
        assert_eq!(car.position().offset, 100.0);
        assert_eq!(car.position().fraction(&net), 1.0);
    }

    #[test]
    fn speed_is_clamped_positive() {
        let net = grid_city(2, 2, 100.0);
        let car = Car::new(CarId(2), RoadPosition::at_start(SegmentId(0)), -5.0);
        assert!(car.speed() > 0.0);
        let _ = &net;
    }

    #[test]
    fn fraction_and_point() {
        let net = grid_city(2, 2, 100.0);
        let pos = RoadPosition {
            segment: SegmentId(0),
            offset: 25.0,
        };
        assert_eq!(pos.fraction(&net), 0.25);
        let p = pos.point(&net);
        let a = net.junction(net.segment(SegmentId(0)).a()).position();
        let b = net.junction(net.segment(SegmentId(0)).b()).position();
        assert!((p.distance(a) - 25.0).abs() < 1e-9);
        assert!((p.distance(b) - 75.0).abs() < 1e-9);
    }
}
