//! # mobisim — GTMobiSim-style mobile trace generation for ReverseCloak
//!
//! The paper visualizes and evaluates over traffic produced by the
//! GTMobiSim trace generator: 10,000 cars placed along the roads by a
//! Gaussian distribution, each with a randomly chosen destination and
//! shortest-path routing. This crate is that substrate, rebuilt:
//!
//! * [`placement`] — Gaussian (or length-weighted uniform) car placement,
//! * [`Simulation`] — discrete-time traffic with per-car shortest-path
//!   trips and automatic re-tripping on arrival,
//! * [`behavior`] — heterogeneous motion archetypes ([`BehaviorMix`]:
//!   commuter home↔work cycles on a rush-hour tick schedule, taxi
//!   random-destination hops, parked cars); the default mix reproduces
//!   the legacy homogeneous traffic bit-for-bit,
//! * [`OccupancySnapshot`] — the frozen users-per-segment view the
//!   anonymizer consumes to check location k-anonymity,
//! * [`Trace`] — recording and text export of the generated mobility.
//!
//! ```
//! use mobisim::{OccupancySnapshot, SimConfig, Simulation};
//! use roadnet::grid_city;
//!
//! let mut sim = Simulation::new(grid_city(6, 6, 100.0), SimConfig {
//!     cars: 500,
//!     seed: 7,
//!     ..Default::default()
//! });
//! sim.run(10, 5.0);
//! let snapshot = OccupancySnapshot::capture(&sim);
//! assert_eq!(snapshot.total_users(), 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod car;
pub mod placement;
pub mod sim;
pub mod snapshot;
pub mod trace;

pub use behavior::{BehaviorKind, BehaviorMix, RushSchedule};
pub use car::{Car, CarId, RoadPosition};
pub use placement::{place_cars, PlacementModel};
pub use sim::{SimConfig, Simulation};
pub use snapshot::OccupancySnapshot;
pub use trace::{Trace, TraceSample};
