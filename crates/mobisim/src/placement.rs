//! Initial car placement.
//!
//! The paper: "There are 10,000 cars randomly generated along the roads
//! based on Gaussian distribution." We sample planar points from a 2-D
//! Gaussian centered on the map and snap each to the nearest road segment.

use rand::Rng;
use rand_distr_shim::sample_standard_normal;
use roadnet::{RoadNetwork, SegmentId, SegmentIndex};

/// How initial car positions are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementModel {
    /// 2-D Gaussian centered on the map; `sigma_fraction` scales the
    /// standard deviation relative to the map half-extent (the paper's
    /// model). Cars cluster downtown.
    Gaussian {
        /// Standard deviation as a fraction of the map half-extent.
        sigma_fraction: f64,
    },
    /// Uniform over segments, weighted by segment length.
    UniformByLength,
}

impl Default for PlacementModel {
    fn default() -> Self {
        PlacementModel::Gaussian {
            sigma_fraction: 0.35,
        }
    }
}

/// Draws `count` initial positions `(segment, offset-meters)`.
///
/// # Panics
///
/// Panics if the network has no segments.
pub fn place_cars<R: Rng + ?Sized>(
    net: &RoadNetwork,
    index: &SegmentIndex,
    model: PlacementModel,
    count: usize,
    rng: &mut R,
) -> Vec<(SegmentId, f64)> {
    assert!(net.segment_count() > 0, "cannot place cars on an empty map");
    match model {
        PlacementModel::Gaussian { sigma_fraction } => {
            let bb = net.bounding_box();
            let center = bb.center();
            let sx = (bb.width() / 2.0) * sigma_fraction.max(1e-6);
            let sy = (bb.height() / 2.0) * sigma_fraction.max(1e-6);
            (0..count)
                .map(|_| {
                    let gx = sample_standard_normal(rng);
                    let gy = sample_standard_normal(rng);
                    let p = roadnet::Point::new(center.x + gx * sx, center.y + gy * sy);
                    let (seg, _) = index
                        .nearest_segment(net, p)
                        .expect("non-empty network has a nearest segment");
                    let len = net.segment(seg).length();
                    (seg, rng.gen_range(0.0..=1.0) * len)
                })
                .collect()
        }
        PlacementModel::UniformByLength => {
            // Cumulative length table for weighted sampling.
            let mut cum = Vec::with_capacity(net.segment_count());
            let mut total = 0.0;
            for s in net.segments() {
                total += s.length().max(1e-9);
                cum.push(total);
            }
            (0..count)
                .map(|_| {
                    let x = rng.gen_range(0.0..total);
                    let i = cum.partition_point(|&c| c <= x);
                    let seg = SegmentId(i.min(net.segment_count() - 1) as u32);
                    let len = net.segment(seg).length();
                    (seg, rng.gen_range(0.0..=1.0) * len)
                })
                .collect()
        }
    }
}

/// A tiny standard-normal sampler (Marsaglia polar method) so we do not
/// need the `rand_distr` crate.
mod rand_distr_shim {
    use rand::Rng;

    /// One sample from N(0, 1).
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u = rng.gen_range(-1.0f64..1.0);
            let v = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    #[test]
    fn gaussian_placement_clusters_downtown() {
        let net = grid_city(9, 9, 100.0);
        let index = SegmentIndex::build(&net, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let placements = place_cars(
            &net,
            &index,
            PlacementModel::Gaussian {
                sigma_fraction: 0.25,
            },
            2000,
            &mut rng,
        );
        assert_eq!(placements.len(), 2000);
        let center = net.bounding_box().center();
        let half = net.bounding_box().diagonal() / 2.0;
        // Most cars should sit within half the radius of downtown.
        let near = placements
            .iter()
            .filter(|(s, off)| {
                let len = net.segment(*s).length().max(1e-9);
                let p = net.point_along(*s, off / len);
                p.distance(center) < half * 0.5
            })
            .count();
        assert!(
            near as f64 > 0.6 * placements.len() as f64,
            "only {near} of {} near downtown",
            placements.len()
        );
    }

    #[test]
    fn offsets_are_within_segment_lengths() {
        let net = grid_city(5, 5, 100.0);
        let index = SegmentIndex::build(&net, 100.0);
        let mut rng = StdRng::seed_from_u64(2);
        for model in [PlacementModel::default(), PlacementModel::UniformByLength] {
            for (seg, off) in place_cars(&net, &index, model, 500, &mut rng) {
                assert!(off >= 0.0 && off <= net.segment(seg).length() + 1e-9);
            }
        }
    }

    #[test]
    fn uniform_by_length_covers_many_segments() {
        let net = grid_city(6, 6, 100.0);
        let index = SegmentIndex::build(&net, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let placements = place_cars(
            &net,
            &index,
            PlacementModel::UniformByLength,
            3000,
            &mut rng,
        );
        let distinct: std::collections::HashSet<_> = placements.iter().map(|(s, _)| *s).collect();
        // 60 segments, 3000 cars: expect nearly all segments hit.
        assert!(distinct.len() > net.segment_count() * 9 / 10);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| super::rand_distr_shim::sample_standard_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
