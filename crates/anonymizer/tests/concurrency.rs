//! Concurrency contract of the sharded, lock-free anonymizer: many
//! client threads hammering one `AnonymizerServer` must each get a
//! receipt that deanonymizes back to exactly the segment they asked to
//! cloak, and the batch pipeline must be bit-identical to sequential
//! execution.

use anonymizer::{
    AnonymizeRequest, AnonymizerConfig, AnonymizerServer, AnonymizerService, Deanonymizer, Engine,
    EngineChoice,
};
use keystream::{Level, TrustDegree};
use mobisim::OccupancySnapshot;
use roadnet::{grid_city, SegmentId};
use std::sync::Arc;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 32;

/// ≥ 8 threads × ≥ 32 requests against the server; every receipt must
/// deanonymize back to its exact segment through the normal key-fetch
/// path, concurrently with the anonymizations.
#[test]
fn stress_every_receipt_deanonymizes_to_its_exact_segment() {
    let net = grid_city(10, 10, 100.0);
    let segment_count = net.segment_count() as u32;
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let server = Arc::new(AnonymizerServer::start(
        net,
        snapshot,
        AnonymizerConfig::default(),
        THREADS,
        0xc0ffee,
    ));

    let service = server.service();
    let dean = Arc::new(Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), service.config().engine),
    ));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let dean = Arc::clone(&dean);
            std::thread::spawn(move || {
                let service = server.service();
                for i in 0..REQUESTS_PER_THREAD {
                    let owner = format!("owner-{t}-{i}");
                    let segment = SegmentId(((t * 37 + i * 13) as u32) % segment_count);
                    let receipt = server
                        .anonymize(&owner, segment, None)
                        .unwrap_or_else(|e| panic!("{owner}: {e}"));
                    assert!(receipt.payload.contains(segment), "{owner}");
                    // Full key-management round trip, racing the other
                    // threads' anonymizations on the sharded maps.
                    assert!(service.register_requester(
                        &owner,
                        "police",
                        TrustDegree(10),
                        Level(0)
                    ));
                    let keys = service.fetch_keys(&owner, "police").unwrap();
                    let view = dean.reduce(&receipt.payload, &keys).unwrap();
                    assert_eq!(view.level, Level(0), "{owner}");
                    assert_eq!(view.segments, vec![segment], "{owner}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert_eq!(service.owner_count(), THREADS * REQUESTS_PER_THREAD);
    // Every grant landed in the requester registry.
    assert_eq!(
        service.requester_grants("police").len(),
        THREADS * REQUESTS_PER_THREAD
    );
    Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .shutdown();
}

/// Seeded property check: for both engines and many seeds,
/// `anonymize_batch` must produce exactly the receipts that sequential
/// `anonymize_seeded` calls produce for the same requests.
#[test]
fn batch_is_identical_to_sequential_given_the_same_nonces() {
    for engine in [EngineChoice::Rge, EngineChoice::Rple { t_len: 10 }] {
        for trial in 0u64..8 {
            let net = grid_city(8, 8, 100.0);
            let segment_count = net.segment_count() as u32;
            let config = AnonymizerConfig {
                engine,
                ..Default::default()
            };

            // Pseudo-random request mix derived from the trial number.
            let mut state = 0x5eed_0000 + trial;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let requests: Vec<AnonymizeRequest> = (0..48)
                .map(|i| {
                    AnonymizeRequest::new(
                        format!("owner-{trial}-{i}"),
                        SegmentId(next() as u32 % segment_count),
                        next(),
                    )
                })
                .collect();

            let parallel = AnonymizerService::new(net.clone(), config.clone());
            parallel.update_snapshot(OccupancySnapshot::uniform(net.segment_count(), 1));
            let batch = parallel.anonymize_batch(&requests);

            let sequential = AnonymizerService::new(net.clone(), config);
            sequential.update_snapshot(OccupancySnapshot::uniform(net.segment_count(), 1));
            for (req, batch_result) in requests.iter().zip(&batch) {
                let solo = sequential.anonymize_seeded(
                    &req.owner,
                    req.segment,
                    req.profile.as_ref(),
                    req.seed,
                );
                match (batch_result, solo) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(b.payload, s.payload, "{engine:?} {}", req.owner);
                        assert_eq!(b.outcome.chain, s.outcome.chain, "{engine:?} {}", req.owner);
                        assert_eq!(b.attempts, s.attempts, "{engine:?} {}", req.owner);
                    }
                    (Err(b), Err(s)) => assert_eq!(b, &s, "{engine:?} {}", req.owner),
                    (b, s) => panic!(
                        "{engine:?} {}: batch {b:?} vs sequential {s:?} disagree",
                        req.owner
                    ),
                }
            }
        }
    }
}

/// The server-side batch must agree with the service-side batch when
/// seeds are pinned, no matter how many workers serve it.
#[test]
fn server_batch_matches_service_batch() {
    let net = grid_city(8, 8, 100.0);
    let requests: Vec<AnonymizeRequest> = (0..32)
        .map(|i| AnonymizeRequest::new(format!("o{i}"), SegmentId(i * 5 % 100), 77_000 + i as u64))
        .collect();

    let service = AnonymizerService::new(net.clone(), AnonymizerConfig::default());
    service.update_snapshot(OccupancySnapshot::uniform(net.segment_count(), 1));
    let expected = service.anonymize_batch(&requests);

    for workers in [1usize, 4] {
        let server = AnonymizerServer::start(
            net.clone(),
            OccupancySnapshot::uniform(net.segment_count(), 1),
            AnonymizerConfig::default(),
            workers,
            9,
        );
        let got = server.anonymize_batch(requests.clone());
        for ((e, g), req) in expected.iter().zip(&got).zip(&requests) {
            assert_eq!(
                e.as_ref().unwrap().payload,
                g.as_ref().unwrap().payload,
                "{workers} workers, {}",
                req.owner
            );
        }
        server.shutdown();
    }
}

/// A batch repeating the same owner must leave the stored record (and
/// thus fetch_keys) matching the *last* request in order — sequential
/// semantics — on both the service and server batch paths.
#[test]
fn duplicated_owner_in_a_batch_stores_the_last_request() {
    let net = grid_city(8, 8, 100.0);
    let mut requests: Vec<AnonymizeRequest> = (0..16)
        .map(|i| AnonymizeRequest::new(format!("o{i}"), SegmentId(i * 5 % 100), 3_000 + i as u64))
        .collect();
    // "dup" appears three times with different seeds and segments.
    requests.insert(2, AnonymizeRequest::new("dup", SegmentId(7), 111));
    requests.insert(9, AnonymizeRequest::new("dup", SegmentId(30), 222));
    requests.push(AnonymizeRequest::new("dup", SegmentId(55), 333));

    for round in 0..4 {
        let service = AnonymizerService::new(net.clone(), AnonymizerConfig::default());
        service.update_snapshot(OccupancySnapshot::uniform(net.segment_count(), 1));
        let results = service.anonymize_batch(&requests);
        let last = results.last().unwrap().as_ref().unwrap();
        let stored = service.owner_record("dup").unwrap();
        assert_eq!(stored.payload, last.payload, "service round {round}");
        assert!(stored.payload.contains(SegmentId(55)));

        let server = AnonymizerServer::start(
            net.clone(),
            OccupancySnapshot::uniform(net.segment_count(), 1),
            AnonymizerConfig::default(),
            4,
            round,
        );
        let results = server.anonymize_batch(requests.clone());
        let last = results.last().unwrap().as_ref().unwrap();
        let stored = server.service().owner_record("dup").unwrap();
        assert_eq!(stored.payload, last.payload, "server round {round}");
        server.shutdown();
    }
}

/// Snapshot swaps racing anonymizations must never block or corrupt
/// either side: requests started under the old snapshot finish under it.
#[test]
fn snapshot_swaps_race_cleanly_with_anonymizations() {
    let net = grid_city(8, 8, 100.0);
    let segment_count = net.segment_count();
    let service = Arc::new(AnonymizerService::new(net, AnonymizerConfig::default()));
    service.update_snapshot(OccupancySnapshot::uniform(segment_count, 1));

    std::thread::scope(|scope| {
        let swapper = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for round in 0..200u32 {
                    service
                        .update_snapshot(OccupancySnapshot::uniform(segment_count, 1 + round % 5));
                }
            })
        };
        for t in 0..4 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for i in 0..32u64 {
                    let owner = format!("racer-{t}-{i}");
                    let receipt = service
                        .anonymize_seeded(&owner, SegmentId((t * 29 + i as u32 * 7) % 100), None, i)
                        .unwrap();
                    assert!(receipt.payload.region_size() >= 2);
                }
            });
        }
        swapper.join().unwrap();
    });
    assert_eq!(service.owner_count(), 4 * 32);
}
