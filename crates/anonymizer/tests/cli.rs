//! End-to-end test of the `rcloak` command-line toolkit: an owner
//! generates a map and keys, cloaks a segment, and a requester
//! de-anonymizes with a keyring — all through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn rcloak() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcloak"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rcloak-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_cli_workflow() {
    let map = tmp("city.map");
    let ring = tmp("keys.txt");
    let payload = tmp("cloak.bin");
    let svg = tmp("cloak.svg");

    // 1. Generate a map.
    let out = rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .expect("rcloak runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(map.exists());

    // 2. Generate keys into a keyring.
    let out = rcloak()
        .args([
            "keys",
            "--levels",
            "2",
            "--seed",
            "9",
            "--out",
            ring.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Key1 ="));
    assert!(stdout.contains("Key2 ="));
    let key_lines: Vec<String> = stdout
        .lines()
        .filter(|l| l.starts_with("Key"))
        .map(|l| l.split(" = ").nth(1).unwrap().to_string())
        .collect();

    // 3. Anonymize segment 40 at two levels.
    let out = rcloak()
        .args([
            "anonymize",
            "--map",
            map.to_str().unwrap(),
            "--segment",
            "40",
            "--k",
            "5,12",
            "--keys",
            &format!("{},{}", key_lines[0], key_lines[1]),
            "--cars",
            "300",
            "--out",
            payload.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(payload.exists());
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));

    // 4. De-anonymize with the keyring: must recover s40 exactly.
    let out = rcloak()
        .args([
            "deanonymize",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--keyring",
            ring.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exact segment: s40"), "{stdout}");

    // 5. Partial peel with only the top key (hex, top level first).
    let out = rcloak()
        .args([
            "deanonymize",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--keys",
            &key_lines[1],
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reduced to level L1"), "{stdout}");

    // 6. Render the map with the (keyless) payload overlay.
    let out = rcloak()
        .args([
            "render",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--width",
            "60",
            "--height",
            "24",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    for p in [map, ring, payload, svg] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn cli_rejects_bad_input() {
    // No subcommand.
    let out = rcloak().output().unwrap();
    assert!(!out.status.success());
    // Unknown subcommand.
    let out = rcloak().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Missing required option.
    let out = rcloak().args(["map"]).output().unwrap();
    assert!(!out.status.success());
    // Key/k count mismatch.
    let map = tmp("mismatch.map");
    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "4x4"])
        .output()
        .unwrap();
    let key = keystream::Key256::from_seed(1).to_hex();
    let out = rcloak()
        .args([
            "anonymize",
            "--map",
            map.to_str().unwrap(),
            "--segment",
            "0",
            "--k",
            "5,10",
            "--keys",
            &key,
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(map);
}

#[test]
fn cli_batch_anonymizes_a_csv_of_requests() {
    let map = tmp("batch.map");
    let input = tmp("batch-requests.csv");
    let results = tmp("batch-results.csv");

    let out = rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();
    assert!(out.status.success());

    std::fs::write(
        &input,
        "# owner,segment\nalice, 40\nbob,10\ncarol,77\n\ndave,3\n",
    )
    .unwrap();

    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--workers",
            "4",
            "--cars",
            "300",
            "--out",
            results.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anonymized 4/4 requests"), "{stdout}");

    let csv = std::fs::read_to_string(&results).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "owner,segment,status,region_size,attempts");
    assert_eq!(lines.len(), 5);
    // Input order preserved, every request succeeded on uniform traffic.
    for (line, owner) in lines[1..].iter().zip(["alice", "bob", "carol", "dave"]) {
        assert!(line.starts_with(&format!("{owner},")), "{line}");
        assert!(line.contains(",ok,"), "{line}");
    }

    for p in [map, input, results] {
        let _ = std::fs::remove_file(p);
    }
}

/// Malformed batch rows: every bad row is reported on stderr with its
/// line number, the valid rows still run, and the exit code is nonzero
/// (1, not the usage code 2) — with an all-good CSV exiting 0.
#[test]
fn cli_batch_reports_malformed_rows_with_line_numbers() {
    let map = tmp("badrows.map");
    let input = tmp("badrows.csv");

    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();

    // Line 3 has no comma, line 5 a non-numeric segment; 2 valid rows.
    std::fs::write(&input, "# hdr\nalice,40\nbob\n\ncarol,4x\ndave,3\n").unwrap();
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--cars",
            "300",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "data error, not usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let input_name = input.to_str().unwrap();
    assert!(
        stderr.contains(&format!("{input_name}:3: expected `owner,segment`")),
        "{stderr}"
    );
    assert!(
        stderr.contains(&format!("{input_name}:5: bad segment id `4x`")),
        "{stderr}"
    );
    assert!(stderr.contains("2 malformed row(s)"), "{stderr}");
    assert!(!stderr.contains("usage:"), "not a usage error: {stderr}");
    // The valid rows still ran, in order.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anonymized 2/2 requests"), "{stdout}");
    assert!(stdout.contains("alice,40,ok,"), "{stdout}");
    assert!(stdout.contains("dave,3,ok,"), "{stdout}");

    // Nothing but malformed rows: still per-row reports, still exit 1.
    std::fs::write(&input, "alice\nbob;7\n").unwrap();
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(":1: expected `owner,segment`"), "{stderr}");
    assert!(stderr.contains(":2: expected `owner,segment`"), "{stderr}");
    assert!(stderr.contains("nothing to run"), "{stderr}");

    // The fully-valid case exits 0 with no stderr noise.
    std::fs::write(&input, "alice,40\nbob,10\n").unwrap();
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--cars",
            "300",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!String::from_utf8_lossy(&out.stderr).contains("malformed"));

    for p in [map, input] {
        let _ = std::fs::remove_file(p);
    }
}

/// A hostile batch file cannot flood stderr: per-row reports are capped
/// and the overflow is summarized in one line.
#[test]
fn cli_batch_caps_malformed_row_reports() {
    let map = tmp("capped.map");
    let input = tmp("capped.csv");
    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();
    // 30 malformed rows (cap is 20) plus one valid row.
    let mut csv = "no-comma\n".repeat(30);
    csv.push_str("alice,40\n");
    std::fs::write(&input, csv).unwrap();
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--cars",
            "300",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr
            .lines()
            .filter(|l| l.contains("expected `owner,segment`"))
            .count(),
        20,
        "{stderr}"
    );
    assert!(
        stderr.contains("10 more malformed row(s) not shown"),
        "{stderr}"
    );
    assert!(stderr.contains("30 malformed row(s)"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anonymized 1/1 requests"), "{stdout}");
    for p in [map, input] {
        let _ = std::fs::remove_file(p);
    }
}

/// An unwritable `--out` is a data error: exit 1 with a one-line error,
/// never a panic backtrace.
#[test]
fn cli_unwritable_out_paths_fail_cleanly() {
    let map = tmp("unwritable.map");
    let input = tmp("unwritable.csv");
    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();
    std::fs::write(&input, "alice,40\n").unwrap();
    let bad_out = "/nonexistent-dir-rcloak/results.csv";
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--cars",
            "300",
            "--out",
            bad_out,
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "data error, not usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(&format!("write {bad_out}")), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    // Same for `simulate --out`.
    let out = rcloak()
        .args([
            "simulate", "--ticks", "2", "--cars", "200", "--grid", "7x7", "--owners", "3", "--out",
            bad_out,
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");

    for p in [map, input] {
        let _ = std::fs::remove_file(p);
    }
}

/// A payload file full of adversarial bytes is hostile *data*: both
/// `deanonymize` and `render` must reject it with exit 1 and no usage
/// dump — and certainly no panic.
#[test]
fn cli_garbage_payload_is_a_clean_data_error() {
    let map = tmp("garbage.map");
    let junk = tmp("garbage.bin");
    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();
    // Plausible-prefix junk: a huge length field right after random
    // bytes, the over-allocation shape the decode cap exists for.
    let mut bytes = vec![0x52, 0x43, 0x4c, 0x4b, 0xff, 0x07];
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0xa5; 40]);
    std::fs::write(&junk, &bytes).unwrap();
    let key = "ab".repeat(32);
    for subcmd in ["deanonymize", "render"] {
        let mut args = vec![
            subcmd,
            "--map",
            map.to_str().unwrap(),
            "--payload",
            junk.to_str().unwrap(),
        ];
        if subcmd == "deanonymize" {
            args.extend(["--keys", key.as_str()]);
        }
        let out = rcloak().args(&args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{subcmd}: data error, not usage error"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{subcmd}: {stderr}");
        assert!(!stderr.contains("usage:"), "{subcmd}: {stderr}");
        assert!(!stderr.contains("panicked"), "{subcmd}: {stderr}");
    }
    for p in [map, junk] {
        let _ = std::fs::remove_file(p);
    }
}

/// `rcloak simulate --chain-store PATH` journals every owner chain to a
/// durable write-ahead log; a rerun over the same path resumes, and an
/// unopenable path is a clean data error (exit 1), not a panic.
#[test]
fn cli_simulate_chain_store_journals_and_resumes() {
    let journal = tmp("chains.rcs");
    let _ = std::fs::remove_file(&journal);
    let run = || {
        rcloak()
            .args([
                "simulate",
                "--ticks",
                "3",
                "--cars",
                "250",
                "--grid",
                "8x8",
                "--owners",
                "5",
                "--seed",
                "3",
                "--chain-store",
                journal.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("journaling owner chains to"), "{stdout}");
    assert!(stdout.contains("verified 15/15"), "{stdout}");
    let first_len = std::fs::metadata(&journal).unwrap().len();
    assert!(first_len > 0, "the journal holds the ratchet advances");

    // Rerun over the surviving journal: chains resume, receipts verify.
    let out = run();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("verified 15/15"),
        "resumed chains still verify"
    );

    // An unopenable journal path: exit 1, one clean error line.
    let out = rcloak()
        .args([
            "simulate",
            "--ticks",
            "1",
            "--cars",
            "200",
            "--grid",
            "7x7",
            "--chain-store",
            "/nonexistent-dir-rcloak/chains.rcs",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "data error, not usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let _ = std::fs::remove_file(journal);
}

/// `rcloak simulate` runs the continuous pipeline end to end: every
/// receipt verifies, and the per-tick metrics CSV has one row per tick.
#[test]
fn cli_simulate_runs_the_continuous_pipeline() {
    let metrics = tmp("sim-metrics.csv");
    let out = rcloak()
        .args([
            "simulate",
            "--ticks",
            "6",
            "--cars",
            "250",
            "--grid",
            "8x8",
            "--owners",
            "10",
            "--cadence",
            "2",
            "--k",
            "4,8",
            "--seed",
            "3",
            "--out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("issued 60 receipts"), "{stdout}");
    assert!(stdout.contains("verified 60/60"), "{stdout}");

    let csv = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 7, "header + one row per tick");
    assert!(lines[0].starts_with("tick,clock_s,"));
    let header_cols = lines[0].split(',').count();
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), header_cols, "{row}");
    }
    // Cadence 2: ticks 2, 4, 6 refreshed the snapshot, odd ticks did not.
    assert!(lines[1].contains(",false,"), "{}", lines[1]);
    assert!(lines[2].contains(",true,"), "{}", lines[2]);

    // RPLE engine works through the same surface.
    let out = rcloak()
        .args([
            "simulate", "--ticks", "3", "--cars", "200", "--grid", "7x7", "--owners", "6",
            "--engine", "rple",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Bad flag values are usage errors (exit 2).
    let out = rcloak()
        .args(["simulate", "--ticks", "zero"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(metrics);
}

/// `rcloak simulate --attack MODE` runs the attack leg alongside the
/// pipeline and widens the per-tick metrics CSV with the leg's rollup
/// columns — engine stream first, then the NRE control.
#[test]
fn cli_simulate_attack_flag_widens_the_csv() {
    let metrics = tmp("sim-attack-metrics.csv");
    let out = rcloak()
        .args([
            "simulate",
            "--ticks",
            "4",
            "--cars",
            "250",
            "--grid",
            "8x8",
            "--owners",
            "6",
            "--k",
            "4,8",
            "--seed",
            "5",
            "--attack",
            "all",
            "--out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("attack leg `all`"), "{stdout}");

    let csv = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 5, "header + one row per tick");
    assert!(
        lines[0].ends_with(
            "attack_observations,attack_mean_entropy_bits,attack_guess_rate,\
             nre_observations,nre_mean_entropy_bits,nre_guess_rate"
        ),
        "{}",
        lines[0]
    );
    let header_cols = lines[0].split(',').count();
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), header_cols, "{row}");
    }
    // Both streams observed every tracked owner each tick.
    let first: Vec<&str> = lines[1].split(',').collect();
    assert_eq!(first[header_cols - 6], "6", "engine observations per tick");
    assert_eq!(first[header_cols - 3], "6", "nre observations per tick");

    // --no-baseline keeps the arity but leaves the NRE cells empty.
    let out = rcloak()
        .args([
            "simulate",
            "--ticks",
            "2",
            "--cars",
            "200",
            "--grid",
            "7x7",
            "--owners",
            "4",
            "--attack",
            "peel",
            "--no-baseline",
            "--out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    let header_cols = lines[0].split(',').count();
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), header_cols, "{row}");
        assert!(row.ends_with(",,,"), "empty NRE cells: {row}");
    }

    // Unknown adversary modes are usage errors.
    let out = rcloak()
        .args(["simulate", "--ticks", "1", "--attack", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(metrics);
}

/// `rcloak attack` runs the continuous adversarial evaluation: the
/// summary separates the keyed engine stream from the NRE control, and
/// the CSV logs one row per (scheme, owner, tick).
#[test]
fn cli_attack_evaluates_the_receipt_stream() {
    let log = tmp("attack-log.csv");
    let out = rcloak()
        .args([
            "attack",
            "--ticks",
            "8",
            "--cars",
            "250",
            "--grid",
            "8x8",
            "--owners",
            "5",
            "--k",
            "4,8",
            "--seed",
            "3",
            "--out",
            log.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("adversary vs  rge:"), "{stdout}");
    assert!(stdout.contains("adversary vs  nre:"), "{stdout}");
    assert!(stdout.contains("separation:"), "{stdout}");

    let csv = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert!(lines[0].starts_with("scheme,tick,owner,"), "{}", lines[0]);
    // 8 ticks × 5 owners × 2 schemes (engine + NRE control) + header.
    assert_eq!(lines.len(), 1 + 8 * 5 * 2, "{}", lines.len());
    let header_cols = lines[0].split(',').count();
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), header_cols, "{row}");
    }
    assert!(lines[1..].iter().any(|l| l.starts_with("rge,")));
    assert!(lines[1..].iter().any(|l| l.starts_with("nre,")));

    // --no-baseline drops the control; a chosen adversary mode is echoed.
    let out = rcloak()
        .args([
            "attack",
            "--ticks",
            "3",
            "--cars",
            "150",
            "--grid",
            "7x7",
            "--owners",
            "3",
            "--engine",
            "rple",
            "--adversary",
            "move",
            "--no-baseline",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("adversary `move`"), "{stdout}");
    assert!(stdout.contains("NRE control off"), "{stdout}");
    assert!(!stdout.contains("adversary vs  nre:"), "{stdout}");

    // Unknown adversaries are usage errors (exit 2).
    let out = rcloak()
        .args(["attack", "--adversary", "psychic"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(log);
}
