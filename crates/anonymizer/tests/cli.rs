//! End-to-end test of the `rcloak` command-line toolkit: an owner
//! generates a map and keys, cloaks a segment, and a requester
//! de-anonymizes with a keyring — all through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn rcloak() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcloak"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rcloak-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_cli_workflow() {
    let map = tmp("city.map");
    let ring = tmp("keys.txt");
    let payload = tmp("cloak.bin");
    let svg = tmp("cloak.svg");

    // 1. Generate a map.
    let out = rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .expect("rcloak runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(map.exists());

    // 2. Generate keys into a keyring.
    let out = rcloak()
        .args([
            "keys",
            "--levels",
            "2",
            "--seed",
            "9",
            "--out",
            ring.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Key1 ="));
    assert!(stdout.contains("Key2 ="));
    let key_lines: Vec<String> = stdout
        .lines()
        .filter(|l| l.starts_with("Key"))
        .map(|l| l.split(" = ").nth(1).unwrap().to_string())
        .collect();

    // 3. Anonymize segment 40 at two levels.
    let out = rcloak()
        .args([
            "anonymize",
            "--map",
            map.to_str().unwrap(),
            "--segment",
            "40",
            "--k",
            "5,12",
            "--keys",
            &format!("{},{}", key_lines[0], key_lines[1]),
            "--cars",
            "300",
            "--out",
            payload.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(payload.exists());
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));

    // 4. De-anonymize with the keyring: must recover s40 exactly.
    let out = rcloak()
        .args([
            "deanonymize",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--keyring",
            ring.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exact segment: s40"), "{stdout}");

    // 5. Partial peel with only the top key (hex, top level first).
    let out = rcloak()
        .args([
            "deanonymize",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--keys",
            &key_lines[1],
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reduced to level L1"), "{stdout}");

    // 6. Render the map with the (keyless) payload overlay.
    let out = rcloak()
        .args([
            "render",
            "--map",
            map.to_str().unwrap(),
            "--payload",
            payload.to_str().unwrap(),
            "--width",
            "60",
            "--height",
            "24",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    for p in [map, ring, payload, svg] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn cli_rejects_bad_input() {
    // No subcommand.
    let out = rcloak().output().unwrap();
    assert!(!out.status.success());
    // Unknown subcommand.
    let out = rcloak().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Missing required option.
    let out = rcloak().args(["map"]).output().unwrap();
    assert!(!out.status.success());
    // Key/k count mismatch.
    let map = tmp("mismatch.map");
    rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "4x4"])
        .output()
        .unwrap();
    let key = keystream::Key256::from_seed(1).to_hex();
    let out = rcloak()
        .args([
            "anonymize",
            "--map",
            map.to_str().unwrap(),
            "--segment",
            "0",
            "--k",
            "5,10",
            "--keys",
            &key,
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(map);
}

#[test]
fn cli_batch_anonymizes_a_csv_of_requests() {
    let map = tmp("batch.map");
    let input = tmp("batch-requests.csv");
    let results = tmp("batch-results.csv");

    let out = rcloak()
        .args(["map", "--out", map.to_str().unwrap(), "--grid", "8x8"])
        .output()
        .unwrap();
    assert!(out.status.success());

    std::fs::write(
        &input,
        "# owner,segment\nalice, 40\nbob,10\ncarol,77\n\ndave,3\n",
    )
    .unwrap();

    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
            "--workers",
            "4",
            "--cars",
            "300",
            "--out",
            results.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anonymized 4/4 requests"), "{stdout}");

    let csv = std::fs::read_to_string(&results).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "owner,segment,status,region_size,attempts");
    assert_eq!(lines.len(), 5);
    // Input order preserved, every request succeeded on uniform traffic.
    for (line, owner) in lines[1..].iter().zip(["alice", "bob", "carol", "dave"]) {
        assert!(line.starts_with(&format!("{owner},")), "{line}");
        assert!(line.contains(",ok,"), "{line}");
    }

    // A malformed CSV row is a clean error, not a panic.
    std::fs::write(&input, "alice\n").unwrap();
    let out = rcloak()
        .args([
            "batch",
            "--map",
            map.to_str().unwrap(),
            "--input",
            input.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected `owner,segment`"));

    for p in [map, input, results] {
        let _ = std::fs::remove_file(p);
    }
}
