//! Structure-aware mutation fuzzing of the `rcloak batch` CSV parser.
//!
//! Companion to `crates/cloak/tests/payload_fuzz.rs` on the other decode
//! surface: generate well-formed request CSVs, then sweep the mutations
//! a hostile or damaged file actually shows up with — byte corruption,
//! truncation, splice-in of arbitrary junk lines — and assert the parser
//! never panics, bounds what it accepts, and keeps the accepted rows'
//! seed derivation pinned. Deterministic by test name; CI runs this at a
//! fixed case budget (`fuzz-smoke`).

use anonymizer::batch_input::{
    batch_row_seed, parse_batch_requests, MALFORMED_REPORT_CAP, MAX_OWNER_LEN,
};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a well-formed batch CSV from a seed: 0–8 request rows with
/// varied owner shapes, interleaved comments and blank lines.
fn corpus_csv(seed: u64) -> String {
    let mut s = seed;
    let rows = splitmix(&mut s) % 9;
    let mut text = String::from("# corpus\n");
    for i in 0..rows {
        match splitmix(&mut s) % 4 {
            0 => text.push('\n'),
            1 => text.push_str("# comment\n"),
            _ => {}
        }
        let owner_len = 1 + (splitmix(&mut s) % 12) as usize;
        let owner: String = (0..owner_len)
            .map(|_| char::from(b'a' + (splitmix(&mut s) % 26) as u8))
            .collect();
        text.push_str(&format!("{owner}-{i},{}\n", splitmix(&mut s) % 10_000));
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte corruption of a valid CSV (kept UTF-8, as the CLI's
    /// `read_to_string` guarantees): the parser never panics, every line
    /// is either a request or a counted malformed row, and accepted rows
    /// keep the pinned seed derivation.
    #[test]
    fn corrupted_csvs_never_panic_and_stay_accounted(
        seed in any::<u64>(),
        positions in proptest::collection::vec(any::<u32>(), 1..8),
        values in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut bytes = corpus_csv(seed).into_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        for (&pos, &byte) in positions.iter().zip(&values) {
            let idx = pos as usize % bytes.len();
            bytes[idx] = byte;
        }
        let text = String::from_utf8_lossy(&bytes);
        let parsed = parse_batch_requests(&text, 7);
        let content_lines = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim().starts_with('#'))
            .count();
        prop_assert_eq!(parsed.requests.len() + parsed.malformed.len(), content_lines);
        for (i, request) in parsed.requests.iter().enumerate() {
            prop_assert_eq!(request.seed, batch_row_seed(7, i));
            prop_assert!(!request.owner.is_empty());
            prop_assert!(request.owner.len() <= MAX_OWNER_LEN);
        }
    }

    /// Every truncation of a valid CSV parses cleanly: the rows before
    /// the cut survive untouched, and at most the torn final row is
    /// malformed — truncation never cascades.
    #[test]
    fn truncations_lose_at_most_the_torn_row(seed in any::<u64>(), raw_cut in any::<u64>()) {
        let text = corpus_csv(seed);
        let full = parse_batch_requests(&text, 3);
        let mut cut = (raw_cut % (text.len() as u64 + 1)) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let parsed = parse_batch_requests(&text[..cut], 3);
        prop_assert!(parsed.requests.len() <= full.requests.len());
        prop_assert!(parsed.malformed.len() <= 1, "only the torn row may reject");
        // Every fully-contained row parses exactly as it did untorn; only
        // the final accepted row may be the torn one (e.g. `alice,1234`
        // cut to `alice,12` still parses, as a shorter segment id).
        let contained = parsed.requests.len().saturating_sub(1);
        for (got, want) in parsed.requests[..contained].iter().zip(&full.requests) {
            prop_assert_eq!(&got.owner, &want.owner);
            prop_assert_eq!(got.segment, want.segment);
            prop_assert_eq!(got.seed, want.seed);
        }
    }

    /// Junk lines spliced between valid rows are rejected row-by-row and
    /// the stderr report stays capped no matter how many there are.
    #[test]
    fn spliced_junk_is_contained_and_reports_stay_capped(
        seed in any::<u64>(),
        junk in proptest::collection::vec("[^\n]{0,40}", 0..40),
    ) {
        let valid = corpus_csv(seed);
        let expected = parse_batch_requests(&valid, 11).requests.len();
        let mut text = String::new();
        for (i, line) in valid.lines().enumerate() {
            if let Some(j) = junk.get(i) {
                text.push_str(j);
                text.push('\n');
            }
            text.push_str(line);
            text.push('\n');
        }
        for j in junk.iter().skip(valid.lines().count()) {
            text.push_str(j);
            text.push('\n');
        }
        let parsed = parse_batch_requests(&text, 11);
        // Junk may happen to be a valid `owner,segment` row, so accepted
        // rows only ever grow; the original rows all survive.
        prop_assert!(parsed.requests.len() >= expected);
        prop_assert!(parsed.capped_reports("f.csv").len() <= MALFORMED_REPORT_CAP + 1);
    }
}

/// The degenerate inputs a fuzzer finds first, pinned as plain units.
#[test]
fn degenerate_inputs_parse_to_empty_without_panic() {
    for input in ["", "\n", "#only,a,comment\n", ",", ",,,,\n", "\u{0},\u{0}"] {
        let parsed = parse_batch_requests(input, 0);
        assert!(parsed.requests.is_empty(), "{input:?}");
    }
    // A lone comma is an empty owner, not a crash.
    assert_eq!(parse_batch_requests(",", 0).malformed.len(), 1);
}
