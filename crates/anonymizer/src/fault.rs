//! Deterministic, seeded fault injection for the continuous pipeline.
//!
//! Durability claims are only as good as the failures they were tested
//! under. This module injects the failures a deployed anonymizer
//! actually meets — journal write errors, snapshot-capture failures,
//! per-owner cloak failures, and a simulated crash between
//! ratchet-advance and receipt-issue — *deterministically*: every
//! injection decision is a pure function of the [`FaultPlan`] seed and a
//! per-category draw counter, so a failing run replays exactly.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — what to inject, with per-category probabilities;
//! * [`FaultInjector`] — the seeded coin, shared between the pipeline
//!   and the store wrapper;
//! * [`FaultyStore`] — wraps any [`ChainStore`] and refuses operations
//!   when the injector says so (the pipeline installs it automatically
//!   when a plan is configured);
//! * [`FaultPolicy`] — the tick-level degradation ladder the pipeline
//!   applies to persistence failures: retry with backoff, then skip the
//!   owner and count it, then abort the tick once the skip budget is
//!   blown;
//! * [`TickHealth`] — the per-tick health counters surfaced in
//!   [`crate::TickReport::health`].
//!
//! Because the service commits a ratchet advance only after the store
//! acknowledged it, a retry after an injected journal failure re-derives
//! the *same* epoch — so a run whose retries all succeed is
//! receipt-for-receipt identical to the fault-free run.

use crate::service::splitmix64;
use keystream::{ChainState, ChainStore, JournalError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to inject, with per-category probabilities in `[0, 1]`.
///
/// The default plan injects nothing; a zero probability never draws from
/// the injector's counter stream, so enabling one category does not
/// shift another's decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a [`ChainStore::record`] write fails.
    pub journal_write_fail: f64,
    /// Probability that a [`ChainStore::compact`] fails.
    pub compact_fail: f64,
    /// Probability that a cadence snapshot capture fails (the pipeline
    /// keeps serving the stale snapshot and counts the fault).
    pub snapshot_capture_fail: f64,
    /// Probability that an owner's cloak fails this tick (the receipt is
    /// dropped as if the walk dead-ended).
    pub cloak_fail: f64,
    /// Simulate a crash at this tick, after every owner's ratchet
    /// advance was journaled but before any receipt is issued — the
    /// window a write-ahead log exists for.
    pub crash_at_tick: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xfa_017,
            journal_write_fail: 0.0,
            compact_fail: 0.0,
            snapshot_capture_fail: 0.0,
            cloak_fail: 0.0,
            crash_at_tick: None,
        }
    }
}

/// The tick-level degradation ladder for persistence failures:
/// retry-with-backoff → skip-owner-and-count → abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Re-anonymization attempts per owner after a persistence failure
    /// (the chain did not advance, so a retry re-derives the same epoch).
    pub journal_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ms << n` milliseconds
    /// (0 keeps harness runs instant).
    pub backoff_base_ms: u64,
    /// Owners that may be skipped in one tick after exhausting retries
    /// before the tick aborts with a [`crate::PipelineError`].
    pub max_skipped_owners: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            journal_retries: 2,
            backoff_base_ms: 0,
            max_skipped_owners: usize::MAX,
        }
    }
}

impl FaultPolicy {
    /// A zero-tolerance policy: no retries, no skips — the first
    /// unrecovered persistence failure aborts the tick.
    pub fn strict() -> Self {
        FaultPolicy {
            journal_retries: 0,
            backoff_base_ms: 0,
            max_skipped_owners: 0,
        }
    }
}

/// Per-tick health counters, surfaced in [`crate::TickReport::health`].
///
/// All zeros ([`is_clean`](Self::is_clean)) on every tick of a
/// fault-free run; under a [`FaultPlan`] they account for exactly what
/// was injected and how the degradation ladder absorbed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickHealth {
    /// Re-anonymization retries after journal write failures.
    pub journal_retries: u64,
    /// Owners skipped this tick after exhausting journal retries.
    pub journal_skips: u64,
    /// Cadence snapshot captures that failed (stale snapshot served).
    pub snapshot_faults: u64,
    /// Receipts dropped by injected per-owner cloak failures.
    pub injected_cloak_failures: u64,
}

impl TickHealth {
    /// Whether the tick ran with no degradation at all.
    pub fn is_clean(&self) -> bool {
        *self == TickHealth::default()
    }
}

/// Per-category draw domains: decisions in one category never perturb
/// another's stream.
const DOMAIN_JOURNAL: u64 = 0x6a75_726e;
const DOMAIN_COMPACT: u64 = 0x636f_6d70;
const DOMAIN_SNAPSHOT: u64 = 0x736e_6170;
const DOMAIN_CLOAK: u64 = 0x636c_6f61;

/// The seeded coin behind every injection decision.
///
/// Each category keeps its own atomic draw counter; decision `n` of a
/// category is `splitmix64(seed ⊕ domain ⊕ n·φ) < p·2⁶⁴` — deterministic
/// under any thread interleaving as long as draws happen in a
/// deterministic order (the pipeline draws only from its sequential
/// sections: the batch key pre-pass and the tick report loop).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    journal_draws: AtomicU64,
    compact_draws: AtomicU64,
    snapshot_draws: AtomicU64,
    cloak_draws: AtomicU64,
    injected_journal: AtomicU64,
    injected_compact: AtomicU64,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            journal_draws: AtomicU64::new(0),
            compact_draws: AtomicU64::new(0),
            snapshot_draws: AtomicU64::new(0),
            cloak_draws: AtomicU64::new(0),
            injected_journal: AtomicU64::new(0),
            injected_compact: AtomicU64::new(0),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn roll(&self, domain: u64, counter: &AtomicU64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            counter.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let n = counter.fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(self.plan.seed ^ domain ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Compare in the integer domain: x < p·2⁶⁴.
        (x as f64) < p * (u64::MAX as f64)
    }

    /// Should the next journal write fail?
    pub fn journal_write_fault(&self) -> bool {
        let hit = self.roll(
            DOMAIN_JOURNAL,
            &self.journal_draws,
            self.plan.journal_write_fail,
        );
        if hit {
            self.injected_journal.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should the next compaction fail?
    pub fn compact_fault(&self) -> bool {
        let hit = self.roll(DOMAIN_COMPACT, &self.compact_draws, self.plan.compact_fail);
        if hit {
            self.injected_compact.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should this cadence snapshot capture fail?
    pub fn snapshot_fault(&self) -> bool {
        self.roll(
            DOMAIN_SNAPSHOT,
            &self.snapshot_draws,
            self.plan.snapshot_capture_fail,
        )
    }

    /// Should this owner's cloak fail this tick?
    pub fn cloak_fault(&self) -> bool {
        self.roll(DOMAIN_CLOAK, &self.cloak_draws, self.plan.cloak_fail)
    }

    /// Is the simulated crash due at `tick`?
    pub fn crash_due(&self, tick: u64) -> bool {
        self.plan.crash_at_tick == Some(tick)
    }

    /// Journal write failures injected so far.
    pub fn injected_journal_faults(&self) -> u64 {
        self.injected_journal.load(Ordering::Relaxed)
    }

    /// Compaction failures injected so far.
    pub fn injected_compact_faults(&self) -> u64 {
        self.injected_compact.load(Ordering::Relaxed)
    }
}

/// A [`ChainStore`] wrapper that consults a [`FaultInjector`] before
/// delegating — the harness's stand-in for a flaky disk. Loads always
/// pass through: recovery reads are the thing being tested, not the
/// thing being broken.
pub struct FaultyStore {
    inner: Arc<dyn ChainStore>,
    injector: Arc<FaultInjector>,
}

impl std::fmt::Debug for FaultyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStore")
            .field("injector", &self.injector)
            .finish_non_exhaustive()
    }
}

impl FaultyStore {
    /// Wraps `inner` under `injector`'s plan.
    pub fn new(inner: Arc<dyn ChainStore>, injector: Arc<FaultInjector>) -> Self {
        FaultyStore { inner, injector }
    }
}

impl ChainStore for FaultyStore {
    fn record(&self, owner: &str, state: &ChainState) -> Result<(), JournalError> {
        if self.injector.journal_write_fault() {
            return Err(JournalError::Injected(format!(
                "journal write refused for owner {owner}"
            )));
        }
        self.inner.record(owner, state)
    }

    fn load(&self) -> Result<Vec<(String, ChainState)>, JournalError> {
        self.inner.load()
    }

    fn compact(&self) -> Result<(), JournalError> {
        if self.injector.compact_fault() {
            return Err(JournalError::Injected("compaction refused".to_string()));
        }
        self.inner.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystream::{Key256, MemStore};

    #[test]
    fn injection_is_deterministic_per_seed_and_draw_index() {
        let plan = FaultPlan {
            seed: 42,
            journal_write_fail: 0.3,
            ..Default::default()
        };
        let a: Vec<bool> = {
            let inj = FaultInjector::new(plan.clone());
            (0..64).map(|_| inj.journal_write_fault()).collect()
        };
        let b: Vec<bool> = {
            let inj = FaultInjector::new(plan);
            (0..64).map(|_| inj.journal_write_fault()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.3 over 64 draws injects some");
        assert!(a.iter().any(|&x| !x), "…but not all");
    }

    #[test]
    fn categories_draw_independently() {
        let plan = FaultPlan {
            seed: 7,
            journal_write_fail: 0.5,
            cloak_fail: 0.5,
            ..Default::default()
        };
        // Interleaving draws across categories must not change either
        // category's sequence.
        let solo: Vec<bool> = {
            let inj = FaultInjector::new(plan.clone());
            (0..32).map(|_| inj.cloak_fault()).collect()
        };
        let interleaved: Vec<bool> = {
            let inj = FaultInjector::new(plan);
            (0..32)
                .map(|_| {
                    let _ = inj.journal_write_fault();
                    inj.cloak_fault()
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn zero_probability_never_fires_and_never_draws() {
        let inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..100 {
            assert!(!inj.journal_write_fault());
            assert!(!inj.snapshot_fault());
            assert!(!inj.cloak_fault());
            assert!(!inj.compact_fault());
        }
        assert_eq!(inj.injected_journal_faults(), 0);
    }

    #[test]
    fn faulty_store_refuses_per_plan_and_passes_loads() {
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            seed: 1,
            journal_write_fail: 1.0,
            ..Default::default()
        }));
        let store = FaultyStore::new(Arc::new(MemStore::new()), Arc::clone(&injector));
        let mut chain = ChainState::genesis("alice", &Key256::from_seed(1));
        chain.ratchet();
        assert!(matches!(
            store.record("alice", &chain),
            Err(JournalError::Injected(_))
        ));
        assert_eq!(injector.injected_journal_faults(), 1);
        assert!(store.load().unwrap().is_empty(), "nothing was recorded");
        assert!(store.compact().is_ok(), "compact not in this plan");
    }

    #[test]
    fn crash_is_a_tick_trigger_not_a_coin() {
        let inj = FaultInjector::new(FaultPlan {
            crash_at_tick: Some(3),
            ..Default::default()
        });
        assert!(!inj.crash_due(2));
        assert!(inj.crash_due(3));
        assert!(!inj.crash_due(4));
    }
}
