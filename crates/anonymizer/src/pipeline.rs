//! The continuous anonymization pipeline: live traffic in, verified
//! cloaks out, tick after tick.
//!
//! The paper's system is inherently temporal — cars move, occupancy
//! changes, and a cloaked region must stay k-anonymous *with respect to
//! the snapshot it was issued under* while remaining exactly reversible.
//! [`ContinuousPipeline`] closes that loop: each [`tick`] advances a
//! [`mobisim::Simulation`], recaptures the [`OccupancySnapshot`] on a
//! configurable cadence and swaps it into the running
//! [`AnonymizerService`] (the lock-free `RwLock<Arc<_>>` swap, now driven
//! by real churn instead of a synthetic race), re-anonymizes a tracked
//! owner population through [`AnonymizerService::anonymize_batch`], feeds
//! the fresh cloaked regions into [`lbs`] nearest-POI queries, and
//! verifies the per-tick invariants:
//!
//! * **reversibility** — every issued receipt deanonymizes back to the
//!   exact segment the owner was on, through the normal
//!   key-fetch path;
//! * **k-anonymity at issue time** — the region covers at least the top
//!   requirement's k users *on the snapshot the receipt was issued
//!   under* (later swaps never retroactively invalidate a receipt);
//! * **grant preservation** — a requester registered at an owner's first
//!   cloak keeps working after every re-anonymization (its captured
//!   epoch grant keeps opening *that* epoch's receipt even though the
//!   owner's chain has ratcheted past it);
//! * **determinism** — request seeds derive from (pipeline seed, tick,
//!   owner), and each request's level keys derive from the owner's
//!   forward-secret chain ([`keystream::ChainState`]), which the service
//!   advances in request order. Two pipelines with the same
//!   configuration therefore produce bit-identical receipt streams
//!   regardless of batch parallelism (compare [`TickReport::digest`]) —
//!   determinism is per *service history*, not per request.
//!
//! An optional **attack leg** ([`AttackConfig`], like the LBS leg)
//! subscribes a keyless [`TemporalAdversary`] to the receipt stream and
//! mounts the longitudinal correlation attacks — multi-tick peel
//! intersection, snapshot correlation, movement-model reachability
//! pruning — with a non-reversible random-expansion (NRE) control grown
//! side-by-side from the same true segments as the vulnerable
//! comparison. Per-tick rollups land in [`TickReport::attack`]; the full
//! per-owner log is available as [`AttackRecord`]s for CSV export
//! (`rcloak attack`). The attack leg is observational: it never touches
//! the receipt stream, so digests are unchanged whether it runs or not.
//!
//! [`tick`]: ContinuousPipeline::tick
//!
//! # Example
//!
//! ```
//! use anonymizer::{AnonymizerConfig, ContinuousPipeline, PipelineConfig};
//! use mobisim::SimConfig;
//! use roadnet::grid_city;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_city(6, 6, 100.0);
//! let mut pipeline = ContinuousPipeline::new(
//!     net,
//!     SimConfig { cars: 150, seed: 7, ..Default::default() },
//!     AnonymizerConfig::default(),
//!     PipelineConfig { tracked_owners: 4, ..Default::default() },
//! );
//! let reports = pipeline.run(3)?;
//! assert_eq!(reports.len(), 3);
//! for report in &reports {
//!     assert_eq!(report.failed, 0);
//!     assert_eq!(report.verified, report.issued);
//!     assert!(report.quality.min_relative_anonymity() >= 1.0);
//! }
//! # Ok(())
//! # }
//! ```

use crate::config::AnonymizerConfig;
use crate::deanonymizer::Deanonymizer;
use crate::fault::{FaultInjector, FaultPlan, FaultPolicy, FaultyStore, TickHealth};
use crate::service::{AnonymizeRequest, AnonymizerService, Engine};
use cloak::attack::temporal::{
    AdversaryConfig, AdversaryMode, AttackObservation, AttackSummary, Observation, ReplayProbe,
    TemporalAdversary,
};
use cloak::{
    random_expansion_with, CloakError, CloakPayload, CloakScratch, ExpansionScratch,
    PrivacyProfile, QualitySummary, RegionQuality, StepFailure,
};
use keystream::{ChainStore, JournalError, Key256, Level, MemStore, TrustDegree};
use lbs::{nearest_query_with, PoiCategory, PoiStore, QueryStats, SearchScratch};
use mobisim::{CarId, OccupancySnapshot, SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::RoadNetwork;
use std::collections::HashSet;
use std::sync::Arc;

/// The requester identity the pipeline registers with every tracked
/// owner to drive its reversibility checks.
pub const AUDITOR: &str = "pipeline-auditor";

/// Configuration of a [`ContinuousPipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Seconds of simulated time per tick.
    pub dt: f64,
    /// Recapture and swap the occupancy snapshot every this many ticks
    /// (1 = every tick; clamped to at least 1).
    pub snapshot_cadence: usize,
    /// How many cars are tracked as owners and re-anonymized each tick
    /// (clamped to the simulated car count).
    pub tracked_owners: usize,
    /// Base seed for per-request key/nonce derivation (mixed with tick
    /// and owner index, so the receipt stream is reproducible).
    pub seed: u64,
    /// Verify reversibility, k-anonymity and grant preservation for
    /// every receipt each tick (the scenario-harness mode). Disable for
    /// pure-throughput measurements.
    pub verify: bool,
    /// Feed this many receipts per tick into LBS nearest-POI queries
    /// (0 disables the LBS leg).
    pub lbs_probes: usize,
    /// POIs generated for the LBS leg (ignored when `lbs_probes` is 0).
    pub poi_count: usize,
    /// Continuous adversarial evaluation (`None` disables the attack
    /// leg). When on, a [`TemporalAdversary`] subscribes to the receipt
    /// stream and — unless disabled — an NRE baseline control runs
    /// side-by-side from the same true segments; see [`AttackConfig`].
    pub attack: Option<AttackConfig>,
    /// Deterministic fault injection (`None` runs fault-free). When on,
    /// the chain store is wrapped in a [`FaultyStore`] and the tick loop
    /// injects snapshot-capture failures, per-owner cloak failures, and
    /// the configured crash; see [`crate::fault`].
    pub fault: Option<FaultPlan>,
    /// How the tick loop degrades under persistence failures:
    /// retry-with-backoff → skip-owner-and-count → abort.
    pub fault_policy: FaultPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dt: 10.0,
            snapshot_cadence: 1,
            tracked_owners: 32,
            seed: 0x71c_c10a,
            verify: true,
            lbs_probes: 4,
            poi_count: 100,
            attack: None,
            fault: None,
            fault_policy: FaultPolicy::default(),
        }
    }
}

/// Configuration of the pipeline's attack leg: a keyless
/// [`TemporalAdversary`] watching the engine's receipt stream, with an
/// NRE (non-reversible random expansion) control cloaked from the same
/// true segments as the vulnerable comparison.
///
/// The NRE control models a *keyless deterministic* scheme: with no
/// key-distribution infrastructure there is no secret to rotate, so each
/// owner's expansion randomness derives from fixed public per-owner
/// state — which is exactly what the adversary's replay inversion
/// exploits. The reversible engines are immune because their selection
/// randomness is keyed, and keys ratchet forward through the owner's
/// chain state on every re-anonymization — forward secrecy: even a
/// later compromise of the service's current chain state replays
/// nothing from earlier epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// The adversary's attack portfolio (see [`AdversaryMode`]).
    pub mode: AdversaryMode,
    /// How many of the tracked owners the adversary follows (clamped to
    /// the tracked population).
    pub owners: usize,
    /// Run the NRE baseline control side-by-side.
    pub baseline: bool,
    /// Keep the full per-owner/per-tick [`AttackRecord`] log in memory
    /// (for CSV export). Rollups are always kept.
    pub keep_records: bool,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            mode: AdversaryMode::All,
            owners: usize::MAX,
            baseline: true,
            keep_records: true,
        }
    }
}

/// One attacked receipt: which stream, which owner, and the adversary's
/// per-tick metrics. Collected when [`AttackConfig::keep_records`] is on.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRecord {
    /// `"rge"` / `"rple"` for the engine stream, `"nre"` for the control.
    pub scheme: &'static str,
    /// The tracked owner the observation belongs to.
    pub owner: String,
    /// The adversary's metrics for this owner and tick.
    pub observation: AttackObservation,
}

impl AttackRecord {
    /// Header line matching [`AttackRecord::csv_row`].
    pub const CSV_HEADER: &'static str = "scheme,tick,owner,region_size,peel_frontier,support,\
         entropy_bits,user_entropy_bits,region_entropy_bits,guess_correct,true_in_support,reset";

    /// The record as one CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        let flag = |b: Option<bool>| match b {
            Some(true) => "1",
            Some(false) => "0",
            None => "",
        };
        format!(
            "{},{},{},{},{},{},{:.4},{:.4},{:.4},{},{},{}",
            self.scheme,
            self.observation.tick,
            self.owner,
            self.observation.region_size,
            self.observation.peel_frontier,
            self.observation.support,
            self.observation.entropy_bits,
            self.observation.user_entropy_bits,
            self.observation.region_entropy_bits,
            flag(self.observation.guess_correct),
            flag(self.observation.true_in_support),
            u8::from(self.observation.reset),
        )
    }
}

/// Per-tick rollup of the attack leg, attached to [`TickReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTickSummary {
    /// This tick's observations against the engine's receipt stream.
    pub engine: AttackSummary,
    /// This tick's observations against the NRE control (when enabled).
    pub baseline: Option<AttackSummary>,
}

/// An invariant violation detected by the pipeline's per-tick checks.
///
/// Anonymization *failures* (e.g. an RPLE walk dead-ending in sparse
/// traffic) are availability events counted in [`TickReport::failed`];
/// a `PipelineError` means a receipt that *was* issued broke a
/// guarantee, which is always a bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// Which guarantee broke, for which owner, at which tick.
    pub message: String,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline invariant violated: {}", self.message)
    }
}

impl std::error::Error for PipelineError {}

/// Per-tick metrics of a [`ContinuousPipeline`], CSV-exportable.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Simulation clock after this tick, in seconds.
    pub clock: f64,
    /// Whether this tick recaptured and swapped the snapshot.
    pub snapshot_refreshed: bool,
    /// Receipts issued this tick.
    pub issued: usize,
    /// Requests that failed (dead-ended walks after retries).
    pub failed: usize,
    /// Receipts that passed the full invariant check (equals `issued`
    /// when [`PipelineConfig::verify`] is on).
    pub verified: usize,
    /// Order-sensitive FNV digest over (owner, payload) of every issued
    /// receipt — equal digests mean bit-identical receipt streams.
    pub digest: u64,
    /// Region-quality rollup over this tick's receipts, measured against
    /// the snapshot they were issued under.
    pub quality: QualitySummary,
    /// LBS candidate-set / expansion-cost rollup for the probed regions.
    pub lbs: QueryStats,
    /// Attack-leg rollup for this tick (`None` when the leg is off).
    /// Not part of [`TickReport::csv_row`] — use
    /// [`TickReport::csv_row_with_attack`] for the wide per-tick form,
    /// or [`AttackRecord::csv_row`] for the long-form per-owner log.
    pub attack: Option<AttackTickSummary>,
    /// Health counters for this tick's degradation ladder: journal
    /// retries/skips, snapshot faults, injected cloak failures. All
    /// zeros on a fault-free run; not part of [`TickReport::csv_row`].
    pub health: TickHealth,
}

impl TickReport {
    /// Header line matching [`TickReport::csv_row`].
    pub const CSV_HEADER: &'static str = "tick,clock_s,snapshot_refreshed,issued,failed,verified,\
         digest,mean_region_segments,mean_users,mean_rel_anonymity,min_rel_anonymity,\
         mean_length_m,lbs_queries,lbs_mean_candidates,lbs_mean_visited";

    /// The report as one CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.1},{},{},{},{},{:016x},{:.2},{:.2},{:.3},{:.3},{:.1},{},{:.2},{:.2}",
            self.tick,
            self.clock,
            self.snapshot_refreshed,
            self.issued,
            self.failed,
            self.verified,
            self.digest,
            self.quality.mean_segments(),
            self.quality.mean_users(),
            self.quality.mean_relative_anonymity(),
            self.quality.min_relative_anonymity(),
            self.quality.mean_total_length(),
            self.lbs.queries(),
            self.lbs.mean_candidates(),
            self.lbs.mean_segments_visited()
        )
    }

    /// The attack-leg columns appended by
    /// [`TickReport::csv_header_with_attack`] and
    /// [`TickReport::csv_row_with_attack`]: the engine stream's per-tick
    /// rollup, then the NRE control's (empty cells when the control is
    /// off).
    pub const ATTACK_CSV_COLUMNS: &'static str = "attack_observations,attack_mean_entropy_bits,\
         attack_guess_rate,nre_observations,nre_mean_entropy_bits,nre_guess_rate";

    /// Header line matching [`TickReport::csv_row_with_attack`]: the
    /// base [`TickReport::CSV_HEADER`] columns plus
    /// [`TickReport::ATTACK_CSV_COLUMNS`].
    pub fn csv_header_with_attack() -> String {
        format!("{},{}", Self::CSV_HEADER, Self::ATTACK_CSV_COLUMNS)
    }

    /// The report as one CSV row including the attack-leg rollup (no
    /// trailing newline). Column arity always matches
    /// [`TickReport::csv_header_with_attack`]; the attack cells are
    /// empty when the leg (or the NRE control) is off.
    pub fn csv_row_with_attack(&self) -> String {
        let mut row = self.csv_row();
        let stream = |row: &mut String, summary: Option<&AttackSummary>| match summary {
            Some(s) => {
                row.push_str(&format!(
                    ",{},{:.4},{:.4}",
                    s.observations(),
                    s.mean_entropy(),
                    s.guess_success_rate()
                ));
            }
            None => row.push_str(",,,"),
        };
        stream(&mut row, self.attack.as_ref().map(|a| &a.engine));
        stream(
            &mut row,
            self.attack.as_ref().and_then(|a| a.baseline.as_ref()),
        );
        row
    }
}

/// Drives a simulation, a shared [`AnonymizerService`] and the LBS query
/// layer as one continuously-running system. See the module docs for the
/// invariants each tick enforces.
pub struct ContinuousPipeline {
    sim: Simulation,
    service: Arc<AnonymizerService>,
    dean: Deanonymizer,
    profile: PrivacyProfile,
    pois: Option<PoiStore>,
    cfg: PipelineConfig,
    tracked: Vec<(CarId, String)>,
    /// Persistent request buffer: owner strings are cloned once at
    /// construction; each tick only rewrites segment and seed in place.
    requests: Vec<AnonymizeRequest>,
    registered: HashSet<usize>,
    /// Snapshot buffer reclaimed from the previous cadence swap
    /// (`Arc::try_unwrap`), recaptured into instead of reallocating.
    spare_snapshot: Option<OccupancySnapshot>,
    /// Scratch for per-receipt verification peels.
    verify_scratch: CloakScratch,
    /// Scratch for the per-tick LBS query loop.
    lbs_scratch: SearchScratch,
    /// The continuous adversarial evaluation (attack leg), when on.
    attack: Option<AttackLeg>,
    /// The seeded fault coin shared with the [`FaultyStore`] wrapper
    /// (`None` when [`PipelineConfig::fault`] is off).
    injector: Option<Arc<FaultInjector>>,
    /// Set by an injected crash: every further [`tick`] refuses until
    /// the operator rebuilds the pipeline from the surviving store.
    ///
    /// [`tick`]: ContinuousPipeline::tick
    crashed: bool,
    tick: u64,
}

/// State of the pipeline's attack leg: one adversary per observed
/// stream, cumulative rollups, the NRE control's fixed per-owner seeds,
/// and (optionally) the full observation log.
struct AttackLeg {
    cfg: AttackConfig,
    engine_label: &'static str,
    engine_adversary: TemporalAdversary,
    engine_summary: AttackSummary,
    baseline_adversary: Option<TemporalAdversary>,
    baseline_summary: AttackSummary,
    /// Fixed per-owner NRE seeds — fixed across ticks *by design*: the
    /// keyless control has no key to rotate, which is the vulnerability
    /// the replay attack exploits.
    baseline_seeds: Vec<u64>,
    /// NRE cloaks that failed to grow (availability, not privacy).
    baseline_failures: usize,
    records: Vec<AttackRecord>,
    /// Wall time spent inside the engine adversary's `observe` calls
    /// (surfaceable through `rcloak attack` without criterion).
    engine_observe_time: std::time::Duration,
    /// Wall time inside the NRE adversary's `observe` calls (includes
    /// the replay inversion — the expensive control-only step).
    baseline_observe_time: std::time::Duration,
    /// Pooled buffers for growing the NRE control regions (one scratch
    /// serves every owner of every tick).
    nre_scratch: ExpansionScratch,
}

impl ContinuousPipeline {
    /// Builds the pipeline: starts the traffic simulation, creates the
    /// service over the same network, and installs the initial snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments (the simulation requires
    /// cars to be placeable).
    pub fn new(
        net: RoadNetwork,
        sim_cfg: SimConfig,
        anon_cfg: AnonymizerConfig,
        cfg: PipelineConfig,
    ) -> Self {
        Self::with_store(net, sim_cfg, anon_cfg, cfg, Arc::new(MemStore::new()))
            .expect("an empty MemStore never fails to load")
    }

    /// Builds the pipeline over an explicit [`ChainStore`] — the durable
    /// entry point. With a [`keystream::FileStore`], every ratchet
    /// advance is journaled before its receipt is issued, and rebuilding
    /// the pipeline over the same store after a crash resumes every
    /// tracked owner's chain at its journaled epoch (no epoch reuse).
    /// When [`PipelineConfig::fault`] is set, the store is wrapped in a
    /// [`FaultyStore`] sharing the pipeline's [`FaultInjector`].
    ///
    /// # Errors
    ///
    /// Returns the [`JournalError`] if recovering the store's journaled
    /// chains fails.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments, as [`ContinuousPipeline::new`]
    /// does.
    pub fn with_store(
        net: RoadNetwork,
        sim_cfg: SimConfig,
        anon_cfg: AnonymizerConfig,
        cfg: PipelineConfig,
        store: Arc<dyn ChainStore>,
    ) -> Result<Self, JournalError> {
        let top_simulated_speed = sim_cfg.speed_range.1;
        let sim = Simulation::new(net.clone(), sim_cfg);
        let injector = cfg
            .fault
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let store: Arc<dyn ChainStore> = match &injector {
            Some(inj) => Arc::new(FaultyStore::new(store, Arc::clone(inj))),
            None => store,
        };
        let service = AnonymizerService::with_store(net, anon_cfg, store)?;
        service.update_snapshot(OccupancySnapshot::capture(&sim));
        let dean = Deanonymizer::new(
            service.network_arc(),
            Engine::build(service.network(), service.config().engine),
        );
        let profile = service.config().default_profile.clone();
        let pois = (cfg.lbs_probes > 0).then(|| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1b5_0001);
            PoiStore::generate(service.network(), cfg.poi_count.max(1), &mut rng)
        });
        let tracked: Vec<(CarId, String)> = (0..cfg.tracked_owners.min(sim.cars().len()))
            .map(|i| (CarId(i as u32), format!("car-{i}")))
            .collect();
        let requests = tracked
            .iter()
            .map(|(_, owner)| AnonymizeRequest::new(owner.clone(), roadnet::SegmentId(0), 0))
            .collect();
        let attack = cfg.attack.clone().map(|mut attack_cfg| {
            attack_cfg.owners = attack_cfg.owners.min(tracked.len());
            let adversary_cfg = AdversaryConfig {
                mode: attack_cfg.mode,
                // A sound movement bound: the fastest simulated car.
                max_speed: top_simulated_speed,
                dt: cfg.dt,
                seed: cfg.seed ^ 0x00ad_5a17,
            };
            let baseline_seeds = (0..attack_cfg.owners)
                .map(|i| {
                    // Public per-owner state (the keyless control has no
                    // secret): derived from the owner index alone.
                    crate::service::splitmix64(0x17e_a5ed ^ (i as u64).wrapping_mul(0x100_0003))
                })
                .collect();
            AttackLeg {
                engine_label: match service.config().engine {
                    crate::config::EngineChoice::Rge => "rge",
                    crate::config::EngineChoice::Rple { .. } => "rple",
                },
                engine_adversary: TemporalAdversary::new(service.network(), adversary_cfg.clone()),
                engine_summary: AttackSummary::new(),
                baseline_adversary: attack_cfg
                    .baseline
                    .then(|| TemporalAdversary::new(service.network(), adversary_cfg)),
                baseline_summary: AttackSummary::new(),
                baseline_seeds,
                baseline_failures: 0,
                records: Vec::new(),
                engine_observe_time: std::time::Duration::ZERO,
                baseline_observe_time: std::time::Duration::ZERO,
                nre_scratch: ExpansionScratch::new(),
                cfg: attack_cfg,
            }
        });
        Ok(ContinuousPipeline {
            sim,
            service: Arc::new(service),
            dean,
            profile,
            pois,
            cfg,
            tracked,
            requests,
            registered: HashSet::new(),
            spare_snapshot: None,
            verify_scratch: CloakScratch::new(),
            lbs_scratch: SearchScratch::new(),
            attack,
            injector,
            crashed: false,
            tick: 0,
        })
    }

    /// The shared service (snapshot swaps and key fetches are `&self`).
    pub fn service(&self) -> Arc<AnonymizerService> {
        Arc::clone(&self.service)
    }

    /// The traffic simulation being driven.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Ticks run so far.
    pub fn ticks_run(&self) -> u64 {
        self.tick
    }

    /// Owners tracked and re-anonymized each tick.
    pub fn tracked_owner_count(&self) -> usize {
        self.tracked.len()
    }

    /// Advances one tick: step traffic, swap the snapshot on cadence,
    /// re-anonymize the tracked owners as a batch, probe the LBS, and
    /// (when configured) verify every receipt's invariants.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any issued receipt violates
    /// reversibility, k-anonymity at issue time, or grant preservation.
    pub fn tick(&mut self) -> Result<TickReport, PipelineError> {
        if self.crashed {
            return Err(PipelineError {
                message: format!(
                    "tick {}: pipeline crashed (injected); rebuild over the surviving \
                     chain store to resume",
                    self.tick
                ),
            });
        }
        self.tick += 1;
        self.sim.step(self.cfg.dt);

        let mut health = TickHealth::default();
        let cadence = self.cfg.snapshot_cadence.max(1) as u64;
        let mut snapshot_refreshed = self.tick.is_multiple_of(cadence);
        if snapshot_refreshed && self.injector.as_ref().is_some_and(|i| i.snapshot_fault()) {
            // Injected capture failure: keep serving the stale snapshot
            // and count the degradation — receipts stay correct because
            // every per-tick invariant is checked against the snapshot
            // actually in service at issue time.
            snapshot_refreshed = false;
            health.snapshot_faults += 1;
        }
        if snapshot_refreshed {
            // Recapture into the buffer reclaimed from the previous swap
            // when no in-flight reader still holds it; the steady-state
            // cadence loop then rotates two snapshot buffers instead of
            // allocating a fresh one each refresh.
            let mut snap = self
                .spare_snapshot
                .take()
                .unwrap_or_else(|| OccupancySnapshot::from_counts(Vec::new()));
            self.sim.capture_into(&mut snap);
            let previous = self.service.swap_snapshot(snap);
            self.spare_snapshot = Arc::try_unwrap(previous).ok();
        }
        // The snapshot every receipt of this tick is issued under; later
        // swaps must never retroactively invalidate these receipts.
        let issuing = self.service.snapshot();

        for (i, ((car, _), request)) in self
            .tracked
            .iter()
            .zip(self.requests.iter_mut())
            .enumerate()
        {
            request.segment = self
                .sim
                .car_segment(*car)
                .expect("tracked cars exist for the simulation's lifetime");
            request.seed = mix_seed(self.cfg.seed, self.tick, i as u64);
        }
        // Take the request buffer so its borrow does not pin `self`
        // across the verification calls; it is restored before returning
        // on every path.
        let requests = std::mem::take(&mut self.requests);
        let mut results = self.service.anonymize_batch(&requests);

        // Injected crash between ratchet-advance and receipt-issue: the
        // batch journaled every owner's advance, but no receipt reaches
        // the stream. This is exactly the window the write-ahead journal
        // exists for — recovery must resume past the journaled epochs.
        if self
            .injector
            .as_ref()
            .is_some_and(|i| i.crash_due(self.tick))
        {
            self.crashed = true;
            self.requests = requests;
            return Err(PipelineError {
                message: format!(
                    "tick {}: injected crash between ratchet-advance and receipt-issue",
                    self.tick
                ),
            });
        }

        // Degradation ladder for journal write failures, in request
        // order: retry with backoff, then skip the owner and count it,
        // then abort once the tick's skip budget is blown. A failed
        // advance never committed the chain, so a successful retry
        // re-derives the same epoch from the same request seed — the
        // recovered receipt is bit-identical to the one the fault
        // suppressed, keeping the stream digest on its fault-free value.
        let policy = self.cfg.fault_policy.clone();
        for (i, slot) in results.iter_mut().enumerate() {
            if !matches!(slot, Err(CloakError::Persistence(_))) {
                continue;
            }
            let request = &requests[i];
            for attempt in 0..policy.journal_retries {
                if policy.backoff_base_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(
                        policy.backoff_base_ms << attempt.min(16),
                    ));
                }
                health.journal_retries += 1;
                *slot = self.service.anonymize_seeded(
                    &request.owner,
                    request.segment,
                    request.profile.as_ref(),
                    request.seed,
                );
                if !matches!(slot, Err(CloakError::Persistence(_))) {
                    break;
                }
            }
            if matches!(slot, Err(CloakError::Persistence(_))) {
                health.journal_skips += 1;
            }
        }
        if health.journal_skips > policy.max_skipped_owners as u64 {
            self.requests = requests;
            return Err(PipelineError {
                message: format!(
                    "tick {}: {} owners skipped after journal failures (budget {})",
                    self.tick, health.journal_skips, policy.max_skipped_owners
                ),
            });
        }

        // Injected per-owner cloak failures: the receipt is dropped as
        // if the walk dead-ended — an availability event, counted in
        // both `failed` and the health rollup.
        if let Some(injector) = &self.injector {
            for slot in results.iter_mut() {
                if slot.is_ok() && injector.cloak_fault() {
                    health.injected_cloak_failures += 1;
                    *slot = Err(CloakError::CloakingFailed {
                        level: Level(0),
                        reason: StepFailure::NoCandidates,
                    });
                }
            }
        }

        let mut report = TickReport {
            tick: self.tick,
            clock: self.sim.clock(),
            snapshot_refreshed,
            issued: 0,
            failed: 0,
            verified: 0,
            digest: FNV_OFFSET,
            quality: QualitySummary::new(),
            lbs: QueryStats::new(),
            attack: None,
            health,
        };
        for (i, (request, result)) in requests.iter().zip(&results).enumerate() {
            let receipt = match result {
                Ok(r) => r,
                Err(_) => {
                    report.failed += 1;
                    continue;
                }
            };
            report.issued += 1;
            report.digest = fnv_fold(report.digest, request.owner.as_bytes());
            report.digest = fnv_fold(report.digest, &receipt.payload.encode());
            report.quality.record(&RegionQuality::measure(
                self.service.network(),
                &issuing,
                &self.profile,
                &receipt.outcome,
            ));
            if let Some(pois) = &self.pois {
                if (report.issued - 1) < self.cfg.lbs_probes {
                    // The LBS only ever sees the cloaked region.
                    let category = PoiCategory::ALL[i % PoiCategory::ALL.len()];
                    report.lbs.record(&nearest_query_with(
                        self.service.network(),
                        pois,
                        &receipt.payload.segments,
                        category,
                        &mut self.lbs_scratch,
                    ));
                }
            }
        }
        let mut verify_err = None;
        if self.cfg.verify {
            let (verified, err) = self.verify_tick(&requests, &results, &issuing);
            report.verified = verified;
            verify_err = err;
        }
        // The attack leg observes the receipts just issued (and the NRE
        // control grown from the same true segments). It reads public
        // information only: region, issuing snapshot, tick — the true
        // segment is passed solely for scoring.
        if let Some(leg) = self.attack.as_mut() {
            let net = self.service.network();
            let mut engine_tick = AttackSummary::new();
            let mut baseline_tick = AttackSummary::new();
            // Every observation this tick shares one issuing snapshot:
            // announce it once, together with the tracked population, so
            // each adversary prices the occupancy weighting per tick and
            // packs the whole population's movement-reachability masks
            // into one matrix OR-pass up front (each `observe` below then
            // reads its owner's precomputed row).
            leg.engine_adversary.begin_tick_population(
                &issuing,
                snapshot_refreshed,
                requests
                    .iter()
                    .take(leg.cfg.owners)
                    .map(|r| r.owner.as_str()),
            );
            if let Some(baseline_adversary) = leg.baseline_adversary.as_mut() {
                baseline_adversary.begin_tick_population(
                    &issuing,
                    snapshot_refreshed,
                    requests
                        .iter()
                        .take(leg.cfg.owners)
                        .map(|r| r.owner.as_str()),
                );
            }
            for (i, (request, result)) in requests.iter().zip(&results).enumerate() {
                if i >= leg.cfg.owners {
                    break;
                }
                let Ok(receipt) = result else { continue };
                let observe_start = std::time::Instant::now();
                let observation = leg.engine_adversary.observe(
                    net,
                    &request.owner,
                    Observation {
                        tick: self.tick,
                        region: &receipt.payload.segments,
                        snapshot: &issuing,
                        snapshot_fresh: snapshot_refreshed,
                    },
                    None,
                    Some(request.segment),
                );
                leg.engine_observe_time += observe_start.elapsed();
                engine_tick.record(&observation);
                leg.engine_summary.record(&observation);
                if leg.cfg.keep_records {
                    leg.records.push(AttackRecord {
                        scheme: leg.engine_label,
                        owner: request.owner.clone(),
                        observation,
                    });
                }
                if let Some(baseline_adversary) = leg.baseline_adversary.as_mut() {
                    let requirement = self.profile.top_requirement();
                    let seed = leg.baseline_seeds[i];
                    let mut rng = StdRng::seed_from_u64(seed);
                    match random_expansion_with(
                        net,
                        &issuing,
                        request.segment,
                        requirement,
                        &mut rng,
                        &mut leg.nre_scratch,
                    ) {
                        Ok(control) => {
                            let observe_start = std::time::Instant::now();
                            let observation = baseline_adversary.observe(
                                net,
                                &request.owner,
                                Observation {
                                    tick: self.tick,
                                    region: &control.segments,
                                    snapshot: &issuing,
                                    snapshot_fresh: snapshot_refreshed,
                                },
                                Some(ReplayProbe { requirement, seed }),
                                Some(request.segment),
                            );
                            leg.baseline_observe_time += observe_start.elapsed();
                            baseline_tick.record(&observation);
                            leg.baseline_summary.record(&observation);
                            if leg.cfg.keep_records {
                                leg.records.push(AttackRecord {
                                    scheme: "nre",
                                    owner: request.owner.clone(),
                                    observation,
                                });
                            }
                        }
                        Err(_) => leg.baseline_failures += 1,
                    }
                }
            }
            report.attack = Some(AttackTickSummary {
                engine: engine_tick,
                baseline: leg.baseline_adversary.is_some().then_some(baseline_tick),
            });
        }
        self.requests = requests;
        match verify_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Cumulative attack rollup against the engine's receipt stream
    /// (`None` when the attack leg is off).
    pub fn attack_summary(&self) -> Option<&AttackSummary> {
        self.attack.as_ref().map(|leg| &leg.engine_summary)
    }

    /// Cumulative attack rollup against the NRE control stream (`None`
    /// when the leg or the baseline control is off).
    pub fn baseline_attack_summary(&self) -> Option<&AttackSummary> {
        self.attack
            .as_ref()
            .filter(|leg| leg.baseline_adversary.is_some())
            .map(|leg| &leg.baseline_summary)
    }

    /// The full per-owner/per-tick attack log (empty when the leg is off
    /// or [`AttackConfig::keep_records`] was disabled).
    pub fn attack_records(&self) -> &[AttackRecord] {
        self.attack.as_ref().map_or(&[], |leg| &leg.records)
    }

    /// NRE control cloaks that failed to grow (availability events of
    /// the baseline, excluded from its privacy rollup).
    pub fn baseline_attack_failures(&self) -> usize {
        self.attack.as_ref().map_or(0, |leg| leg.baseline_failures)
    }

    /// Total wall time spent inside the engine adversary's `observe`
    /// calls (`None` when the attack leg is off). Divide by
    /// [`AttackSummary::observations`] for the per-receipt cost —
    /// `rcloak attack` prints exactly that, so index-layer wins show up
    /// in the CLI footer without criterion.
    pub fn attack_observe_time(&self) -> Option<std::time::Duration> {
        self.attack.as_ref().map(|leg| leg.engine_observe_time)
    }

    /// Total wall time inside the NRE adversary's `observe` calls,
    /// replay inversion included (`None` when the leg or the control
    /// is off).
    pub fn baseline_observe_time(&self) -> Option<std::time::Duration> {
        self.attack
            .as_ref()
            .filter(|leg| leg.baseline_adversary.is_some())
            .map(|leg| leg.baseline_observe_time)
    }

    /// Runs `ticks` ticks, collecting one report per tick.
    ///
    /// # Errors
    ///
    /// Stops at the first [`PipelineError`], as [`tick`] does.
    ///
    /// [`tick`]: ContinuousPipeline::tick
    pub fn run(&mut self, ticks: usize) -> Result<Vec<TickReport>, PipelineError> {
        (0..ticks).map(|_| self.tick()).collect()
    }

    /// The per-tick verification leg, owner-batched.
    ///
    /// Pass 1 walks the issued receipts in order, checking k-anonymity
    /// at issue time, region membership, and grant preservation, and
    /// collects each surviving receipt's `(payload, keys)` reduction
    /// job. Pass 2 then peels every collected job through
    /// [`Deanonymizer::reduce_batch_with`] — one shared
    /// [`CloakScratch`] for the whole tick — and checks exact
    /// reversibility. Per receipt this is the same check sequence as the
    /// former one-owner loop; the reported error is the one with the
    /// smallest receipt index on either pass.
    ///
    /// Returns `(verified, error)`: the number of receipts preceding the
    /// first failure that passed both passes, and the failure, if any.
    fn verify_tick(
        &mut self,
        requests: &[AnonymizeRequest],
        results: &[Result<crate::service::AnonymizeReceipt, CloakError>],
        issuing: &OccupancySnapshot,
    ) -> (usize, Option<PipelineError>) {
        let tick = self.tick;
        let fail = |owner: &str, what: &str| PipelineError {
            message: format!("tick {tick}: {owner}: {what}"),
        };

        // (receipt index, payload, the auditor's fetched keys).
        type ReduceJob<'a> = (usize, &'a Arc<CloakPayload>, Vec<(Level, Key256)>);
        let mut pass1_err = None;
        let mut jobs: Vec<ReduceJob<'_>> = Vec::new();
        for (i, (request, result)) in requests.iter().zip(results).enumerate() {
            let Ok(receipt) = result else { continue };
            let owner = &request.owner;

            // k-anonymity against the snapshot the receipt was issued
            // under.
            let users = issuing.users_in(receipt.payload.segments.iter().copied());
            let k = self.profile.top_requirement().k as u64;
            if users < k {
                pass1_err = Some(fail(
                    owner,
                    &format!("region covers {users} users < k={k} at issue time"),
                ));
                break;
            }
            if !receipt.payload.contains(request.segment) {
                pass1_err = Some(fail(owner, "region does not contain the owner's segment"));
                break;
            }

            // Grant preservation: the auditor is registered only at the
            // owner's first cloak — on every later tick its keys must
            // keep working across the re-anonymization.
            if !self.registered.contains(&i) {
                if !self
                    .service
                    .register_requester(owner, AUDITOR, TrustDegree(10), Level(0))
                {
                    pass1_err = Some(fail(
                        owner,
                        "owner record missing right after anonymization",
                    ));
                    break;
                }
                self.registered.insert(i);
            }
            match self.service.fetch_keys(owner, AUDITOR) {
                Ok(keys) => jobs.push((i, &receipt.payload, keys)),
                Err(e) => {
                    pass1_err = Some(fail(
                        owner,
                        &format!("grant lost across re-anonymization: {e}"),
                    ));
                    break;
                }
            }
        }

        // Exact reversibility through the normal key-fetch path, batched
        // over one shared scratch.
        let views = self.dean.reduce_batch_with(
            jobs.iter()
                .map(|(_, payload, keys)| (payload.as_ref(), keys.as_slice())),
            &mut self.verify_scratch,
        );
        let mut verified = 0;
        for ((i, _, _), view) in jobs.iter().zip(views) {
            let request = &requests[*i];
            match view {
                Ok(view) if view.segments == [request.segment] => verified += 1,
                Ok(view) => {
                    return (
                        verified,
                        Some(fail(
                            &request.owner,
                            &format!(
                                "deanonymized to {:?}, expected exactly [{}]",
                                view.segments, request.segment
                            ),
                        )),
                    );
                }
                Err(e) => {
                    return (
                        verified,
                        Some(fail(
                            &request.owner,
                            &format!("deanonymization failed: {e}"),
                        )),
                    );
                }
            }
        }
        (verified, pass1_err)
    }
}

impl std::fmt::Debug for ContinuousPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousPipeline")
            .field("tick", &self.tick)
            .field("tracked", &self.tracked.len())
            .field("engine", &self.service.engine().name())
            .finish()
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte run, chained from `state`.
pub(crate) fn fnv_fold(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// SplitMix-style mix of (base seed, tick, owner index) into a request
/// seed — collision-resistant enough that every request feeds
/// independent entropy into its owner's chain ratchet, and pure, so
/// the stream is reproducible.
pub(crate) fn mix_seed(base: u64, tick: u64, idx: u64) -> u64 {
    crate::service::splitmix64(
        base ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ idx.wrapping_mul(0xd1b5_4a32_d192_ed03),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineChoice;
    use roadnet::grid_city;

    fn pipeline(engine: EngineChoice, cfg: PipelineConfig) -> ContinuousPipeline {
        ContinuousPipeline::new(
            grid_city(7, 7, 100.0),
            SimConfig {
                cars: 200,
                seed: 11,
                ..Default::default()
            },
            AnonymizerConfig {
                engine,
                ..Default::default()
            },
            cfg,
        )
    }

    #[test]
    fn ticks_issue_and_verify_receipts() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 6,
                ..Default::default()
            },
        );
        let reports = p.run(4).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(p.ticks_run(), 4);
        assert_eq!(p.tracked_owner_count(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.tick, i as u64 + 1);
            assert_eq!(r.issued, 6);
            assert_eq!(r.failed, 0);
            assert_eq!(r.verified, 6);
            assert!(r.snapshot_refreshed, "cadence 1 refreshes every tick");
            assert!(r.quality.min_relative_anonymity() >= 1.0);
            assert_eq!(r.lbs.queries(), 4);
            assert!((r.clock - (i as f64 + 1.0) * 10.0).abs() < 1e-9);
        }
        // All owners stored, all granted to the auditor exactly once.
        assert_eq!(p.service().owner_count(), 6);
        assert_eq!(p.service().requester_grants(AUDITOR).len(), 6);
    }

    #[test]
    fn snapshot_cadence_skips_ticks() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 3,
                snapshot_cadence: 3,
                lbs_probes: 0,
                ..Default::default()
            },
        );
        let reports = p.run(6).unwrap();
        let refreshed: Vec<bool> = reports.iter().map(|r| r.snapshot_refreshed).collect();
        assert_eq!(refreshed, vec![false, false, true, false, false, true]);
        assert!(reports.iter().all(|r| r.lbs.queries() == 0));
    }

    #[test]
    fn receipt_stream_is_deterministic_across_parallelism() {
        let digests = |parallelism: usize| {
            let mut p = ContinuousPipeline::new(
                grid_city(7, 7, 100.0),
                SimConfig {
                    cars: 200,
                    seed: 11,
                    ..Default::default()
                },
                AnonymizerConfig {
                    batch_parallelism: parallelism,
                    ..Default::default()
                },
                PipelineConfig {
                    tracked_owners: 8,
                    ..Default::default()
                },
            );
            p.run(3)
                .unwrap()
                .iter()
                .map(|r| r.digest)
                .collect::<Vec<_>>()
        };
        let sequential = digests(1);
        let parallel = digests(4);
        assert_eq!(sequential, parallel);
        // Ticks differ from each other (cars moved, fresh seeds).
        assert_ne!(sequential[0], sequential[1]);
    }

    #[test]
    fn rple_pipeline_verifies_too() {
        let mut p = pipeline(
            EngineChoice::Rple { t_len: 10 },
            PipelineConfig {
                tracked_owners: 4,
                lbs_probes: 2,
                ..Default::default()
            },
        );
        let reports = p.run(3).unwrap();
        for r in &reports {
            assert_eq!(r.verified, r.issued, "issued receipts all verify");
            assert!(r.issued + r.failed == 4);
        }
        assert!(reports.iter().map(|r| r.issued).sum::<usize>() > 0);
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 2,
                ..Default::default()
            },
        );
        let report = p.tick().unwrap();
        let header_cols = TickReport::CSV_HEADER.split(',').count();
        assert_eq!(report.csv_row().split(',').count(), header_cols);
        assert!(report.csv_row().starts_with("1,"));
        assert!(format!("{p:?}").contains("ContinuousPipeline"));
    }

    #[test]
    fn attack_leg_reports_and_separates_engine_from_baseline() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 4,
                lbs_probes: 0,
                attack: Some(AttackConfig::default()),
                ..Default::default()
            },
        );
        let reports = p.run(6).unwrap();
        for r in &reports {
            let attack = r.attack.as_ref().expect("attack leg on");
            assert!(attack.engine.observations() > 0);
            let baseline = attack.baseline.as_ref().expect("baseline control on");
            assert!(
                baseline.observations() + p.baseline_attack_failures() as u64 > 0,
                "control ran"
            );
        }
        let engine = p.attack_summary().expect("engine rollup");
        assert_eq!(engine.observations(), 6 * 4);
        // The sound combined adversary never loses a keyed owner…
        assert_eq!(engine.soundness(), 1.0);
        // …and its posterior stays wide while the keyless deterministic
        // control collapses under replay.
        let baseline = p.baseline_attack_summary().expect("baseline rollup");
        assert!(
            engine.mean_entropy() > baseline.mean_entropy() + 1.0,
            "engine {:.2} bits vs baseline {:.2} bits",
            engine.mean_entropy(),
            baseline.mean_entropy()
        );
        assert!(
            baseline.guess_success_rate() > engine.guess_success_rate(),
            "baseline {:.2} vs engine {:.2}",
            baseline.guess_success_rate(),
            engine.guess_success_rate()
        );
        // Records cover both streams in CSV-exportable form.
        let records = p.attack_records();
        assert!(records.iter().any(|r| r.scheme == "rge"));
        assert!(records.iter().any(|r| r.scheme == "nre"));
        let header_cols = AttackRecord::CSV_HEADER.split(',').count();
        for record in records {
            assert_eq!(record.csv_row().split(',').count(), header_cols);
        }
    }

    #[test]
    fn attack_leg_does_not_perturb_the_receipt_stream() {
        let digests = |attack: Option<AttackConfig>| {
            let mut p = pipeline(
                EngineChoice::Rge,
                PipelineConfig {
                    tracked_owners: 5,
                    lbs_probes: 0,
                    attack,
                    ..Default::default()
                },
            );
            p.run(3)
                .unwrap()
                .iter()
                .map(|r| r.digest)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            digests(None),
            digests(Some(AttackConfig::default())),
            "the attack leg is purely observational"
        );
    }

    #[test]
    fn attack_leg_off_keeps_reports_clean() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 2,
                ..Default::default()
            },
        );
        let report = p.tick().unwrap();
        assert!(report.attack.is_none());
        assert!(p.attack_summary().is_none());
        assert!(p.baseline_attack_summary().is_none());
        assert!(p.attack_records().is_empty());
        assert_eq!(p.baseline_attack_failures(), 0);
    }

    #[test]
    fn fault_free_ticks_report_clean_health() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 3,
                lbs_probes: 0,
                ..Default::default()
            },
        );
        for r in p.run(3).unwrap() {
            assert!(
                r.health.is_clean(),
                "no plan, no degradation: {:?}",
                r.health
            );
        }
    }

    #[test]
    fn journal_fault_retries_recover_the_fault_free_digest() {
        let run = |fault: Option<FaultPlan>| {
            let mut p = pipeline(
                EngineChoice::Rge,
                PipelineConfig {
                    tracked_owners: 6,
                    lbs_probes: 0,
                    fault,
                    fault_policy: FaultPolicy {
                        journal_retries: 8,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            p.run(4).unwrap()
        };
        let clean = run(None);
        let faulty = run(Some(FaultPlan {
            seed: 9,
            journal_write_fail: 0.4,
            ..Default::default()
        }));
        let retries: u64 = faulty.iter().map(|r| r.health.journal_retries).sum();
        assert!(retries > 0, "p=0.4 over 24 requests injects failures");
        assert!(faulty.iter().all(|r| r.health.journal_skips == 0));
        // A recovered owner's chain never advanced on the failed write,
        // so the retry re-derives the same epoch and the receipt stream
        // is bit-identical to the fault-free run.
        assert_eq!(
            clean.iter().map(|r| r.digest).collect::<Vec<_>>(),
            faulty.iter().map(|r| r.digest).collect::<Vec<_>>(),
        );
        assert!(faulty
            .iter()
            .all(|r| r.failed == 0 && r.verified == r.issued));
    }

    #[test]
    fn exhausted_retries_skip_owners_and_blow_the_budget() {
        let build = |max_skipped_owners| {
            pipeline(
                EngineChoice::Rge,
                PipelineConfig {
                    tracked_owners: 4,
                    lbs_probes: 0,
                    fault: Some(FaultPlan {
                        journal_write_fail: 1.0,
                        ..Default::default()
                    }),
                    fault_policy: FaultPolicy {
                        journal_retries: 2,
                        max_skipped_owners,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
        };
        // A generous budget degrades to skip-and-count: the tick
        // completes with every owner skipped and nothing issued.
        let report = build(usize::MAX).tick().unwrap();
        assert_eq!(report.health.journal_skips, 4);
        assert_eq!(report.health.journal_retries, 8, "2 retries per owner");
        assert_eq!(report.failed, 4);
        assert_eq!(report.issued, 0);
        // A zero budget aborts the tick instead.
        let err = build(0).tick().unwrap_err();
        assert!(err.message.contains("owners skipped"), "{err}");
    }

    #[test]
    fn injected_crash_halts_until_rebuilt() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 3,
                lbs_probes: 0,
                fault: Some(FaultPlan {
                    crash_at_tick: Some(2),
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        assert!(p.tick().is_ok());
        let err = p.tick().unwrap_err();
        assert!(
            err.message
                .contains("injected crash between ratchet-advance and receipt-issue"),
            "{err}"
        );
        // The pipeline stays down: a crashed process serves nothing.
        let err = p.tick().unwrap_err();
        assert!(err.message.contains("rebuild over the surviving"), "{err}");
        assert_eq!(p.ticks_run(), 2);
    }

    #[test]
    fn snapshot_capture_faults_serve_the_stale_snapshot() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 3,
                lbs_probes: 0,
                fault: Some(FaultPlan {
                    snapshot_capture_fail: 1.0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        for r in p.run(3).unwrap() {
            // Every capture fails, so the construction-time snapshot
            // keeps serving — and every receipt still verifies against
            // the snapshot it was actually issued under.
            assert!(!r.snapshot_refreshed);
            assert_eq!(r.health.snapshot_faults, 1);
            assert_eq!(r.verified, r.issued);
        }
    }

    #[test]
    fn injected_cloak_failures_drop_receipts_and_are_counted() {
        let mut p = pipeline(
            EngineChoice::Rge,
            PipelineConfig {
                tracked_owners: 4,
                lbs_probes: 0,
                fault: Some(FaultPlan {
                    cloak_fail: 1.0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        let report = p.tick().unwrap();
        assert_eq!(report.issued, 0);
        assert_eq!(report.failed, 4);
        assert_eq!(report.health.injected_cloak_failures, 4);
    }

    #[test]
    fn mix_seed_spreads() {
        let mut seen = std::collections::HashSet::new();
        for tick in 0..20 {
            for idx in 0..20 {
                seen.insert(mix_seed(42, tick, idx));
            }
        }
        assert_eq!(seen.len(), 400, "no collisions over a small lattice");
    }
}
