//! Sharded pipelines: city-scale anonymization by road-network
//! partition.
//!
//! One [`ContinuousPipeline`] over a 100k-segment city serializes every
//! tracked owner through one service, one snapshot, and one
//! verification sweep. This module splits the map into N connected
//! partitions ([`Partition::grow`] — seeded BFS growth, quality
//! measured by [`PartitionQuality`]) and runs one anonymization
//! pipeline per partition over the owners currently driving inside it:
//!
//! * **per-shard services** — each shard owns an [`AnonymizerService`]
//!   over a [`RoadNetwork::share_index`] clone (one
//!   [`roadnet::GraphIndex`] serves every shard) and all shards share
//!   one [`ChainStore`], so crash recovery sees one continuous journal;
//! * **per-shard snapshots** — on the snapshot cadence each shard
//!   captures the global simulation *masked to its partition* and swaps
//!   it into its own service. A receipt is k-anonymous and reversible
//!   against the snapshot of the shard that issued it, and later swaps
//!   on any shard never retroactively invalidate it;
//! * **owner handoff at tick boundaries** — when a car crosses a
//!   partition boundary, its owner's live state (forward-secret chain,
//!   stored record with its captured grants) migrates through
//!   [`AnonymizerService::export_owner`] /
//!   [`AnonymizerService::import_owner`] before any request of the new
//!   tick is issued. The chain resumes at its exported epoch, so epochs
//!   stay strictly monotone across any number of migrations, and a
//!   requester registered before the move keeps fetching keys after it.
//!
//! With `shards <= 1`, [`ShardedPipeline`] *is* a [`ContinuousPipeline`]
//! — it delegates wholesale, so the receipt stream is byte-identical to
//! the unsharded pipeline (the digest-pinning suite covers that
//! configuration unchanged). The multi-shard configuration is a
//! different deployment: masked snapshots change occupancy weights near
//! partition borders, so its digests are its own — pinned against
//! themselves by the determinism test below, not against the
//! single-shard stream.

use crate::config::AnonymizerConfig;
use crate::deanonymizer::Deanonymizer;
use crate::pipeline::{
    fnv_fold, mix_seed, ContinuousPipeline, PipelineConfig, PipelineError, AUDITOR, FNV_OFFSET,
};
use crate::service::{AnonymizeRequest, AnonymizerService, Engine};
use cloak::{CloakScratch, PrivacyProfile, QualitySummary, RegionQuality};
use keystream::{ChainStore, JournalError, Level, MemStore, TrustDegree};
use mobisim::{CarId, OccupancySnapshot, SimConfig, Simulation};
use roadnet::{RoadNetwork, SegmentId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// A disjoint cover of a road network's segments by N connected parts.
///
/// Built by [`Partition::grow`]; consumed by [`ShardedPipeline`] to
/// route each owner to the shard owning the segment their car is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    /// `shard_of[s]` = owning shard of segment `s`.
    shard_of: Vec<u32>,
    /// Per-shard member lists, each sorted ascending.
    members: Vec<Vec<SegmentId>>,
}

impl Partition {
    /// Partitions `net` into `shards` parts by seeded balanced BFS
    /// growth: seed segments are picked farthest-point-first (the first
    /// by the seed, each next maximizing its hop distance to all
    /// previous), then the parts grow breadth-first in
    /// smallest-part-first order, so they stay connected and
    /// size-balanced. Segments unreachable from every seed (disconnected
    /// components) are flooded onto the currently smallest part
    /// component by component. Deterministic per `(net, shards, seed)`.
    ///
    /// `shards` is clamped to `[1, segment_count]`.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments.
    pub fn grow(net: &RoadNetwork, shards: usize, seed: u64) -> Partition {
        let n = net.segment_count();
        assert!(n > 0, "cannot partition an empty network");
        let shards = shards.clamp(1, n);
        let seeds = pick_seeds(net, shards, seed);

        let mut shard_of = vec![u32::MAX; n];
        let mut sizes = vec![0usize; shards];
        let mut frontiers: Vec<VecDeque<SegmentId>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        for (p, &s) in seeds.iter().enumerate() {
            shard_of[s.index()] = p as u32;
            sizes[p] += 1;
            frontiers[p].push_back(s);
        }
        // Balanced growth: each step, the smallest part with a live
        // frontier claims the unclaimed neighbors of its oldest frontier
        // segment. Every segment enters exactly one frontier once, so
        // the loop pops at most n times.
        while let Some(p) = (0..shards)
            .filter(|&p| !frontiers[p].is_empty())
            .min_by_key(|&p| (sizes[p], p))
        {
            let s = frontiers[p].pop_front().expect("frontier is non-empty");
            for &next in net.neighbor_segments_csr(s) {
                if shard_of[next.index()] == u32::MAX {
                    shard_of[next.index()] = p as u32;
                    sizes[p] += 1;
                    frontiers[p].push_back(next);
                }
            }
        }
        // Disconnected leftovers: flood each stray component onto the
        // smallest part so parts stay internally connected per component.
        let mut queue = VecDeque::new();
        for s in 0..n {
            if shard_of[s] != u32::MAX {
                continue;
            }
            let p = (0..shards)
                .min_by_key(|&p| (sizes[p], p))
                .expect("at least one shard");
            shard_of[s] = p as u32;
            sizes[p] += 1;
            queue.push_back(SegmentId(s as u32));
            while let Some(cur) = queue.pop_front() {
                for &next in net.neighbor_segments_csr(cur) {
                    if shard_of[next.index()] == u32::MAX {
                        shard_of[next.index()] = p as u32;
                        sizes[p] += 1;
                        queue.push_back(next);
                    }
                }
            }
        }

        let mut members: Vec<Vec<SegmentId>> = vec![Vec::new(); shards];
        for (s, &p) in shard_of.iter().enumerate() {
            members[p as usize].push(SegmentId(s as u32));
        }
        Partition {
            shards,
            shard_of,
            members,
        }
    }

    /// Number of parts.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The part owning segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the partitioned network.
    pub fn shard_of(&self, s: SegmentId) -> usize {
        self.shard_of[s.index()] as usize
    }

    /// The segments of part `p`, sorted ascending.
    pub fn members(&self, p: usize) -> &[SegmentId] {
        &self.members[p]
    }

    /// Measures the partition against the network it was grown on.
    pub fn quality(&self, net: &RoadNetwork) -> PartitionQuality {
        let n = net.segment_count();
        let ideal = n as f64 / self.shards as f64;
        let largest = self.members.iter().map(Vec::len).max().unwrap_or(0);
        let mut edges = 0u64;
        let mut cut = 0u64;
        for s in net.segment_ids() {
            for &t in net.neighbor_segments_csr(s) {
                if t.0 <= s.0 {
                    continue; // count each adjacency pair once
                }
                edges += 1;
                if self.shard_of[s.index()] != self.shard_of[t.index()] {
                    cut += 1;
                }
            }
        }
        let connected_parts = (0..self.shards)
            .filter(|&p| self.part_is_connected(net, p))
            .count();
        PartitionQuality {
            shards: self.shards,
            balance: if ideal > 0.0 {
                largest as f64 / ideal
            } else {
                1.0
            },
            cut_fraction: if edges > 0 {
                cut as f64 / edges as f64
            } else {
                0.0
            },
            connected_parts,
        }
    }

    /// Whether part `p` induces one connected subgraph per network
    /// component it touches. BFS growth guarantees this for connected
    /// networks; the leftover flood keeps it per stray component.
    fn part_is_connected(&self, net: &RoadNetwork, p: usize) -> bool {
        let members = &self.members[p];
        let Some(&start) = members.first() else {
            return true;
        };
        let mut seen: HashSet<SegmentId> = HashSet::new();
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(s) = queue.pop_front() {
            for &t in net.neighbor_segments_csr(s) {
                if self.shard_of[t.index()] as usize == p && seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen.len() == members.len()
    }
}

/// Farthest-point seed selection on hop distance: deterministic, spreads
/// the growth fronts so parts meet near the map's natural midlines.
fn pick_seeds(net: &RoadNetwork, shards: usize, seed: u64) -> Vec<SegmentId> {
    let n = net.segment_count();
    let first = SegmentId((crate::service::splitmix64(seed) % n as u64) as u32);
    let mut seeds = vec![first];
    // min hop distance from each segment to any chosen seed.
    let mut best = vec![u32::MAX; n];
    let mut frontier = Vec::new();
    let mut next = Vec::new();
    while seeds.len() < shards {
        // BFS from the newest seed, relaxing `best`.
        let newest = *seeds.last().expect("seeds is non-empty");
        frontier.clear();
        frontier.push(newest);
        best[newest.index()] = 0;
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            next.clear();
            for &s in &frontier {
                for &t in net.neighbor_segments_csr(s) {
                    if best[t.index()] > depth {
                        best[t.index()] = depth;
                        next.push(t);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        // Farthest unclaimed segment, first-max-wins; unreachable
        // segments (u32::MAX) win outright, seeding stray components.
        let far = (0..n)
            .max_by_key(|&s| (best[s], usize::MAX - s))
            .expect("network has segments");
        if best[far] == 0 {
            // Fewer segments than shards left to distinguish: reuse is
            // impossible because shards <= n, so only a fully-claimed
            // map lands here; stop early and let growth rebalance.
            break;
        }
        seeds.push(SegmentId(far as u32));
    }
    seeds
}

/// Measured quality of a [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub shards: usize,
    /// Largest part size over the ideal `segments / shards` (1.0 is a
    /// perfect split; BFS growth typically stays under ~1.5).
    pub balance: f64,
    /// Fraction of segment-adjacency pairs crossing a part boundary —
    /// the handoff pressure: every tracked car crossing a cut edge
    /// migrates its owner.
    pub cut_fraction: f64,
    /// Parts whose member set induces a connected subgraph.
    pub connected_parts: usize,
}

impl std::fmt::Display for PartitionQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shards, balance {:.2}, cut {:.1}%, {} connected",
            self.shards,
            self.balance,
            self.cut_fraction * 100.0,
            self.connected_parts,
        )
    }
}

/// Per-tick metrics of a [`ShardedPipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Simulation clock after this tick, in seconds.
    pub clock: f64,
    /// Whether this tick recaptured and swapped the per-shard snapshots.
    pub snapshot_refreshed: bool,
    /// Receipts issued this tick, over all shards.
    pub issued: usize,
    /// Requests that failed (dead-ended walks after retries).
    pub failed: usize,
    /// Receipts that passed the full invariant check against their
    /// issuing shard's snapshot (equals `issued` when verification is
    /// on).
    pub verified: usize,
    /// Owners migrated across a partition boundary at this tick's
    /// boundary, before any request was issued.
    pub handoffs: usize,
    /// Combined digest: the per-shard receipt-stream digests folded in
    /// shard order. For a single-shard pipeline this is exactly the
    /// [`crate::TickReport::digest`] of the underlying
    /// [`ContinuousPipeline`].
    pub digest: u64,
    /// Order-sensitive FNV digest of each shard's receipt stream.
    pub shard_digests: Vec<u64>,
    /// Region-quality rollup over every shard's receipts, measured
    /// against the snapshot each was issued under.
    pub quality: QualitySummary,
}

impl ShardTickReport {
    /// CSV header matching [`csv_row`](Self::csv_row).
    pub const CSV_HEADER: &'static str =
        "tick,clock,snapshot,issued,failed,verified,handoffs,digest,mean_region_segments";

    /// One CSV row of the per-tick metrics.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.1},{},{},{},{},{},{:016x},{:.2}",
            self.tick,
            self.clock,
            u8::from(self.snapshot_refreshed),
            self.issued,
            self.failed,
            self.verified,
            self.handoffs,
            self.digest,
            self.quality.mean_segments(),
        )
    }
}

/// One tracked owner of the sharded pipeline.
struct TrackedOwner {
    car: CarId,
    owner: String,
    /// Shard currently holding the owner's chain and record.
    shard: usize,
    /// The car's segment as of the current tick boundary.
    segment: SegmentId,
}

/// One partition's slice of the system.
struct ShardState {
    service: Arc<AnonymizerService>,
    dean: Deanonymizer,
    /// Request buffer reused across ticks (indices into `tracked`
    /// rebuilt per tick, owner strings cloned per tick).
    requests: Vec<AnonymizeRequest>,
    /// `tracked` indices behind `requests`, same order.
    request_idx: Vec<usize>,
}

/// The multi-shard engine behind [`ShardedPipeline`].
struct MultiShard {
    sim: Simulation,
    partition: Partition,
    cfg: PipelineConfig,
    profile: PrivacyProfile,
    shards: Vec<ShardState>,
    tracked: Vec<TrackedOwner>,
    /// Owners whose auditor grant is already registered (global — the
    /// grant migrates with the record).
    registered: HashSet<usize>,
    /// Full-map occupancy buffer reused every capture.
    counts: Vec<u32>,
    verify_scratch: CloakScratch,
    handoffs_total: u64,
    tick: u64,
}

enum Inner {
    /// `shards <= 1`: the unsharded pipeline, byte-identical receipts.
    Single(Box<ContinuousPipeline>),
    Multi(Box<MultiShard>),
}

/// N anonymization pipelines over one city, one per map partition. See
/// the module docs for the sharding model; with `shards <= 1` this is a
/// transparent wrapper over [`ContinuousPipeline`].
pub struct ShardedPipeline {
    inner: Inner,
}

impl ShardedPipeline {
    /// Builds the sharded pipeline with an in-memory chain store shared
    /// by every shard.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments.
    pub fn new(
        net: RoadNetwork,
        sim_cfg: SimConfig,
        anon_cfg: AnonymizerConfig,
        cfg: PipelineConfig,
        shards: usize,
    ) -> Self {
        Self::with_store(
            net,
            sim_cfg,
            anon_cfg,
            cfg,
            shards,
            Arc::new(MemStore::new()),
        )
        .expect("an empty MemStore never fails to load")
    }

    /// Builds the sharded pipeline over an explicit [`ChainStore`]. All
    /// shards journal through the one store, keyed by owner, so a
    /// migrating owner's chain stays one continuous journal entry and
    /// recovery after a crash resumes it at its latest epoch regardless
    /// of which shard last ratcheted it.
    ///
    /// With `shards <= 1` this delegates to
    /// [`ContinuousPipeline::with_store`]; the multi-shard path ignores
    /// the LBS, attack, and fault legs of `cfg` (those stay single-shard
    /// instruments).
    ///
    /// # Errors
    ///
    /// Returns the [`JournalError`] if recovering the store's journaled
    /// chains fails.
    ///
    /// # Panics
    ///
    /// Panics if the network has no segments.
    pub fn with_store(
        net: RoadNetwork,
        sim_cfg: SimConfig,
        anon_cfg: AnonymizerConfig,
        cfg: PipelineConfig,
        shards: usize,
        store: Arc<dyn ChainStore>,
    ) -> Result<Self, JournalError> {
        if shards <= 1 {
            let single = ContinuousPipeline::with_store(net, sim_cfg, anon_cfg, cfg, store)?;
            return Ok(ShardedPipeline {
                inner: Inner::Single(Box::new(single)),
            });
        }
        let partition = Partition::grow(&net, shards, cfg.seed ^ 0x5aa5_c17e);
        let shards = partition.shards();
        // Build the graph index once; every per-shard service and the
        // simulation share it through `share_index`.
        net.graph_index();
        let sim = Simulation::new(net.share_index(), sim_cfg);
        let mut shard_states = Vec::with_capacity(shards);
        for _ in 0..shards {
            let service = Arc::new(AnonymizerService::with_store(
                net.share_index(),
                anon_cfg.clone(),
                Arc::clone(&store),
            )?);
            let dean = Deanonymizer::new(
                service.network_arc(),
                Engine::build(service.network(), service.config().engine),
            );
            shard_states.push(ShardState {
                service,
                dean,
                requests: Vec::new(),
                request_idx: Vec::new(),
            });
        }
        let profile = anon_cfg.default_profile.clone();
        let tracked: Vec<TrackedOwner> = (0..cfg.tracked_owners.min(sim.cars().len()))
            .map(|i| {
                let car = CarId(i as u32);
                let segment = sim
                    .car_segment(car)
                    .expect("tracked cars exist for the simulation's lifetime");
                TrackedOwner {
                    car,
                    owner: format!("car-{i}"),
                    shard: partition.shard_of(segment),
                    segment,
                }
            })
            .collect();
        let mut multi = MultiShard {
            sim,
            partition,
            cfg,
            profile,
            shards: shard_states,
            tracked,
            registered: HashSet::new(),
            counts: Vec::new(),
            verify_scratch: CloakScratch::new(),
            handoffs_total: 0,
            tick: 0,
        };
        multi.refresh_snapshots();
        Ok(ShardedPipeline {
            inner: Inner::Multi(Box::new(multi)),
        })
    }

    fn shard_states(&self) -> &[ShardState] {
        match &self.inner {
            Inner::Single(_) => &[],
            Inner::Multi(m) => &m.shards,
        }
    }

    /// Number of shards (1 for the delegating single-shard form).
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Inner::Single(_) => 1,
            Inner::Multi(m) => m.shards.len(),
        }
    }

    /// The map partition, `None` for the single-shard form (which has
    /// none).
    pub fn partition(&self) -> Option<&Partition> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Multi(m) => Some(&m.partition),
        }
    }

    /// Ticks run so far.
    pub fn ticks_run(&self) -> u64 {
        match &self.inner {
            Inner::Single(p) => p.ticks_run(),
            Inner::Multi(m) => m.tick,
        }
    }

    /// Owners migrated across partition boundaries so far.
    pub fn handoffs_total(&self) -> u64 {
        match &self.inner {
            Inner::Single(_) => 0,
            Inner::Multi(m) => m.handoffs_total,
        }
    }

    /// The shard currently holding `owner`, `None` when untracked (or
    /// for the single-shard form, where owners never move).
    pub fn owner_shard(&self, owner: &str) -> Option<usize> {
        match &self.inner {
            Inner::Single(_) => None,
            Inner::Multi(m) => m.tracked.iter().find(|t| t.owner == owner).map(|t| t.shard),
        }
    }

    /// The owner's current chain epoch, looked up on whichever service
    /// holds the owner.
    pub fn owner_epoch(&self, owner: &str) -> Option<u64> {
        match &self.inner {
            Inner::Single(p) => p.service().owner_epoch(owner),
            Inner::Multi(_) => self
                .shard_states()
                .iter()
                .find_map(|s| s.service.owner_epoch(owner)),
        }
    }

    /// Every shard's service (one element for the single-shard form).
    pub fn services(&self) -> Vec<Arc<AnonymizerService>> {
        match &self.inner {
            Inner::Single(p) => vec![p.service()],
            Inner::Multi(m) => m.shards.iter().map(|s| Arc::clone(&s.service)).collect(),
        }
    }

    /// Advances one tick on every shard: step the global traffic once,
    /// migrate boundary-crossing owners, refresh the per-shard masked
    /// snapshots on cadence, issue each shard's batch, and verify every
    /// receipt against its issuing shard's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any issued receipt violates
    /// reversibility, k-anonymity at issue time, or grant preservation.
    pub fn tick(&mut self) -> Result<ShardTickReport, PipelineError> {
        match &mut self.inner {
            Inner::Single(p) => {
                let report = p.tick()?;
                Ok(ShardTickReport {
                    tick: report.tick,
                    clock: report.clock,
                    snapshot_refreshed: report.snapshot_refreshed,
                    issued: report.issued,
                    failed: report.failed,
                    verified: report.verified,
                    handoffs: 0,
                    digest: report.digest,
                    shard_digests: vec![report.digest],
                    quality: report.quality,
                })
            }
            Inner::Multi(m) => m.tick(),
        }
    }

    /// Runs `ticks` ticks, collecting one report per tick.
    ///
    /// # Errors
    ///
    /// Stops at the first [`PipelineError`], as [`tick`](Self::tick)
    /// does.
    pub fn run(&mut self, ticks: usize) -> Result<Vec<ShardTickReport>, PipelineError> {
        (0..ticks).map(|_| self.tick()).collect()
    }
}

impl std::fmt::Debug for ShardedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPipeline")
            .field("shards", &self.shard_count())
            .field("ticks", &self.ticks_run())
            .finish()
    }
}

impl MultiShard {
    /// Captures the simulation once and swaps each shard's service to a
    /// fresh snapshot masked to its partition: occupancy outside the
    /// shard is invisible to it, so capture-and-swap cost scales with
    /// the partition, not the city.
    fn refresh_snapshots(&mut self) {
        self.sim.occupancy_into(&mut self.counts);
        for (p, shard) in self.shards.iter().enumerate() {
            let masked: Vec<u32> = self
                .counts
                .iter()
                .enumerate()
                .map(|(s, &c)| {
                    if self.partition.shard_of(SegmentId(s as u32)) == p {
                        c
                    } else {
                        0
                    }
                })
                .collect();
            shard
                .service
                .swap_snapshot(OccupancySnapshot::from_counts(masked));
        }
    }

    /// Migrates every owner whose car crossed a partition boundary:
    /// chain and record leave the old shard's service and land on the
    /// new one before any request of this tick is issued. Returns the
    /// number of migrations.
    fn migrate_owners(&mut self) -> usize {
        let mut handoffs = 0;
        for t in self.tracked.iter_mut() {
            t.segment = self
                .sim
                .car_segment(t.car)
                .expect("tracked cars exist for the simulation's lifetime");
            let dest = self.partition.shard_of(t.segment);
            if dest != t.shard {
                if let Some(handoff) = self.shards[t.shard].service.export_owner(&t.owner) {
                    self.shards[dest].service.import_owner(handoff);
                }
                t.shard = dest;
                handoffs += 1;
            }
        }
        self.handoffs_total += handoffs as u64;
        handoffs
    }

    fn tick(&mut self) -> Result<ShardTickReport, PipelineError> {
        self.tick += 1;
        self.sim.step(self.cfg.dt);
        let handoffs = self.migrate_owners();
        let cadence = self.cfg.snapshot_cadence.max(1) as u64;
        let snapshot_refreshed = self.tick.is_multiple_of(cadence);
        if snapshot_refreshed {
            self.refresh_snapshots();
        }

        // Route each owner to its shard's batch, preserving global owner
        // order inside every shard so per-shard streams are
        // deterministic. Request seeds mix the *global* owner index:
        // migrating never changes an owner's seed sequence.
        for shard in &mut self.shards {
            shard.requests.clear();
            shard.request_idx.clear();
        }
        for (i, t) in self.tracked.iter().enumerate() {
            let shard = &mut self.shards[t.shard];
            shard.requests.push(AnonymizeRequest::new(
                t.owner.clone(),
                t.segment,
                mix_seed(self.cfg.seed, self.tick, i as u64),
            ));
            shard.request_idx.push(i);
        }

        let mut report = ShardTickReport {
            tick: self.tick,
            clock: self.sim.clock(),
            snapshot_refreshed,
            issued: 0,
            failed: 0,
            verified: 0,
            handoffs,
            digest: FNV_OFFSET,
            shard_digests: Vec::with_capacity(self.shards.len()),
            quality: QualitySummary::new(),
        };
        let mut first_err: Option<PipelineError> = None;
        for p in 0..self.shards.len() {
            let requests = std::mem::take(&mut self.shards[p].requests);
            let shard = &self.shards[p];
            let issuing = shard.service.snapshot();
            let results = shard.service.anonymize_batch(&requests);
            let mut digest = FNV_OFFSET;
            for (j, (request, result)) in requests.iter().zip(&results).enumerate() {
                let Ok(receipt) = result else {
                    report.failed += 1;
                    continue;
                };
                report.issued += 1;
                digest = fnv_fold(digest, request.owner.as_bytes());
                digest = fnv_fold(digest, &receipt.payload.encode());
                report.quality.record(&RegionQuality::measure(
                    shard.service.network(),
                    &issuing,
                    &self.profile,
                    &receipt.outcome,
                ));
                if self.cfg.verify && first_err.is_none() {
                    let owner_idx = shard.request_idx[j];
                    match verify_receipt(
                        shard,
                        &issuing,
                        &self.profile,
                        request,
                        receipt,
                        self.tick,
                        self.registered.contains(&owner_idx),
                        &mut self.verify_scratch,
                    ) {
                        Ok(()) => {
                            report.verified += 1;
                            self.registered.insert(owner_idx);
                        }
                        Err(e) => first_err = Some(e),
                    }
                }
            }
            report.shard_digests.push(digest);
            report.digest = fnv_fold(report.digest, &digest.to_be_bytes());
            self.shards[p].requests = requests;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// One receipt's invariant sweep against its issuing shard: k-anonymity
/// on the shard snapshot, region membership, grant preservation through
/// the normal key-fetch path, and exact reversibility.
#[allow(clippy::too_many_arguments)]
fn verify_receipt(
    shard: &ShardState,
    issuing: &OccupancySnapshot,
    profile: &PrivacyProfile,
    request: &AnonymizeRequest,
    receipt: &crate::service::AnonymizeReceipt,
    tick: u64,
    registered: bool,
    scratch: &mut CloakScratch,
) -> Result<(), PipelineError> {
    let owner = &request.owner;
    let fail = |what: &str| PipelineError {
        message: format!("tick {tick}: {owner}: {what}"),
    };
    let users = issuing.users_in(receipt.payload.segments.iter().copied());
    let k = profile.top_requirement().k as u64;
    if users < k {
        return Err(fail(&format!(
            "region covers {users} users < k={k} on the issuing shard snapshot"
        )));
    }
    if !receipt.payload.contains(request.segment) {
        return Err(fail("region does not contain the owner's segment"));
    }
    if !registered
        && !shard
            .service
            .register_requester(owner, AUDITOR, TrustDegree(10), Level(0))
    {
        return Err(fail("owner record missing right after anonymization"));
    }
    let keys = shard
        .service
        .fetch_keys(owner, AUDITOR)
        .map_err(|e| fail(&format!("grant lost across re-anonymization: {e}")))?;
    let view = shard
        .dean
        .reduce_with(&receipt.payload, &keys, scratch)
        .map_err(|e| fail(&format!("deanonymization failed: {e}")))?;
    if view.segments != [request.segment] {
        return Err(fail(&format!(
            "deanonymized to {:?}, expected exactly [{}]",
            view.segments, request.segment
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{city_map, grid_city};

    #[test]
    fn partition_covers_connects_and_balances() {
        let net = city_map(3, 2000);
        for shards in [2usize, 4, 8] {
            let part = Partition::grow(&net, shards, 0xbeef);
            assert_eq!(part.shards(), shards);
            let mut covered = 0usize;
            for p in 0..shards {
                covered += part.members(p).len();
                for &s in part.members(p) {
                    assert_eq!(part.shard_of(s), p);
                }
            }
            assert_eq!(covered, net.segment_count(), "parts are a disjoint cover");
            let quality = part.quality(&net);
            assert_eq!(
                quality.connected_parts, shards,
                "BFS growth stays connected"
            );
            assert!(
                quality.balance < 1.8,
                "{shards} shards: balance {:.2}",
                quality.balance
            );
            assert!(
                quality.cut_fraction < 0.25,
                "{shards} shards: cut {:.2}",
                quality.cut_fraction
            );
            assert!(format!("{quality}").contains("shards"));
        }
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let net = city_map(9, 1200);
        let a = Partition::grow(&net, 4, 7);
        let b = Partition::grow(&net, 4, 7);
        assert_eq!(a, b);
        let c = Partition::grow(&net, 4, 8);
        assert_ne!(a, c, "a different seed grows a different partition");
    }

    fn sharded(shards: usize, cfg: PipelineConfig) -> ShardedPipeline {
        ShardedPipeline::new(
            grid_city(8, 8, 100.0),
            SimConfig {
                cars: 400,
                seed: 23,
                ..Default::default()
            },
            AnonymizerConfig::default(),
            cfg,
            shards,
        )
    }

    #[test]
    fn sharded_ticks_issue_verify_and_hand_off() {
        let mut p = sharded(
            3,
            PipelineConfig {
                tracked_owners: 12,
                lbs_probes: 0,
                ..Default::default()
            },
        );
        assert_eq!(p.shard_count(), 3);
        let quality = p
            .partition()
            .expect("multi-shard")
            .quality(p.services()[0].network());
        assert_eq!(quality.connected_parts, 3);
        let reports = p.run(8).unwrap();
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.tick, i as u64 + 1);
            assert_eq!(r.issued + r.failed, 12);
            assert_eq!(r.verified, r.issued, "issued receipts all verify");
            assert_eq!(r.shard_digests.len(), 3);
        }
        // Owners are spread over the services, none lost, none doubled.
        let owners: usize = p.services().iter().map(|s| s.owner_count()).sum();
        assert_eq!(owners, 12, "each owner's record lives on exactly one shard");
        assert!(
            p.handoffs_total() > 0,
            "8 ticks of driving crosses a partition boundary"
        );
        assert_eq!(p.ticks_run(), 8);
    }

    #[test]
    fn single_shard_delegates_to_the_continuous_pipeline() {
        // Byte-identical receipts: the single-shard form *is* the
        // unsharded pipeline, digest for digest.
        let cfg = PipelineConfig {
            tracked_owners: 6,
            ..Default::default()
        };
        let mut sharded = sharded(1, cfg.clone());
        let mut plain = ContinuousPipeline::new(
            grid_city(8, 8, 100.0),
            SimConfig {
                cars: 400,
                seed: 23,
                ..Default::default()
            },
            AnonymizerConfig::default(),
            cfg,
        );
        let a = sharded.run(4).unwrap();
        let b = plain.run(4).unwrap();
        assert_eq!(a.len(), b.len());
        for (s, p) in a.iter().zip(&b) {
            assert_eq!(s.digest, p.digest, "tick {}", s.tick);
            assert_eq!(s.shard_digests, vec![p.digest]);
            assert_eq!(s.issued, p.issued);
            assert_eq!(s.verified, p.verified);
            assert_eq!(s.handoffs, 0);
        }
        assert_eq!(sharded.shard_count(), 1);
        assert!(sharded.partition().is_none());
        assert_eq!(sharded.handoffs_total(), 0);
    }

    #[test]
    fn handoff_keeps_epochs_monotone_and_grants_valid() {
        let mut p = sharded(
            4,
            PipelineConfig {
                tracked_owners: 10,
                ..Default::default()
            },
        );
        let owners: Vec<String> = (0..10).map(|i| format!("car-{i}")).collect();
        // First tick issues everyone's first receipt; then grant an
        // external requester on every owner, on whichever shard
        // currently holds it.
        p.tick().unwrap();
        for owner in &owners {
            let shard = p.owner_shard(owner).expect("tracked owner");
            assert!(p.services()[shard].register_requester(
                owner,
                "observer",
                TrustDegree(10),
                Level(0)
            ));
        }
        let mut last_epoch: Vec<u64> = owners
            .iter()
            .map(|o| p.owner_epoch(o).expect("anonymized on tick 1"))
            .collect();
        let mut last_shard: Vec<usize> = owners.iter().map(|o| p.owner_shard(o).unwrap()).collect();
        let mut migrated_after_grant = 0usize;
        for _ in 0..10 {
            let report = p.tick().unwrap();
            assert_eq!(report.verified, report.issued);
            for (i, owner) in owners.iter().enumerate() {
                let epoch = p.owner_epoch(owner).expect("chain survives migration");
                assert!(
                    epoch > last_epoch[i],
                    "{owner}: epoch {epoch} did not advance past {} across \
                     a tick (a genesis reset would restart at 0)",
                    last_epoch[i]
                );
                last_epoch[i] = epoch;
                let shard = p.owner_shard(owner).unwrap();
                if shard != last_shard[i] {
                    migrated_after_grant += 1;
                    last_shard[i] = shard;
                }
                // The pre-migration grant keeps working on whichever
                // shard holds the owner now — and only there.
                for (s, service) in p.services().iter().enumerate() {
                    let fetched = service.fetch_keys(owner, "observer");
                    if s == shard {
                        assert!(
                            !fetched.unwrap().is_empty(),
                            "{owner}: grant lost after landing on shard {s}"
                        );
                    } else {
                        assert!(
                            fetched.is_err(),
                            "{owner}: stale state left behind on shard {s}"
                        );
                    }
                }
            }
        }
        assert!(
            migrated_after_grant > 0,
            "10 ticks of driving never crossed a partition boundary"
        );
    }

    #[test]
    fn sharded_streams_are_deterministic() {
        let run = || {
            sharded(
                4,
                PipelineConfig {
                    tracked_owners: 10,
                    lbs_probes: 0,
                    ..Default::default()
                },
            )
            .run(5)
            .unwrap()
            .iter()
            .map(|r| (r.digest, r.shard_digests.clone(), r.handoffs))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same config, same sharded stream");
    }
}
