//! The trusted Anonymizer service.
//!
//! "In the multi-level reversible location privacy framework, a trusted
//! anonymizer obtains the raw location information from the mobile clients
//! with the user-defined profile." The service anonymizes owner locations,
//! stores each owner's keys and access-control profile locally ("managed
//! locally by the 'Anonymizer'"), and hands out keys to requesters
//! according to their trust degree.

use crate::config::{AnonymizerConfig, EngineChoice};
use cloak::{
    anonymize_with_retry, AnonymizationOutcome, CloakError, CloakPayload, PrivacyProfile,
    ReversibleEngine, RgeEngine, RpleEngine,
};
use keystream::{
    AccessControlProfile, AccessError, Key256, KeyManager, Level, TrustDegree,
};
use mobisim::OccupancySnapshot;
use rand::Rng;
use roadnet::{RoadNetwork, SegmentId};
use std::collections::HashMap;
use std::sync::Arc;

/// A built engine, either variant.
pub enum Engine {
    /// Reversible Global Expansion.
    Rge(RgeEngine),
    /// Reversible Pre-assignment-based Local Expansion.
    Rple(RpleEngine),
}

impl Engine {
    /// Builds the engine selected by `choice` for `net`.
    pub fn build(net: &RoadNetwork, choice: EngineChoice) -> Self {
        match choice {
            EngineChoice::Rge => Engine::Rge(RgeEngine::new()),
            EngineChoice::Rple { t_len } => Engine::Rple(RpleEngine::build(net, t_len)),
        }
    }

    /// The engine as a trait object.
    pub fn as_dyn(&self) -> &dyn ReversibleEngine {
        match self {
            Engine::Rge(e) => e,
            Engine::Rple(e) => e,
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Engine::{}", self.as_dyn().name())
    }
}

/// Record the anonymizer keeps per published cloak.
#[derive(Debug, Clone)]
pub struct OwnerRecord {
    /// The owner identity.
    pub owner: String,
    /// The published payload.
    pub payload: CloakPayload,
    /// The owner's per-level keys.
    pub keys: KeyManager,
    /// The owner's access-control profile.
    pub access: AccessControlProfile,
}

/// The trusted anonymization service.
///
/// ```
/// use anonymizer::{AnonymizerConfig, AnonymizerService};
/// use mobisim::OccupancySnapshot;
/// use roadnet::{grid_city, SegmentId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = grid_city(6, 6, 100.0);
/// let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
/// let mut service = AnonymizerService::new(net, AnonymizerConfig::default());
/// service.update_snapshot(snapshot);
/// let receipt = service.anonymize_owner("alice", SegmentId(17), None, &mut rand::thread_rng())?;
/// assert!(receipt.payload.region_size() >= 20);
/// # Ok(())
/// # }
/// ```
pub struct AnonymizerService {
    net: Arc<RoadNetwork>,
    engine: Engine,
    config: AnonymizerConfig,
    snapshot: OccupancySnapshot,
    records: HashMap<String, OwnerRecord>,
}

/// What the owner gets back from an anonymization: the payload to upload
/// plus run accounting.
#[derive(Debug, Clone)]
pub struct AnonymizeReceipt {
    /// The public payload.
    pub payload: CloakPayload,
    /// Attempts needed (dead-ended walks retried under fresh nonces).
    pub attempts: u32,
    /// The full outcome (chain and per-level stats) for inspection.
    pub outcome: AnonymizationOutcome,
}

impl AnonymizerService {
    /// Creates the service over a road network.
    pub fn new(net: RoadNetwork, config: AnonymizerConfig) -> Self {
        let net = Arc::new(net);
        let engine = Engine::build(&net, config.engine);
        let segment_count = net.segment_count();
        AnonymizerService {
            net,
            engine,
            config,
            snapshot: OccupancySnapshot::uniform(segment_count, 0),
            records: HashMap::new(),
        }
    }

    /// The network the service operates on.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// A shared handle to the network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// The engine in use.
    pub fn engine(&self) -> &dyn ReversibleEngine {
        self.engine.as_dyn()
    }

    /// The service configuration.
    pub fn config(&self) -> &AnonymizerConfig {
        &self.config
    }

    /// Installs a fresh traffic snapshot (users per segment).
    pub fn update_snapshot(&mut self, snapshot: OccupancySnapshot) {
        self.snapshot = snapshot;
    }

    /// Anonymizes `owner`'s location with `profile` (or the default
    /// profile), auto-generating keys — the GUI's 'Auto key generation'.
    /// Stores the owner record for later key fetches.
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] when the requirement cannot be met.
    pub fn anonymize_owner<R: Rng + ?Sized>(
        &mut self,
        owner: &str,
        user_segment: SegmentId,
        profile: Option<PrivacyProfile>,
        rng: &mut R,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let profile = profile.unwrap_or_else(|| self.config.default_profile.clone());
        let keys = KeyManager::generate(profile.level_count(), rng);
        let key_vec: Vec<Key256> = keys.iter().map(|(_, k)| k).collect();
        let nonce: u64 = rng.gen();
        let (outcome, attempts) = anonymize_with_retry(
            &self.net,
            &self.snapshot,
            user_segment,
            &profile,
            &key_vec,
            nonce,
            self.engine.as_dyn(),
            self.config.max_attempts,
        )?;
        let record = OwnerRecord {
            owner: owner.to_string(),
            payload: outcome.payload.clone(),
            keys,
            access: AccessControlProfile::new(),
        };
        self.records.insert(owner.to_string(), record);
        Ok(AnonymizeReceipt {
            payload: outcome.payload.clone(),
            attempts,
            outcome,
        })
    }

    /// The stored record for an owner.
    pub fn owner_record(&self, owner: &str) -> Option<&OwnerRecord> {
        self.records.get(owner)
    }

    /// Registers a requester in an owner's access-control profile.
    ///
    /// Returns `false` when the owner is unknown.
    pub fn register_requester(
        &mut self,
        owner: &str,
        requester: &str,
        trust: TrustDegree,
        floor: Level,
    ) -> bool {
        match self.records.get_mut(owner) {
            Some(rec) => {
                rec.access.register_requester(requester, trust);
                rec.access.set_trust_floor(trust, floor);
                true
            }
            None => false,
        }
    }

    /// A requester fetches the keys it is entitled to for an owner's
    /// cloak — "they request the location data owners for access keys,
    /// which is managed locally by the 'Anonymizer'".
    ///
    /// # Errors
    ///
    /// Fails for unknown owners (mapped to
    /// [`AccessError::UnknownRequester`] semantics at the owner level) or
    /// per the owner's access-control profile.
    pub fn fetch_keys(
        &self,
        owner: &str,
        requester: &str,
    ) -> Result<Vec<(Level, Key256)>, AccessError> {
        let rec = self
            .records
            .get(owner)
            .ok_or_else(|| AccessError::UnknownRequester(format!("owner:{owner}")))?;
        rec.access.keys_for(&rec.keys, requester)
    }

    /// Per-level cumulative regions of an outcome, for rendering: level 0
    /// first (the seed segment), each following level adding its span.
    pub fn level_regions(outcome: &AnonymizationOutcome) -> Vec<(Level, Vec<SegmentId>)> {
        let seed = {
            // The seed is the one region segment that is not in the chain.
            let chain: std::collections::HashSet<SegmentId> =
                outcome.chain.iter().copied().collect();
            outcome
                .payload
                .segments
                .iter()
                .copied()
                .find(|s| !chain.contains(s))
                .expect("the seed segment is in the region")
        };
        let mut regions = vec![(Level(0), vec![seed])];
        let mut cursor = 0usize;
        let mut acc = vec![seed];
        for (i, meta) in outcome.payload.levels.iter().enumerate() {
            let next = cursor + meta.count as usize;
            acc.extend(outcome.chain[cursor..next].iter().copied());
            cursor = next;
            regions.push((Level(i as u8 + 1), acc.clone()));
        }
        regions
    }
}

impl std::fmt::Debug for AnonymizerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnonymizerService")
            .field("engine", &self.engine)
            .field("owners", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    fn service() -> AnonymizerService {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut s = AnonymizerService::new(net, AnonymizerConfig::default());
        s.update_snapshot(snapshot);
        s
    }

    #[test]
    fn anonymize_and_store_record() {
        let mut s = service();
        let mut rng = StdRng::seed_from_u64(1);
        let receipt = s
            .anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        assert!(receipt.payload.region_size() >= 20);
        assert!(receipt.attempts >= 1);
        let rec = s.owner_record("alice").unwrap();
        assert_eq!(rec.payload, receipt.payload);
        assert_eq!(rec.keys.level_count(), 3);
        assert!(s.owner_record("bob").is_none());
    }

    #[test]
    fn key_fetch_respects_access_control() {
        let mut s = service();
        let mut rng = StdRng::seed_from_u64(2);
        s.anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        assert!(s.register_requester("alice", "police", TrustDegree(10), Level(0)));
        assert!(s.register_requester("alice", "friend", TrustDegree(5), Level(2)));
        assert!(!s.register_requester("ghost", "police", TrustDegree(10), Level(0)));

        let police = s.fetch_keys("alice", "police").unwrap();
        assert_eq!(police.len(), 3);
        assert_eq!(police[0].0, Level(3));
        let friend = s.fetch_keys("alice", "friend").unwrap();
        assert_eq!(friend.len(), 1);
        assert!(s.fetch_keys("alice", "stranger").is_err());
        assert!(s.fetch_keys("ghost", "police").is_err());
    }

    #[test]
    fn rple_engine_choice_builds() {
        let net = grid_city(5, 5, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut s = AnonymizerService::new(
            net,
            AnonymizerConfig {
                engine: EngineChoice::Rple { t_len: 8 },
                ..Default::default()
            },
        );
        s.update_snapshot(snapshot);
        assert_eq!(s.engine().name(), "RPLE");
        let mut rng = StdRng::seed_from_u64(3);
        let receipt = s
            .anonymize_owner("carol", SegmentId(20), None, &mut rng)
            .unwrap();
        assert!(receipt.payload.region_size() >= 20);
    }

    #[test]
    fn level_regions_are_monotone() {
        let mut s = service();
        let mut rng = StdRng::seed_from_u64(4);
        let receipt = s
            .anonymize_owner("alice", SegmentId(30), None, &mut rng)
            .unwrap();
        let regions = AnonymizerService::level_regions(&receipt.outcome);
        assert_eq!(regions.len(), 4); // L0..L3
        assert_eq!(regions[0].1, vec![SegmentId(30)]);
        for w in regions.windows(2) {
            let (small, big) = (&w[0].1, &w[1].1);
            assert!(big.len() >= small.len());
            for seg in small.iter() {
                assert!(big.contains(seg), "levels must nest");
            }
        }
        // Top level covers the whole payload region.
        let mut top = regions.last().unwrap().1.clone();
        top.sort();
        assert_eq!(top, receipt.payload.segments);
    }

    #[test]
    fn debug_impls() {
        let s = service();
        let dbg = format!("{s:?}");
        assert!(dbg.contains("RGE"));
    }
}
