//! The trusted Anonymizer service.
//!
//! "In the multi-level reversible location privacy framework, a trusted
//! anonymizer obtains the raw location information from the mobile clients
//! with the user-defined profile." The service anonymizes owner locations,
//! stores each owner's keys and access-control profile locally ("managed
//! locally by the 'Anonymizer'"), and hands out keys to requesters
//! according to their trust degree.
//!
//! # Concurrency model
//!
//! The anonymization path is read-mostly: the road network, the built
//! engine (including RPLE's pre-assigned tables), and the configuration
//! are immutable after construction, and the traffic snapshot changes
//! only on [`AnonymizerService::update_snapshot`]. The service is
//! therefore built so the whole hot path works from `&self`:
//!
//! * immutable shared state ([`RoadNetwork`], [`Engine`],
//!   [`AnonymizerConfig`]) is plain fields read through `&self`;
//! * the occupancy snapshot sits behind an `RwLock<Arc<_>>` that readers
//!   clone out of in O(1) — [`update_snapshot`] swaps the `Arc` without
//!   blocking in-flight anonymizations;
//! * the owner-record and requester-registry maps are sharded N ways by
//!   key hash, each shard its own `RwLock`, so concurrent requests for
//!   different owners never contend;
//! * each owner's forward-secret [`ChainState`] lives in its own sharded
//!   map and advances under one shard write lock per anonymization —
//!   ratchet, journal write, key derivation, and epoch read are a single
//!   atomic step, and the in-memory state commits only after the
//!   [`ChainStore`] acknowledged the post-ratchet record (no receipt may
//!   reference an unjournaled epoch).
//!
//! Workers share the service via `Arc<AnonymizerService>`; no global
//! lock exists anywhere on the anonymize path.
//!
//! [`update_snapshot`]: AnonymizerService::update_snapshot

use crate::config::{AnonymizerConfig, EngineChoice};
use cloak::{
    anonymize_batch_with_scratch, anonymize_with_retry_scratch, AnonymizationOutcome,
    BatchCloakItem, BatchCloakScratch, CloakError, CloakPayload, CloakScratch, PrivacyProfile,
    ReversibleEngine, RgeEngine, RpleEngine,
};
use keystream::{
    AccessControlProfile, AccessError, ChainState, ChainStore, JournalError, Key256, KeyManager,
    Level, MemStore, TrustDegree,
};
use mobisim::OccupancySnapshot;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{RoadNetwork, SegmentId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// SplitMix64 finalizer: the shared scrambler behind every derived
/// request seed (server job seeds, pipeline per-tick seeds). Callers XOR
/// their inputs into `z`; the finalizer decorrelates nearby inputs.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A built engine, either variant.
pub enum Engine {
    /// Reversible Global Expansion.
    Rge(RgeEngine),
    /// Reversible Pre-assignment-based Local Expansion.
    Rple(RpleEngine),
}

impl Engine {
    /// Builds the engine selected by `choice` for `net`.
    pub fn build(net: &RoadNetwork, choice: EngineChoice) -> Self {
        match choice {
            EngineChoice::Rge => Engine::Rge(RgeEngine::new()),
            EngineChoice::Rple { t_len } => Engine::Rple(RpleEngine::build(net, t_len)),
        }
    }

    /// The engine as a trait object.
    pub fn as_dyn(&self) -> &dyn ReversibleEngine {
        match self {
            Engine::Rge(e) => e,
            Engine::Rple(e) => e,
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Engine::{}", self.as_dyn().name())
    }
}

/// Record the anonymizer keeps per published cloak.
///
/// The payload sits behind an `Arc` shared with the
/// [`AnonymizeReceipt`] returned to the owner, so storing the record
/// costs a pointer bump instead of a deep payload clone.
#[derive(Debug, Clone)]
pub struct OwnerRecord {
    /// The owner identity.
    pub owner: String,
    /// The published payload (shared with the issued receipt).
    pub payload: Arc<CloakPayload>,
    /// The owner's per-level keys.
    pub keys: KeyManager,
    /// The owner's access-control profile.
    pub access: AccessControlProfile,
}

/// One owner's live state detached for a cross-service migration — see
/// [`AnonymizerService::export_owner`] /
/// [`AnonymizerService::import_owner`]. Produced when the sharded
/// pipeline moves an owner whose car crossed a partition boundary.
#[derive(Debug, Clone)]
pub struct OwnerHandoff {
    /// The migrating owner's identity.
    pub owner: String,
    /// The in-memory forward-secret chain at its current epoch (`None`
    /// for owners that were never anonymized).
    chain: Option<ChainState>,
    /// The stored record: payload, per-level keys, access-control
    /// profile (`None` for owners that were never anonymized).
    record: Option<OwnerRecord>,
}

impl OwnerHandoff {
    /// The exported chain epoch, when the owner has a chain.
    pub fn epoch(&self) -> Option<u64> {
        self.chain.as_ref().map(ChainState::epoch)
    }
}

/// A hash-sharded `String → V` map: each shard is an independent
/// `RwLock<HashMap>`, so operations on different keys rarely contend and
/// readers never block readers.
struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
}

impl<V> ShardedMap<V> {
    fn new(shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        ShardedMap {
            shards: (0..shard_count)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Inserts or updates atomically under one shard write lock: `update`
    /// runs when the key exists, `insert` builds the value otherwise.
    fn upsert(&self, key: &str, update: impl FnOnce(&mut V), insert: impl FnOnce() -> V) {
        let mut shard = self.shard(key).write();
        match shard.get_mut(key) {
            Some(v) => update(v),
            None => {
                shard.insert(key.to_string(), insert());
            }
        }
    }

    /// Inserts `value`, merging state from a previous entry under one
    /// shard write lock when the key already exists.
    fn insert_merging(&self, key: String, mut value: V, merge: impl FnOnce(&V, &mut V)) {
        let mut shard = self.shard(&key).write();
        if let Some(old) = shard.get(&key) {
            merge(old, &mut value);
        }
        shard.insert(key, value);
    }

    fn get_cloned(&self, key: &str) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).read().get(key).cloned()
    }

    /// Runs `f` on the value under the shard's write lock.
    fn update<T>(&self, key: &str, f: impl FnOnce(&mut V) -> T) -> Option<T> {
        self.shard(key).write().get_mut(key).map(f)
    }

    /// Inserts (when absent) then mutates the value, *persists* it, and
    /// commits + returns a clone, all under one shard write lock — the
    /// chain-ratchet step: concurrent advances of the same key serialize,
    /// so every caller observes a distinct post-advance state. The commit
    /// happens only after `persist` succeeds: on a persistence failure the
    /// in-memory value is untouched, so a later retry re-derives the same
    /// next state instead of skipping an epoch.
    fn advance_persist<E>(
        &self,
        key: &str,
        insert: impl FnOnce() -> V,
        step: impl FnOnce(&mut V),
        persist: impl FnOnce(&V) -> Result<(), E>,
    ) -> Result<V, E>
    where
        V: Clone,
    {
        let mut shard = self.shard(key).write();
        let mut next = match shard.get(key) {
            Some(v) => v.clone(),
            None => insert(),
        };
        step(&mut next);
        persist(&next)?;
        shard.insert(key.to_string(), next.clone());
        Ok(next)
    }

    /// Runs `f` on the value under the shard's read lock.
    fn read<T>(&self, key: &str, f: impl FnOnce(&V) -> T) -> Option<T> {
        self.shard(key).read().get(key).map(f)
    }

    /// Removes and returns the value under the shard's write lock.
    fn remove(&self, key: &str) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// A batch pre-pass entry: the request's `(keys, nonce, epoch)` once its
/// chain advance was journaled, or the persistence error that withheld
/// the epoch.
type KeyedRequest = Result<(KeyManager, u64, u64), CloakError>;

/// One anonymization request for [`AnonymizerService::anonymize_batch`].
///
/// The `seed` deterministically drives chain-genesis entropy and the
/// nonce, so a batch run is bit-identical to sequential
/// [`AnonymizerService::anonymize_seeded`] calls with the same seeds in
/// the same order from the same service state — results do not depend on
/// how the batch was scheduled. (Per-level keys come from the owner's
/// forward-secret chain, so *re-running* a request advances the epoch
/// rather than reproducing the receipt.)
#[derive(Debug, Clone)]
pub struct AnonymizeRequest {
    /// The owner identity.
    pub owner: String,
    /// The owner's true segment.
    pub segment: SegmentId,
    /// Per-request profile (`None` uses the configured default).
    pub profile: Option<PrivacyProfile>,
    /// Seed for key generation and the nonce.
    pub seed: u64,
}

impl AnonymizeRequest {
    /// A request with the default profile.
    pub fn new(owner: impl Into<String>, segment: SegmentId, seed: u64) -> Self {
        AnonymizeRequest {
            owner: owner.into(),
            segment,
            profile: None,
            seed,
        }
    }
}

/// The trusted anonymization service.
///
/// The whole anonymize path works from `&self`, so workers share one
/// instance through an `Arc` with no external lock:
///
/// ```
/// use anonymizer::{AnonymizerConfig, AnonymizerService};
/// use mobisim::OccupancySnapshot;
/// use roadnet::{grid_city, SegmentId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = grid_city(6, 6, 100.0);
/// let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
/// let service = AnonymizerService::new(net, AnonymizerConfig::default());
/// service.update_snapshot(snapshot);
/// let receipt = service.anonymize_owner("alice", SegmentId(17), None, &mut rand::thread_rng())?;
/// assert!(receipt.payload.region_size() >= 20);
/// # Ok(())
/// # }
/// ```
pub struct AnonymizerService {
    net: Arc<RoadNetwork>,
    engine: Engine,
    config: AnonymizerConfig,
    snapshot: RwLock<Arc<OccupancySnapshot>>,
    records: ShardedMap<OwnerRecord>,
    /// Reverse index: requester → every owner that granted it access,
    /// with the granted trust. Kept separate from the per-owner
    /// access-control profiles so key-distribution decisions stay an
    /// isolated, auditable layer.
    requesters: ShardedMap<HashMap<String, TrustDegree>>,
    /// Per-owner forward-secret chain states. Every anonymization
    /// ratchets the owner's chain one epoch forward and derives that
    /// epoch's level keys from the post-ratchet state; the pre-ratchet
    /// state is overwritten, so nothing the service retains can rebuild
    /// an earlier epoch's keys.
    chains: ShardedMap<ChainState>,
    /// Chain persistence: every ratchet advance is journaled through
    /// this store *before* the receipt is issued, so no receipt ever
    /// references an epoch the store has not acknowledged. The default
    /// [`MemStore`] keeps today's in-memory semantics; a
    /// [`keystream::FileStore`] makes chains survive a restart.
    store: Arc<dyn ChainStore>,
}

/// What the owner gets back from an anonymization: the payload to upload
/// plus run accounting.
#[derive(Debug, Clone)]
pub struct AnonymizeReceipt {
    /// The public payload (shared with the stored [`OwnerRecord`]).
    pub payload: Arc<CloakPayload>,
    /// Attempts needed (dead-ended walks retried under fresh nonces).
    pub attempts: u32,
    /// The full outcome (chain and per-level stats) for inspection.
    pub outcome: AnonymizationOutcome,
}

impl AnonymizerService {
    /// Creates the service over a road network with an in-memory chain
    /// store: chains live for the process lifetime only, exactly the
    /// pre-durability semantics.
    pub fn new(net: RoadNetwork, config: AnonymizerConfig) -> Self {
        Self::with_store(net, config, Arc::new(MemStore::new()))
            .expect("an empty MemStore never fails to load")
    }

    /// Creates the service over a persistent chain store, replaying the
    /// store's journal so every previously journaled owner chain resumes
    /// at its recorded `(state, epoch)` — restart preserves epoch
    /// monotonicity and captured-grant validity.
    ///
    /// # Errors
    ///
    /// Fails when the store's journal cannot be read.
    pub fn with_store(
        net: RoadNetwork,
        config: AnonymizerConfig,
        store: Arc<dyn ChainStore>,
    ) -> Result<Self, JournalError> {
        let net = Arc::new(net);
        let engine = Engine::build(&net, config.engine);
        let segment_count = net.segment_count();
        let shards = config.shard_count;
        let service = AnonymizerService {
            net,
            engine,
            snapshot: RwLock::new(Arc::new(OccupancySnapshot::uniform(segment_count, 0))),
            records: ShardedMap::new(shards),
            requesters: ShardedMap::new(shards),
            chains: ShardedMap::new(shards),
            config,
            store,
        };
        for (owner, state) in service.store.load()? {
            service.chains.insert_merging(owner, state, |_, _| {});
        }
        Ok(service)
    }

    /// Restart entry point: rebuilds a service from `store`'s journal.
    /// Identical to [`with_store`](Self::with_store) — named for the
    /// recovery path so call sites read as what they are.
    ///
    /// # Errors
    ///
    /// Fails when the store's journal cannot be read.
    pub fn recover(
        net: RoadNetwork,
        config: AnonymizerConfig,
        store: Arc<dyn ChainStore>,
    ) -> Result<Self, JournalError> {
        Self::with_store(net, config, store)
    }

    /// The chain store journaling this service's ratchet advances.
    pub fn chain_store(&self) -> &Arc<dyn ChainStore> {
        &self.store
    }

    /// The network the service operates on.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// A shared handle to the network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// The engine in use.
    pub fn engine(&self) -> &dyn ReversibleEngine {
        self.engine.as_dyn()
    }

    /// The service configuration.
    pub fn config(&self) -> &AnonymizerConfig {
        &self.config
    }

    /// Installs a fresh traffic snapshot (users per segment) by swapping
    /// the shared `Arc`; in-flight anonymizations keep reading the
    /// snapshot they started with and are never blocked.
    pub fn update_snapshot(&self, snapshot: OccupancySnapshot) {
        let _ = self.swap_snapshot(snapshot);
    }

    /// Like [`update_snapshot`](Self::update_snapshot), returning the
    /// previously installed snapshot. Once every in-flight reader drops
    /// its handle the caller can reclaim the buffer with
    /// `Arc::try_unwrap` and recapture into it
    /// ([`mobisim::Simulation::capture_into`]) — the allocation-free
    /// cadence loop of a continuous pipeline.
    pub fn swap_snapshot(&self, snapshot: OccupancySnapshot) -> Arc<OccupancySnapshot> {
        std::mem::replace(&mut *self.snapshot.write(), Arc::new(snapshot))
    }

    /// The snapshot currently served to new requests (O(1) `Arc` clone).
    pub fn snapshot(&self) -> Arc<OccupancySnapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Ratchets `owner`'s forward-secret chain one epoch, journals the
    /// post-ratchet state through the chain store, and returns it. A
    /// first-time owner gets a genesis state built from `entropy` (the
    /// chain then never touches caller entropy again); every call
    /// serializes under the chain shard's write lock, so concurrent
    /// anonymizations of one owner get distinct epochs.
    ///
    /// The journal write happens *before* the in-memory commit: on a
    /// store failure the chain is left where it was, no receipt is
    /// issued for the unjournaled epoch, and a retry re-derives the same
    /// epoch instead of skipping one.
    fn advance_chain(&self, owner: &str, entropy: Key256) -> Result<ChainState, CloakError> {
        self.chains
            .advance_persist(
                owner,
                || ChainState::genesis(owner, &entropy),
                ChainState::ratchet,
                |next| self.store.record(owner, next),
            )
            .map_err(|e| CloakError::Persistence(format!("owner {owner}: {e}")))
    }

    /// The owner's current chain epoch (count of anonymizations so far),
    /// or `None` for owners never anonymized. Receipts carry their epoch
    /// in [`CloakPayload::epoch`].
    pub fn owner_epoch(&self, owner: &str) -> Option<u64> {
        self.chains.read(owner, ChainState::epoch)
    }

    /// Anonymizes `owner`'s location with `profile` (or the default
    /// profile), auto-generating keys — the GUI's 'Auto key generation'.
    /// Stores the owner record for later key fetches.
    ///
    /// The caller's `rng` seeds the owner's forward-secret chain on first
    /// use (256 bits of entropy) and supplies the per-request nonce; the
    /// per-level keys come from the chain's post-ratchet epoch state, so
    /// re-anonymizing rotates keys forward and erases the prior epoch's
    /// secret. For pinned randomness use
    /// [`anonymize_seeded`](Self::anonymize_seeded).
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] when the requirement cannot be met.
    pub fn anonymize_owner<R: Rng + ?Sized>(
        &self,
        owner: &str,
        user_segment: SegmentId,
        profile: Option<&PrivacyProfile>,
        rng: &mut R,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let profile = profile.unwrap_or(&self.config.default_profile);
        let entropy = Key256::generate(rng);
        let nonce: u64 = rng.gen();
        let chain = self.advance_chain(owner, entropy)?;
        let keys = chain.level_keys(profile.level_count());
        self.anonymize_with_keys(
            owner,
            user_segment,
            profile,
            keys,
            nonce,
            chain.epoch(),
            &mut CloakScratch::default(),
        )
    }

    /// Like [`anonymize_owner`](Self::anonymize_owner) with the request's
    /// randomness pinned by `seed`. Reproducibility is per *service
    /// history*, not per call: two identically-configured services fed
    /// the same request sequence produce bit-identical receipt streams,
    /// but repeating a request on one service ratchets the owner's chain
    /// and yields a fresh epoch — that asymmetry is the forward-secrecy
    /// contract. Key entropy is bounded by the 64-bit seed — use
    /// [`anonymize_owner`](Self::anonymize_owner) with a strong RNG when
    /// key secrecy matters.
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] when the requirement cannot be met.
    pub fn anonymize_seeded(
        &self,
        owner: &str,
        user_segment: SegmentId,
        profile: Option<&PrivacyProfile>,
        seed: u64,
    ) -> Result<AnonymizeReceipt, CloakError> {
        self.anonymize_seeded_with(owner, user_segment, profile, seed, &mut CloakScratch::new())
    }

    /// [`anonymize_seeded`](Self::anonymize_seeded) with caller-owned
    /// scratch buffers — the per-worker pool path: a worker holding one
    /// [`CloakScratch`] anonymizes request after request with no
    /// steady-state heap traffic beyond the receipt itself. Results are
    /// bit-identical for any scratch state.
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] when the requirement cannot be met.
    pub fn anonymize_seeded_with(
        &self,
        owner: &str,
        user_segment: SegmentId,
        profile: Option<&PrivacyProfile>,
        seed: u64,
        scratch: &mut CloakScratch,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = profile.unwrap_or(&self.config.default_profile);
        let entropy = Key256::generate(&mut rng);
        let nonce: u64 = rng.gen();
        let chain = self.advance_chain(owner, entropy)?;
        let keys = chain.level_keys(profile.level_count());
        self.anonymize_with_keys(
            owner,
            user_segment,
            profile,
            keys,
            nonce,
            chain.epoch(),
            scratch,
        )
    }

    /// The shared core: runs the cloak with the given keys and nonce,
    /// stamps the chain epoch into the payload, and stores the owner
    /// record.
    #[allow(clippy::too_many_arguments)]
    fn anonymize_with_keys(
        &self,
        owner: &str,
        user_segment: SegmentId,
        profile: &PrivacyProfile,
        keys: KeyManager,
        nonce: u64,
        epoch: u64,
        scratch: &mut CloakScratch,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let key_vec: Vec<Key256> = keys.iter().map(|(_, k)| k).collect();
        let snapshot = self.snapshot();
        let (mut outcome, attempts) = anonymize_with_retry_scratch(
            &self.net,
            &snapshot,
            user_segment,
            profile,
            &key_vec,
            nonce,
            self.engine.as_dyn(),
            self.config.max_attempts,
            scratch,
        )?;
        outcome.payload.epoch = epoch;
        // One payload allocation shared by the stored record and the
        // returned receipt (the record used to deep-clone it twice).
        let payload = Arc::new(outcome.payload.clone());
        let record = OwnerRecord {
            owner: owner.to_string(),
            payload: Arc::clone(&payload),
            keys,
            access: AccessControlProfile::new(),
        };
        // Re-anonymizing rotates payload and keys but keeps the owner's
        // access-control profile, so existing requester grants (and the
        // requester registry audit view) stay consistent.
        self.records
            .insert_merging(owner.to_string(), record, |old, new| {
                new.access = old.access.clone();
            });
        Ok(AnonymizeReceipt {
            payload,
            attempts,
            outcome,
        })
    }

    /// The sequential chain pre-pass of a batch: ratchets every request's
    /// owner chain **in request order** and captures that request's
    /// `(keys, nonce, epoch)`. Running this before any parallel dispatch
    /// is what keeps a batch bit-identical to sequential execution — the
    /// epoch an owner's n-th request gets must not depend on worker
    /// scheduling. A request whose chain advance could not be journaled
    /// carries its [`CloakError::Persistence`] instead of keys: it never
    /// reaches the cloak core and no receipt is issued for it.
    fn derive_batch_keys(&self, requests: &[AnonymizeRequest]) -> Vec<KeyedRequest> {
        requests
            .iter()
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(r.seed);
                let profile = r.profile.as_ref().unwrap_or(&self.config.default_profile);
                let entropy = Key256::generate(&mut rng);
                let nonce: u64 = rng.gen();
                let chain = self.advance_chain(&r.owner, entropy)?;
                Ok((
                    chain.level_keys(profile.level_count()),
                    nonce,
                    chain.epoch(),
                ))
            })
            .collect()
    }

    /// The owner-batched core behind
    /// [`anonymize_batch`](Self::anonymize_batch): cloaks a run of
    /// requests against **one** snapshot handle through
    /// [`cloak::anonymize_batch_with_scratch`], so the whole run shares
    /// the region bitset, the transition-table rows/columns, and the
    /// structure-of-arrays round/hint arenas. `keyed` is the run's slice
    /// of the [`derive_batch_keys`](Self::derive_batch_keys) pre-pass, so
    /// receipts are bit-identical to the sequential path.
    fn anonymize_run_keyed(
        &self,
        requests: &[AnonymizeRequest],
        keyed: &[KeyedRequest],
        scratch: &mut BatchCloakScratch,
    ) -> Vec<Result<AnonymizeReceipt, CloakError>> {
        let snapshot = self.snapshot();
        // Requests whose chain advance failed to journal never reach the
        // cloak core: their slot is pre-filled with the persistence
        // error, and only the journaled remainder is cloaked.
        let ok_idx: Vec<usize> = keyed
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.is_ok().then_some(i))
            .collect();
        let key_vecs: Vec<Vec<Key256>> = ok_idx
            .iter()
            .map(|&i| {
                let (keys, _, _) = keyed[i].as_ref().expect("ok_idx holds only Ok entries");
                keys.iter().map(|(_, k)| k).collect()
            })
            .collect();
        let items: Vec<BatchCloakItem<'_>> = ok_idx
            .iter()
            .zip(&key_vecs)
            .map(|(&i, kv)| {
                let r = &requests[i];
                let &(_, nonce, _) = keyed[i].as_ref().expect("ok_idx holds only Ok entries");
                BatchCloakItem {
                    segment: r.segment,
                    profile: r.profile.as_ref().unwrap_or(&self.config.default_profile),
                    keys: kv,
                    nonce,
                    max_attempts: self.config.max_attempts,
                }
            })
            .collect();
        let outcomes = anonymize_batch_with_scratch(
            &self.net,
            &snapshot,
            &items,
            self.engine.as_dyn(),
            scratch,
        );
        drop(items);
        let mut slots: Vec<Option<Result<AnonymizeReceipt, CloakError>>> = keyed
            .iter()
            .map(|k| k.as_ref().err().cloned().map(Err))
            .collect();
        for (&i, res) in ok_idx.iter().zip(outcomes) {
            let r = &requests[i];
            let (keys, _, epoch) = keyed[i].as_ref().expect("ok_idx holds only Ok entries");
            slots[i] = Some(res.map(|(mut outcome, attempts)| {
                outcome.payload.epoch = *epoch;
                let payload = Arc::new(outcome.payload.clone());
                let record = OwnerRecord {
                    owner: r.owner.clone(),
                    payload: Arc::clone(&payload),
                    keys: keys.clone(),
                    access: AccessControlProfile::new(),
                };
                self.records
                    .insert_merging(r.owner.clone(), record, |old, new| {
                        new.access = old.access.clone();
                    });
                AnonymizeReceipt {
                    payload,
                    attempts,
                    outcome,
                }
            }));
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot is a pre-filled error or a cloak outcome"))
            .collect()
    }

    /// Anonymizes a batch of requests, fanned across a scoped worker pool
    /// in chunks. Results keep request order, and — because chain epochs
    /// are assigned in a sequential pre-pass and every request carries
    /// its own seed — are identical to running
    /// [`anonymize_seeded`](Self::anonymize_seeded) sequentially from the
    /// same service state.
    ///
    /// Each worker drives its chunks through the owner-batched core
    /// ([`cloak::anonymize_batch_with_scratch`]) with one
    /// [`BatchCloakScratch`]: the chunk shares one snapshot handle, one
    /// region bitset, and the structure-of-arrays round/hint arenas.
    ///
    /// Parallelism comes from
    /// [`AnonymizerConfig::batch_parallelism`] (`0` = all available
    /// cores).
    pub fn anonymize_batch(
        &self,
        requests: &[AnonymizeRequest],
    ) -> Vec<Result<AnonymizeReceipt, CloakError>> {
        let workers = match self.config.batch_parallelism {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        }
        .min(requests.len().max(1));
        // Chain pre-pass first: epochs are assigned in request order
        // before any worker runs, so batch scheduling can never reorder
        // an owner's ratchet sequence.
        let keyed = self.derive_batch_keys(requests);
        if workers <= 1 || requests.len() <= 1 {
            // One scratch serves the whole sequential sweep.
            return self.anonymize_run_keyed(requests, &keyed, &mut BatchCloakScratch::new());
        }
        // Chunked work-stealing: a shared cursor hands out runs of
        // requests so threads stay busy even when per-request cost varies
        // (RPLE retries, dense vs sparse regions).
        let chunk = (requests.len() / (workers * 4)).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<AnonymizeReceipt, CloakError>>> =
            (0..requests.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let keyed = &keyed;
                    scope.spawn(move || {
                        // Per-worker scratch pool: buffers grow to the
                        // workload's high-water mark once, then every
                        // further chunk on this worker is allocation-
                        // free inside the cloak walk.
                        let mut scratch = BatchCloakScratch::new();
                        let mut done: Vec<(usize, Result<AnonymizeReceipt, CloakError>)> =
                            Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= requests.len() {
                                return done;
                            }
                            let end = (start + chunk).min(requests.len());
                            let run = self.anonymize_run_keyed(
                                &requests[start..end],
                                &keyed[start..end],
                                &mut scratch,
                            );
                            done.extend(run.into_iter().enumerate().map(|(i, r)| (start + i, r)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker never panics") {
                    results[i] = Some(result);
                }
            }
        });
        // A batch may repeat an owner; parallel workers then race on the
        // stored record. Re-run each duplicated owner's last request with
        // its *precomputed* keys/nonce/epoch (no fresh ratchet — the
        // chain already advanced in the pre-pass) to pin the stored
        // record to sequential semantics: last request wins.
        let mut per_owner: HashMap<&str, (usize, usize)> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            let entry = per_owner.entry(&r.owner).or_insert((0, i));
            entry.0 += 1;
            entry.1 = i;
        }
        for &(count, last) in per_owner.values() {
            // A last request whose advance failed to journal keeps its
            // persistence error; the stored record then reflects some
            // earlier successful request, which is all a failed tail can
            // promise.
            if count > 1 {
                if let Ok((keys, nonce, epoch)) = &keyed[last] {
                    let r = &requests[last];
                    results[last] = Some(self.anonymize_with_keys(
                        &r.owner,
                        r.segment,
                        r.profile.as_ref().unwrap_or(&self.config.default_profile),
                        keys.clone(),
                        *nonce,
                        *epoch,
                        &mut CloakScratch::new(),
                    ));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every request index was claimed by exactly one worker"))
            .collect()
    }

    /// The stored record for an owner (a clone; records are shared across
    /// shards and threads).
    pub fn owner_record(&self, owner: &str) -> Option<OwnerRecord> {
        self.records.get_cloned(owner)
    }

    /// Number of owners with stored records.
    pub fn owner_count(&self) -> usize {
        self.records.len()
    }

    /// Detaches an owner's live state for a cross-service handoff (the
    /// sharded pipeline migrating an owner whose car crossed a partition
    /// boundary): the in-memory forward-secret chain and the stored
    /// record (payload, keys, access-control profile). Both are
    /// *removed* from this service — after the export the owner lives
    /// nowhere until [`import_owner`](Self::import_owner) lands the
    /// state on the receiving service. Returns `None` for owners this
    /// service never saw.
    ///
    /// The journaled chain copy is untouched: when both services share
    /// one [`ChainStore`], the receiver's next ratchet journals over the
    /// same owner key, so crash recovery sees one continuous chain.
    pub fn export_owner(&self, owner: &str) -> Option<OwnerHandoff> {
        let chain = self.chains.remove(owner);
        let record = self.records.remove(owner);
        if chain.is_none() && record.is_none() {
            return None;
        }
        Some(OwnerHandoff {
            owner: owner.to_string(),
            chain,
            record,
        })
    }

    /// Lands an [`export_owner`](Self::export_owner) handoff on this
    /// service. The imported chain resumes at its exported epoch — the
    /// next anonymization ratchets strictly forward, so epoch
    /// monotonicity holds across any number of migrations — and the
    /// imported record keeps every captured requester grant working
    /// through the normal [`fetch_keys`](Self::fetch_keys) path.
    pub fn import_owner(&self, handoff: OwnerHandoff) {
        let OwnerHandoff {
            owner,
            chain,
            record,
        } = handoff;
        if let Some(chain) = chain {
            self.chains.insert_merging(owner.clone(), chain, |_, _| {});
        }
        if let Some(record) = record {
            self.records.insert_merging(owner, record, |_, _| {});
        }
    }

    /// Registers a requester in an owner's access-control profile and in
    /// the requester registry.
    ///
    /// Returns `false` when the owner is unknown.
    pub fn register_requester(
        &self,
        owner: &str,
        requester: &str,
        trust: TrustDegree,
        floor: Level,
    ) -> bool {
        // The registry upsert runs while the owner's record shard is
        // still write-locked, so concurrent re-registrations of the same
        // (owner, requester) pair cannot leave the audit view
        // disagreeing with the access profile. Lock order is always
        // records-shard → requesters-shard; nothing takes them the other
        // way around.
        self.records
            .update(owner, |rec| {
                rec.access.register_requester(requester, trust);
                rec.access.set_trust_floor(trust, floor);
                self.requesters.upsert(
                    requester,
                    |grants| {
                        grants.insert(owner.to_string(), trust);
                    },
                    || HashMap::from([(owner.to_string(), trust)]),
                );
            })
            .is_some()
    }

    /// Audit view of the requester registry: every owner that granted
    /// `requester` access, with the granted trust degree (unordered).
    pub fn requester_grants(&self, requester: &str) -> Vec<(String, TrustDegree)> {
        self.requesters
            .read(requester, |grants| {
                grants.iter().map(|(o, &t)| (o.clone(), t)).collect()
            })
            .unwrap_or_default()
    }

    /// Number of distinct requesters registered with any owner.
    pub fn requester_count(&self) -> usize {
        self.requesters.len()
    }

    /// A requester fetches the keys it is entitled to for an owner's
    /// cloak — "they request the location data owners for access keys,
    /// which is managed locally by the 'Anonymizer'".
    ///
    /// # Errors
    ///
    /// Fails for unknown owners (mapped to
    /// [`AccessError::UnknownRequester`] semantics at the owner level) or
    /// per the owner's access-control profile.
    pub fn fetch_keys(
        &self,
        owner: &str,
        requester: &str,
    ) -> Result<Vec<(Level, Key256)>, AccessError> {
        self.records
            .read(owner, |rec| rec.access.keys_for(&rec.keys, requester))
            .unwrap_or_else(|| Err(AccessError::UnknownRequester(format!("owner:{owner}"))))
    }

    /// Per-level cumulative regions of an outcome, for rendering: level 0
    /// first (the seed segment), each following level adding its span.
    pub fn level_regions(outcome: &AnonymizationOutcome) -> Vec<(Level, Vec<SegmentId>)> {
        let seed = {
            // The seed is the one region segment that is not in the chain.
            let chain: std::collections::HashSet<SegmentId> =
                outcome.chain.iter().copied().collect();
            outcome
                .payload
                .segments
                .iter()
                .copied()
                .find(|s| !chain.contains(s))
                .expect("the seed segment is in the region")
        };
        let mut regions = vec![(Level(0), vec![seed])];
        let mut cursor = 0usize;
        let mut acc = vec![seed];
        for (i, meta) in outcome.payload.levels.iter().enumerate() {
            let next = cursor + meta.count as usize;
            acc.extend(outcome.chain[cursor..next].iter().copied());
            cursor = next;
            regions.push((Level(i as u8 + 1), acc.clone()));
        }
        regions
    }
}

impl std::fmt::Debug for AnonymizerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnonymizerService")
            .field("engine", &self.engine)
            .field("owners", &self.records.len())
            .field("shards", &self.records.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    fn service() -> AnonymizerService {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let s = AnonymizerService::new(net, AnonymizerConfig::default());
        s.update_snapshot(snapshot);
        s
    }

    #[test]
    fn anonymize_and_store_record() {
        let s = service();
        let mut rng = StdRng::seed_from_u64(1);
        let receipt = s
            .anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        assert!(receipt.payload.region_size() >= 20);
        assert!(receipt.attempts >= 1);
        let rec = s.owner_record("alice").unwrap();
        assert_eq!(rec.payload, receipt.payload);
        assert_eq!(rec.keys.level_count(), 3);
        assert!(s.owner_record("bob").is_none());
        assert_eq!(s.owner_count(), 1);
    }

    #[test]
    fn key_fetch_respects_access_control() {
        let s = service();
        let mut rng = StdRng::seed_from_u64(2);
        s.anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        assert!(s.register_requester("alice", "police", TrustDegree(10), Level(0)));
        assert!(s.register_requester("alice", "friend", TrustDegree(5), Level(2)));
        assert!(!s.register_requester("ghost", "police", TrustDegree(10), Level(0)));

        let police = s.fetch_keys("alice", "police").unwrap();
        assert_eq!(police.len(), 3);
        assert_eq!(police[0].0, Level(3));
        let friend = s.fetch_keys("alice", "friend").unwrap();
        assert_eq!(friend.len(), 1);
        assert!(s.fetch_keys("alice", "stranger").is_err());
        assert!(s.fetch_keys("ghost", "police").is_err());
    }

    #[test]
    fn requester_registry_tracks_grants() {
        let s = service();
        let mut rng = StdRng::seed_from_u64(7);
        s.anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        s.anonymize_owner("bob", SegmentId(12), None, &mut rng)
            .unwrap();
        s.register_requester("alice", "police", TrustDegree(10), Level(0));
        s.register_requester("bob", "police", TrustDegree(9), Level(1));
        s.register_requester("alice", "friend", TrustDegree(5), Level(2));
        // Re-registration updates in place rather than duplicating.
        s.register_requester("alice", "police", TrustDegree(8), Level(1));

        let mut grants = s.requester_grants("police");
        grants.sort();
        assert_eq!(
            grants,
            vec![
                ("alice".to_string(), TrustDegree(8)),
                ("bob".to_string(), TrustDegree(9)),
            ]
        );
        assert_eq!(s.requester_grants("friend").len(), 1);
        assert!(s.requester_grants("nobody").is_empty());
        assert_eq!(s.requester_count(), 2);
    }

    #[test]
    fn reanonymizing_rotates_keys_but_keeps_grants() {
        let s = service();
        let mut rng = StdRng::seed_from_u64(11);
        s.anonymize_owner("alice", SegmentId(40), None, &mut rng)
            .unwrap();
        s.register_requester("alice", "police", TrustDegree(10), Level(0));
        let old_keys = s.fetch_keys("alice", "police").unwrap();

        // Fresh cloak for the same owner: payload and keys rotate, the
        // access grant (and the registry audit view) survive.
        s.anonymize_owner("alice", SegmentId(12), None, &mut rng)
            .unwrap();
        let new_keys = s.fetch_keys("alice", "police").unwrap();
        assert_eq!(new_keys.len(), 3);
        assert_ne!(old_keys, new_keys, "keys must rotate");
        assert_eq!(
            s.requester_grants("police"),
            vec![("alice".to_string(), TrustDegree(10))]
        );
    }

    #[test]
    fn seeded_anonymization_is_deterministic_across_services() {
        // The determinism contract is per service history: two
        // identically-configured services replay the same stream…
        let a = service()
            .anonymize_seeded("alice", SegmentId(40), None, 1234)
            .unwrap();
        let b = service()
            .anonymize_seeded("alice", SegmentId(40), None, 1234)
            .unwrap();
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.payload.epoch, 1, "first receipt carries epoch 1");
        // …while repeating the request on ONE service ratchets the chain:
        // fresh epoch, fresh keys, fresh receipt.
        let s = service();
        let first = s
            .anonymize_seeded("alice", SegmentId(40), None, 1234)
            .unwrap();
        let again = s
            .anonymize_seeded("alice", SegmentId(40), None, 1234)
            .unwrap();
        assert_eq!(again.payload.epoch, 2);
        assert_ne!(
            first.payload, again.payload,
            "ratchet must rotate the receipt"
        );
        // Different seeds still diverge.
        let c = service()
            .anonymize_seeded("alice", SegmentId(40), None, 1235)
            .unwrap();
        assert_ne!(a.payload.segments, c.payload.segments);
    }

    #[test]
    fn batch_matches_sequential() {
        let s = service();
        let requests: Vec<AnonymizeRequest> = (0..24)
            .map(|i| {
                AnonymizeRequest::new(format!("owner-{i}"), SegmentId(i * 3 % 80), 100 + i as u64)
            })
            .collect();
        let batch = s.anonymize_batch(&requests);
        // Sequential replay must run on a fresh service: each owner's
        // chain has to sit at the same (genesis) state it had in the
        // batch run.
        let fresh = service();
        for (req, result) in requests.iter().zip(&batch) {
            let solo = fresh
                .anonymize_seeded(&req.owner, req.segment, None, req.seed)
                .unwrap();
            assert_eq!(
                result.as_ref().unwrap().payload,
                solo.payload,
                "{}",
                req.owner
            );
        }
        assert_eq!(s.owner_count(), 24);
    }

    #[test]
    fn forward_secrecy_across_reanonymizations() {
        use crate::deanonymizer::Deanonymizer;
        let s = service();
        let early = s
            .anonymize_seeded("alice", SegmentId(40), None, 77)
            .unwrap();
        assert_eq!(early.payload.epoch, 1);
        s.register_requester("alice", "auditor", TrustDegree(10), Level(0));
        // The auditor fetches epoch 1's keys while they are current.
        let granted = s.fetch_keys("alice", "auditor").unwrap();

        // Re-anonymization ratchets the chain forward: the service's own
        // stored keys now belong to epoch 2 and the epoch-1 state is gone.
        let late = s
            .anonymize_seeded("alice", SegmentId(12), None, 78)
            .unwrap();
        assert_eq!(late.payload.epoch, early.payload.epoch + 1);
        assert_eq!(s.owner_epoch("alice"), Some(2));
        let current = s.fetch_keys("alice", "auditor").unwrap();
        assert_ne!(granted, current, "ratchet must rotate the granted keys");

        let dean = Deanonymizer::new(
            s.network_arc(),
            Engine::build(s.network(), s.config().engine),
        );
        // The captured grant stays good for its own epoch forever…
        let view = dean.reduce(&early.payload, &granted).unwrap();
        assert_eq!(view.segments, vec![SegmentId(40)]);
        // …but nothing the service retains after the ratchet opens the
        // earlier receipt: current keys fail against the epoch-1 payload.
        assert!(
            dean.reduce(&early.payload, &current).is_err(),
            "post-ratchet keys must not deanonymize an earlier epoch"
        );
    }

    #[test]
    fn batch_reports_per_request_errors() {
        let s = service();
        let requests = vec![
            AnonymizeRequest::new("good", SegmentId(10), 1),
            AnonymizeRequest::new("bad", SegmentId(9999), 2),
        ];
        let results = s.anonymize_batch(&requests);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CloakError::UnknownSegment(_))));
    }

    #[test]
    fn snapshot_swap_does_not_disturb_existing_handles() {
        let s = service();
        let before = s.snapshot();
        s.update_snapshot(OccupancySnapshot::uniform(s.network().segment_count(), 9));
        assert_eq!(before.users_on(SegmentId(0)), 1, "old handle unchanged");
        assert_eq!(s.snapshot().users_on(SegmentId(0)), 9);
    }

    #[test]
    fn rple_engine_choice_builds() {
        let net = grid_city(5, 5, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let s = AnonymizerService::new(
            net,
            AnonymizerConfig {
                engine: EngineChoice::Rple { t_len: 8 },
                ..Default::default()
            },
        );
        s.update_snapshot(snapshot);
        assert_eq!(s.engine().name(), "RPLE");
        let mut rng = StdRng::seed_from_u64(3);
        let receipt = s
            .anonymize_owner("carol", SegmentId(20), None, &mut rng)
            .unwrap();
        assert!(receipt.payload.region_size() >= 20);
    }

    #[test]
    fn level_regions_are_monotone() {
        let s = service();
        let mut rng = StdRng::seed_from_u64(4);
        let receipt = s
            .anonymize_owner("alice", SegmentId(30), None, &mut rng)
            .unwrap();
        let regions = AnonymizerService::level_regions(&receipt.outcome);
        assert_eq!(regions.len(), 4); // L0..L3
        assert_eq!(regions[0].1, vec![SegmentId(30)]);
        for w in regions.windows(2) {
            let (small, big) = (&w[0].1, &w[1].1);
            assert!(big.len() >= small.len());
            for seg in small.iter() {
                assert!(big.contains(seg), "levels must nest");
            }
        }
        // Top level covers the whole payload region.
        let mut top = regions.last().unwrap().1.clone();
        top.sort();
        assert_eq!(top, receipt.payload.segments);
    }

    #[test]
    fn debug_impls() {
        let s = service();
        let dbg = format!("{s:?}");
        assert!(dbg.contains("RGE"));
    }

    /// A store that fails every `record` while `broken` — the minimal
    /// stand-in for a full disk / yanked volume.
    #[derive(Debug)]
    struct BreakableStore {
        inner: MemStore,
        broken: std::sync::atomic::AtomicBool,
    }

    impl BreakableStore {
        fn new(broken: bool) -> Self {
            BreakableStore {
                inner: MemStore::new(),
                broken: std::sync::atomic::AtomicBool::new(broken),
            }
        }
    }

    impl ChainStore for BreakableStore {
        fn record(&self, owner: &str, state: &ChainState) -> Result<(), JournalError> {
            if self.broken.load(Ordering::Relaxed) {
                return Err(JournalError::Injected("record refused".into()));
            }
            self.inner.record(owner, state)
        }
        fn load(&self) -> Result<Vec<(String, ChainState)>, JournalError> {
            self.inner.load()
        }
        fn compact(&self) -> Result<(), JournalError> {
            self.inner.compact()
        }
    }

    fn service_with(store: Arc<dyn ChainStore>) -> AnonymizerService {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let s = AnonymizerService::with_store(net, AnonymizerConfig::default(), store).unwrap();
        s.update_snapshot(snapshot);
        s
    }

    #[test]
    fn journal_failure_withholds_receipt_and_preserves_epoch() {
        let store = Arc::new(BreakableStore::new(true));
        let s = service_with(Arc::clone(&store) as Arc<dyn ChainStore>);
        let err = s
            .anonymize_seeded("alice", SegmentId(40), None, 7)
            .unwrap_err();
        assert!(matches!(err, CloakError::Persistence(_)));
        assert!(err.to_string().contains("receipt withheld"));
        // The failed advance committed nothing: no epoch, no record.
        assert_eq!(s.owner_epoch("alice"), None);
        assert!(s.owner_record("alice").is_none());
        // After the store heals, the retry gets epoch 1 — no hole.
        store.broken.store(false, Ordering::Relaxed);
        let receipt = s.anonymize_seeded("alice", SegmentId(40), None, 7).unwrap();
        assert_eq!(receipt.payload.epoch, 1);
    }

    #[test]
    fn batch_carries_persistence_errors_without_reaching_the_cloak() {
        let store = Arc::new(BreakableStore::new(true));
        let s = service_with(Arc::clone(&store) as Arc<dyn ChainStore>);
        let requests: Vec<AnonymizeRequest> = (0..6)
            .map(|i| AnonymizeRequest::new(format!("o{i}"), SegmentId(10 + i), 50 + i as u64))
            .collect();
        let results = s.anonymize_batch(&requests);
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(CloakError::Persistence(_)))));
        assert_eq!(s.owner_count(), 0, "no receipt ⇒ no stored record");
        // Heal mid-service: the same batch now succeeds at epoch 1 each.
        store.broken.store(false, Ordering::Relaxed);
        let results = s.anonymize_batch(&requests);
        for r in &results {
            assert_eq!(r.as_ref().unwrap().payload.epoch, 1);
        }
    }

    #[test]
    fn recovery_from_shared_store_continues_every_chain() {
        let store: Arc<dyn ChainStore> = Arc::new(MemStore::new());
        let first = service_with(Arc::clone(&store));
        for seed in 0..3 {
            first
                .anonymize_seeded("alice", SegmentId(40), None, seed)
                .unwrap();
        }
        first
            .anonymize_seeded("bob", SegmentId(12), None, 9)
            .unwrap();
        drop(first);

        // "Restart": a fresh service over the same store must resume
        // alice at epoch 3 and bob at epoch 1, not re-genesis them.
        let second = service_with(Arc::clone(&store));
        assert_eq!(second.owner_epoch("alice"), Some(3));
        assert_eq!(second.owner_epoch("bob"), Some(1));
        let next = second
            .anonymize_seeded("alice", SegmentId(40), None, 99)
            .unwrap();
        assert_eq!(next.payload.epoch, 4, "ratchet continues, no epoch reuse");
    }
}
