//! # anonymizer — the ReverseCloak demonstration toolkit, headless
//!
//! The paper demonstrates ReverseCloak through an 'Anonymizer' GUI (owners
//! set levels, per-level k, spatial tolerance; auto key generation;
//! colored multi-level regions on the map) and a 'De-anonymizer' GUI
//! (requesters fetch keys per the owner's access-control profile and
//! reduce the region). This crate is that toolkit as a library:
//!
//! * [`AnonymizerService`] — the trusted anonymizer: anonymizes owner
//!   locations, stores keys, enforces the access-control profile,
//! * [`AnonymizerServer`] — the same service behind a worker pool
//!   ("trusted anonymization server"),
//! * [`Deanonymizer`] — the requester-side reduction tool, including
//!   progressive per-level peeling,
//! * [`ContinuousPipeline`] — the temporal loop: live traffic ticks,
//!   snapshot swaps, batched re-anonymization, LBS probes, per-tick
//!   invariant verification, and an optional continuous attack leg
//!   ([`AttackConfig`]) that scores a keyless temporal adversary
//!   against the receipt stream (see the `pipeline` module docs),
//! * [`tournament`] — the scenario tournament: every engine × every
//!   adversary (including the adaptive Bayesian tracker) × every
//!   behavior mix, with per-cell entropy trajectories
//!   (`rcloak tournament`),
//! * [`render_ascii`] / [`render_svg()`](fn@render_svg) — the map visualizations (the GUI
//!   substitute; see DESIGN.md §1).
//!
//! The whole anonymize path works from `&self` (sharded record maps, an
//! `Arc`-swapped snapshot), so services are shared across threads through
//! a plain `Arc` — see the `service` module docs for the concurrency
//! model.
//!
//! ```
//! use anonymizer::{AnonymizerConfig, AnonymizerService, Deanonymizer, Engine};
//! use keystream::{Level, TrustDegree};
//! use mobisim::OccupancySnapshot;
//! use roadnet::{grid_city, SegmentId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_city(6, 6, 100.0);
//! let service = AnonymizerService::new(net, AnonymizerConfig::default());
//! service.update_snapshot(OccupancySnapshot::uniform(
//!     service.network().segment_count(),
//!     1,
//! ));
//! let receipt = service.anonymize_owner("alice", SegmentId(17), None, &mut rand::thread_rng())?;
//!
//! // Grant a requester full access and reduce to the exact segment.
//! service.register_requester("alice", "police", TrustDegree(10), Level(0));
//! let keys = service.fetch_keys("alice", "police")?;
//! let dean = Deanonymizer::new(
//!     service.network_arc(),
//!     Engine::build(service.network(), service.config().engine),
//! );
//! let view = dean.reduce(&receipt.payload, &keys)?;
//! assert_eq!(view.segments, vec![SegmentId(17)]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Pooled entry points
//!
//! On the serving hot path, a worker holds one [`cloak::CloakScratch`]
//! and anonymizes request after request through
//! [`AnonymizerService::anonymize_seeded_with`] with no steady-state
//! heap traffic beyond the receipt itself.
//! [`AnonymizerService::anonymize_batch`] goes further: each worker
//! holds a [`cloak::BatchCloakScratch`] and grows its whole chunk of
//! owners in one pass over shared table state — bit-identical to the
//! per-owner path (property-tested in `crates/cloak/tests/batch_prop.rs`).
//! Scratch is plain state: results are bit-identical for any scratch,
//! including a fresh one.
//!
//! ```
//! use anonymizer::{AnonymizerConfig, AnonymizerService};
//! use cloak::CloakScratch;
//! use mobisim::OccupancySnapshot;
//! use roadnet::{grid_city, SegmentId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = || {
//!     let net = grid_city(6, 6, 100.0);
//!     let service = AnonymizerService::new(net, AnonymizerConfig::default());
//!     service.update_snapshot(OccupancySnapshot::uniform(
//!         service.network().segment_count(),
//!         1,
//!     ));
//!     service
//! };
//!
//! // One worker, one scratch, many requests — allocation-free at
//! // steady state inside the cloak walk. Each anonymization ratchets
//! // the owner's forward-secret chain, so the comparison run uses a
//! // second identically-configured service at the same chain state.
//! let mut scratch = CloakScratch::new();
//! let pooled = build().anonymize_seeded_with("alice", SegmentId(17), None, 7, &mut scratch)?;
//! let fresh = build().anonymize_seeded("alice", SegmentId(17), None, 7)?;
//! assert_eq!(pooled.payload, fresh.payload, "scratch never changes results");
//! # Ok(())
//! # }
//! ```
//!
//! The system-level narrative — how the concurrency model, the temporal
//! pipeline, and the memory discipline fit together — lives in
//! `docs/ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch_input;
pub mod config;
pub mod deanonymizer;
pub mod fault;
pub mod pipeline;
pub mod render_ascii;
pub mod render_svg;
pub mod server;
pub mod service;
pub mod shard;
pub mod tournament;

pub use batch_input::{parse_batch_requests, BatchInput, RowError};
pub use config::{AnonymizerConfig, EngineChoice};
pub use deanonymizer::Deanonymizer;
pub use fault::{FaultInjector, FaultPlan, FaultPolicy, FaultyStore, TickHealth};
pub use pipeline::{
    AttackConfig, AttackRecord, AttackTickSummary, ContinuousPipeline, PipelineConfig,
    PipelineError, TickReport,
};
pub use render_ascii::{legend, render_map, render_regions};
pub use render_svg::render_svg;
pub use server::AnonymizerServer;
pub use service::{
    AnonymizeReceipt, AnonymizeRequest, AnonymizerService, Engine, OwnerHandoff, OwnerRecord,
};
pub use shard::{Partition, PartitionQuality, ShardTickReport, ShardedPipeline};
pub use tournament::{TournamentCell, TournamentProfile, TournamentReport, TrajectoryPoint};
