//! The De-anonymizer: the requester-side tool.
//!
//! "After fetching the access keys, the location data requesters can run
//! the de-anonymization algorithm and obtain the de-anonymized cloaking
//! region as visualized in the 'De-anonymizer' GUI."

use crate::service::Engine;
use cloak::{
    deanonymize, deanonymize_with_scratch, CloakPayload, CloakScratch, DeanonError,
    DeanonymizedView,
};
use keystream::{Key256, Level};
use roadnet::RoadNetwork;
use std::sync::Arc;

/// The requester-side de-anonymization tool.
pub struct Deanonymizer {
    net: Arc<RoadNetwork>,
    engine: Engine,
}

impl Deanonymizer {
    /// Creates a de-anonymizer sharing the anonymizer's map; the engine
    /// choice must match the payloads it will process.
    pub fn new(net: Arc<RoadNetwork>, engine: Engine) -> Self {
        Deanonymizer { net, engine }
    }

    /// Reduces an encoded payload with the fetched keys.
    ///
    /// # Errors
    ///
    /// Fails on malformed payloads or keys that do not match.
    pub fn reduce_encoded(
        &self,
        payload_bytes: &[u8],
        keys: &[(Level, Key256)],
    ) -> Result<DeanonymizedView, DeanonError> {
        let payload = CloakPayload::decode(payload_bytes)?;
        self.reduce(&payload, keys)
    }

    /// Reduces a decoded payload with the fetched keys.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent payloads or keys that do not match.
    pub fn reduce(
        &self,
        payload: &CloakPayload,
        keys: &[(Level, Key256)],
    ) -> Result<DeanonymizedView, DeanonError> {
        deanonymize(&self.net, payload, keys, self.engine.as_dyn())
    }

    /// [`reduce`](Self::reduce) with caller-owned scratch buffers — a
    /// verification loop peeling many receipts reuses one
    /// [`CloakScratch`]; results are bit-identical for any scratch state.
    ///
    /// # Errors
    ///
    /// Fails on inconsistent payloads or keys that do not match.
    pub fn reduce_with(
        &self,
        payload: &CloakPayload,
        keys: &[(Level, Key256)],
        scratch: &mut CloakScratch,
    ) -> Result<DeanonymizedView, DeanonError> {
        deanonymize_with_scratch(&self.net, payload, keys, self.engine.as_dyn(), scratch)
    }

    /// Batched form of [`reduce_with`](Self::reduce_with): peels a run of
    /// `(payload, keys)` jobs through **one** shared [`CloakScratch`], in
    /// job order — the per-tick verification leg of the continuous
    /// pipeline reduces a whole tick's receipts this way with no
    /// steady-state heap traffic between jobs. Each job's result is
    /// bit-identical to a standalone [`reduce`](Self::reduce) call.
    pub fn reduce_batch_with<'a, I>(
        &self,
        jobs: I,
        scratch: &mut CloakScratch,
    ) -> Vec<Result<DeanonymizedView, DeanonError>>
    where
        I: IntoIterator<Item = (&'a CloakPayload, &'a [(Level, Key256)])>,
    {
        jobs.into_iter()
            .map(|(payload, keys)| self.reduce_with(payload, keys, scratch))
            .collect()
    }

    /// Successive views while peeling one level at a time — what the
    /// De-anonymizer GUI animates. Index 0 is the untouched top level.
    ///
    /// # Errors
    ///
    /// Fails as [`Deanonymizer::reduce`] does at the failing prefix.
    pub fn peel_progressively(
        &self,
        payload: &CloakPayload,
        keys: &[(Level, Key256)],
    ) -> Result<Vec<DeanonymizedView>, DeanonError> {
        let mut views = Vec::with_capacity(keys.len() + 1);
        views.push(self.reduce(payload, &[])?);
        for take in 1..=keys.len() {
            views.push(self.reduce(payload, &keys[..take])?);
        }
        Ok(views)
    }
}

impl std::fmt::Debug for Deanonymizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deanonymizer")
            .field("engine", &self.engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AnonymizerConfig, EngineChoice};
    use crate::service::AnonymizerService;
    use keystream::TrustDegree;
    use mobisim::OccupancySnapshot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::{grid_city, SegmentId};

    fn setup(engine: EngineChoice) -> (AnonymizerService, Deanonymizer) {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let service = AnonymizerService::new(
            net,
            AnonymizerConfig {
                engine,
                ..Default::default()
            },
        );
        service.update_snapshot(snapshot);
        let dean = Deanonymizer::new(
            service.network_arc(),
            Engine::build(service.network(), engine),
        );
        (service, dean)
    }

    #[test]
    fn end_to_end_owner_to_requester() {
        for engine in [EngineChoice::Rge, EngineChoice::Rple { t_len: 8 }] {
            let (service, dean) = setup(engine);
            let mut rng = StdRng::seed_from_u64(7);
            let receipt = service
                .anonymize_owner("alice", SegmentId(24), None, &mut rng)
                .unwrap();
            service.register_requester("alice", "police", TrustDegree(10), Level(0));
            let keys = service.fetch_keys("alice", "police").unwrap();
            let bytes = receipt.payload.encode();
            let view = dean.reduce_encoded(&bytes, &keys).unwrap();
            assert_eq!(view.level, Level(0));
            assert_eq!(view.segments, vec![SegmentId(24)], "{engine:?}");
        }
    }

    #[test]
    fn progressive_peeling_shrinks_monotonically() {
        let (service, dean) = setup(EngineChoice::Rge);
        let mut rng = StdRng::seed_from_u64(8);
        let receipt = service
            .anonymize_owner("alice", SegmentId(30), None, &mut rng)
            .unwrap();
        service.register_requester("alice", "police", TrustDegree(10), Level(0));
        let keys = service.fetch_keys("alice", "police").unwrap();
        let views = dean.peel_progressively(&receipt.payload, &keys).unwrap();
        assert_eq!(views.len(), 4);
        for w in views.windows(2) {
            assert!(w[1].segments.len() <= w[0].segments.len());
            for seg in &w[1].segments {
                assert!(w[0].segments.contains(seg), "peeled views must nest");
            }
        }
        assert_eq!(views.last().unwrap().segments, vec![SegmentId(30)]);
    }

    #[test]
    fn partial_keys_reach_partial_level() {
        let (service, dean) = setup(EngineChoice::Rge);
        let mut rng = StdRng::seed_from_u64(9);
        let receipt = service
            .anonymize_owner("alice", SegmentId(30), None, &mut rng)
            .unwrap();
        service.register_requester("alice", "friend", TrustDegree(5), Level(2));
        let keys = service.fetch_keys("alice", "friend").unwrap();
        assert_eq!(keys.len(), 1);
        let view = dean.reduce(&receipt.payload, &keys).unwrap();
        assert_eq!(view.level, Level(2));
        assert!(view.segments.len() < receipt.payload.region_size());
        assert!(view.segments.len() > 1);
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        let (_, dean) = setup(EngineChoice::Rge);
        assert!(dean.reduce_encoded(b"not a payload", &[]).is_err());
    }
}
