//! The scenario tournament: every engine × every adversary × every
//! behavior mix, with per-cell entropy trajectories.
//!
//! The scenario matrix (`tests/scenario_matrix.rs`) checks functional
//! invariants per cell; the attack evaluation used to live there as two
//! ad-hoc cells (combined adversary only, homogeneous traffic only).
//! This module systematizes it into a **tournament**: the full cross
//! product of
//!
//! * **engines** — RGE and RPLE receipt streams, plus the keyless NRE
//!   control harvested from the pipeline's baseline leg,
//! * **adversaries** — every [`AdversaryMode`], from the naive peel
//!   intersection to the Bayesian trajectory particle filter,
//! * **behavior mixes** — every named [`BehaviorMix`] (homogeneous
//!   taxis, commuter city, taxi fleet, rush-hour wave), because an
//!   adaptive tracker is only meaningful against structured motion,
//!
//! recording for every cell the cumulative [`AttackSummary`] *and* the
//! per-tick identity-entropy trajectory (CSV-exportable, uploaded as CI
//! artifacts). The separation invariants the paper's privacy claim
//! rests on are asserted over this grid by `tests/tournament.rs`:
//!
//! 1. sound adversaries (move / all / adaptive) never place zero mass
//!    on the true segment, in any cell;
//! 2. RGE/RPLE hold ≥ ~`log2(k_top)` bits of user-identity entropy
//!    against **every** adversary — including the adaptive tracker —
//!    under **every** behavior mix;
//! 3. the NRE control collapses (below half a bit of segment entropy)
//!    against every replay-capable adversary.
//!
//! Sized by [`TournamentProfile`]: `quick` for tier-1/CI, `full` via
//! `TOURNAMENT_PROFILE=full` for the acceptance run. Exposed on the CLI
//! as `rcloak tournament --out DIR`.

use crate::config::{AnonymizerConfig, EngineChoice};
use crate::pipeline::{AttackConfig, ContinuousPipeline, PipelineConfig, TickReport};
use cloak::attack::temporal::{AdversaryMode, AttackSummary};
use cloak::{LevelRequirement, PrivacyProfile};
use mobisim::{BehaviorMix, SimConfig};

/// Size of a tournament run.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentProfile {
    /// Ticks per cell.
    pub ticks: usize,
    /// Simulated cars.
    pub cars: usize,
    /// Grid dimensions (`grid_city(rows, cols, 100.0)`).
    pub grid: (usize, usize),
    /// Tracked (and attacked) owners per cell.
    pub owners: usize,
    /// The k-profile every cell cloaks under; the separation bound is
    /// taken against the top k.
    pub ks: Vec<u32>,
    /// Seconds per tick.
    pub dt: f64,
}

impl TournamentProfile {
    /// The tier-1/CI profile: small enough to run the full 2×5×4 grid
    /// (plus NRE harvests) in seconds.
    pub fn quick() -> Self {
        TournamentProfile {
            ticks: 12,
            cars: 150,
            grid: (8, 8),
            owners: 6,
            ks: vec![4, 8],
            dt: 10.0,
        }
    }

    /// The acceptance profile (`TOURNAMENT_PROFILE=full`): long streams,
    /// denser traffic — the adaptive tracker gets a real trajectory to
    /// learn from.
    pub fn full() -> Self {
        TournamentProfile {
            ticks: 80,
            cars: 400,
            grid: (8, 8),
            owners: 8,
            ks: vec![4, 8],
            dt: 10.0,
        }
    }

    /// Reads `TOURNAMENT_PROFILE` (`full` → [`full`](Self::full),
    /// anything else → [`quick`](Self::quick)).
    pub fn from_env() -> Self {
        match std::env::var("TOURNAMENT_PROFILE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        }
    }

    /// The profile's name for logs/CSV provenance.
    pub fn name(&self) -> &'static str {
        if self.ticks >= Self::full().ticks {
            "full"
        } else {
            "quick"
        }
    }

    /// The top-level k the separation bound is taken against.
    pub fn k_top(&self) -> u32 {
        self.ks.last().copied().unwrap_or(1).max(1)
    }
}

/// The behavior mixes every engine × adversary pair runs under.
pub fn behavior_mixes() -> Vec<(&'static str, BehaviorMix)> {
    vec![
        ("uniform", BehaviorMix::uniform()),
        ("commuter", BehaviorMix::commuter_city()),
        ("taxi", BehaviorMix::taxi_fleet()),
        ("rush", BehaviorMix::rush_hour()),
    ]
}

/// One point of a cell's per-tick entropy trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// 1-based pipeline tick.
    pub tick: u64,
    /// Mean posterior segment entropy over the tick's observations.
    pub entropy_bits: f64,
    /// Mean user-identity entropy over the tick's observations (the
    /// k-anonymity axis).
    pub user_entropy_bits: f64,
    /// Mean anonymity-set size.
    pub support: f64,
    /// Observations folded into this point.
    pub observations: u64,
}

/// One tournament cell: engine × adversary × mix, with its cumulative
/// rollup and per-tick trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentCell {
    /// `"rge"` / `"rple"` for keyed streams, `"nre"` for the keyless
    /// deterministic control.
    pub scheme: &'static str,
    /// The adversary attacking this stream.
    pub adversary: AdversaryMode,
    /// Name of the behavior mix the traffic ran under.
    pub mix: &'static str,
    /// Cumulative attack rollup over the whole stream.
    pub summary: AttackSummary,
    /// Per-tick identity-entropy trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
}

impl TournamentCell {
    /// `scheme/adversary/mix`, the cell's display name.
    pub fn name(&self) -> String {
        format!("{}/{}/{}", self.scheme, self.adversary.name(), self.mix)
    }
}

/// The full tournament result.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentReport {
    /// Every cell of the grid (keyed schemes and NRE harvests).
    pub cells: Vec<TournamentCell>,
    /// The profile the tournament ran at.
    pub profile: TournamentProfile,
}

/// Header of [`TournamentReport::cells_csv`].
pub const CELLS_CSV_HEADER: &str = "scheme,adversary,mix,observations,mean_entropy_bits,\
     min_entropy_bits,mean_user_entropy_bits,min_user_entropy_bits,mean_support,mean_region,\
     guess_success,soundness,resets";

/// Header of [`TournamentReport::trajectories_csv`].
pub const TRAJECTORIES_CSV_HEADER: &str =
    "scheme,adversary,mix,tick,entropy_bits,user_entropy_bits,support,observations";

impl TournamentReport {
    /// Looks a cell up by coordinates.
    pub fn cell(
        &self,
        scheme: &str,
        adversary: AdversaryMode,
        mix: &str,
    ) -> Option<&TournamentCell> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.adversary == adversary && c.mix == mix)
    }

    /// Cells of one scheme.
    pub fn scheme_cells<'a>(
        &'a self,
        scheme: &'a str,
    ) -> impl Iterator<Item = &'a TournamentCell> + 'a {
        self.cells.iter().filter(move |c| c.scheme == scheme)
    }

    /// One row per cell: the cumulative rollups.
    pub fn cells_csv(&self) -> String {
        let mut csv = String::from(CELLS_CSV_HEADER);
        csv.push('\n');
        for c in &self.cells {
            let s = &c.summary;
            csv.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.2},{:.2},{:.4},{:.4},{}\n",
                c.scheme,
                c.adversary.name(),
                c.mix,
                s.observations(),
                s.mean_entropy(),
                s.min_entropy(),
                s.mean_user_entropy(),
                s.min_user_entropy(),
                s.mean_support(),
                s.mean_region(),
                s.guess_success_rate(),
                s.soundness(),
                s.resets(),
            ));
        }
        csv
    }

    /// One row per cell per tick: the identity-entropy trajectories (the
    /// CI artifact).
    pub fn trajectories_csv(&self) -> String {
        let mut csv = String::from(TRAJECTORIES_CSV_HEADER);
        csv.push('\n');
        for c in &self.cells {
            for p in &c.trajectory {
                csv.push_str(&format!(
                    "{},{},{},{},{:.4},{:.4},{:.2},{}\n",
                    c.scheme,
                    c.adversary.name(),
                    c.mix,
                    p.tick,
                    p.entropy_bits,
                    p.user_entropy_bits,
                    p.support,
                    p.observations,
                ));
            }
        }
        csv
    }
}

fn privacy_profile(ks: &[u32]) -> PrivacyProfile {
    let mut builder = PrivacyProfile::builder();
    for &k in ks {
        builder = builder.level(LevelRequirement::with_k(k));
    }
    builder.build().expect("tournament profiles are valid")
}

fn trajectory_point(tick: u64, summary: &AttackSummary) -> TrajectoryPoint {
    TrajectoryPoint {
        tick,
        entropy_bits: summary.mean_entropy(),
        user_entropy_bits: summary.mean_user_entropy(),
        support: summary.mean_support(),
        observations: summary.observations(),
    }
}

/// Runs one cell's pipeline and returns its tick reports plus the
/// cumulative engine/baseline rollups.
#[allow(clippy::type_complexity)]
fn run_stream(
    profile: &TournamentProfile,
    engine: EngineChoice,
    adversary: AdversaryMode,
    mix: &BehaviorMix,
    with_baseline: bool,
) -> Result<(Vec<TickReport>, AttackSummary, Option<AttackSummary>), String> {
    let mut pipeline = ContinuousPipeline::new(
        roadnet::grid_city(profile.grid.0, profile.grid.1, 100.0),
        SimConfig {
            cars: profile.cars,
            seed: 0x7009_a3e7,
            behavior: mix.clone(),
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            default_profile: privacy_profile(&profile.ks),
            ..Default::default()
        },
        PipelineConfig {
            dt: profile.dt,
            tracked_owners: profile.owners,
            seed: 0x7009_a3e7 ^ 0x51e_71c4,
            verify: false,
            lbs_probes: 0,
            attack: Some(AttackConfig {
                mode: adversary,
                baseline: with_baseline,
                keep_records: false,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let reports = pipeline.run(profile.ticks).map_err(|e| e.to_string())?;
    let engine_summary = pipeline.attack_summary().expect("attack leg is on").clone();
    let baseline_summary = pipeline.baseline_attack_summary().cloned();
    Ok((reports, engine_summary, baseline_summary))
}

/// Runs the full tournament grid: for every behavior mix and adversary,
/// both keyed engines — with the NRE control harvested once per
/// (adversary, mix) from the RGE run's baseline leg (the control's
/// receipt stream is engine-independent, so a second harvest would
/// duplicate the cell).
pub fn run(profile: &TournamentProfile) -> Result<TournamentReport, String> {
    let engines = [
        ("rge", EngineChoice::Rge),
        ("rple", EngineChoice::Rple { t_len: 10 }),
    ];
    let mut cells = Vec::new();
    for (mix_name, mix) in behavior_mixes() {
        for adversary in AdversaryMode::ALL {
            for (scheme, engine) in engines {
                let with_baseline = scheme == "rge";
                let (reports, summary, baseline) =
                    run_stream(profile, engine, adversary, &mix, with_baseline)
                        .map_err(|e| format!("{scheme}/{}/{mix_name}: {e}", adversary.name()))?;
                cells.push(TournamentCell {
                    scheme,
                    adversary,
                    mix: mix_name,
                    summary,
                    trajectory: reports
                        .iter()
                        .filter_map(|r| {
                            r.attack
                                .as_ref()
                                .map(|a| trajectory_point(r.tick, &a.engine))
                        })
                        .collect(),
                });
                if let Some(baseline) = baseline {
                    cells.push(TournamentCell {
                        scheme: "nre",
                        adversary,
                        mix: mix_name,
                        summary: baseline,
                        trajectory: reports
                            .iter()
                            .filter_map(|r| {
                                r.attack.as_ref().and_then(|a| {
                                    a.baseline.as_ref().map(|b| trajectory_point(r.tick, b))
                                })
                            })
                            .collect(),
                    });
                }
            }
        }
    }
    Ok(TournamentReport {
        cells,
        profile: profile.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_and_named() {
        let quick = TournamentProfile::quick();
        let full = TournamentProfile::full();
        assert!(quick.ticks < full.ticks);
        assert_eq!(quick.name(), "quick");
        assert_eq!(full.name(), "full");
        assert_eq!(quick.k_top(), 8);
    }

    #[test]
    fn mixes_cover_the_named_grid() {
        let mixes = behavior_mixes();
        assert_eq!(mixes.len(), 4);
        assert_eq!(mixes[0].0, "uniform");
        assert_eq!(mixes[0].1, BehaviorMix::Uniform);
    }

    #[test]
    fn csv_headers_match_row_arity() {
        // A minimal one-cell report round-trips through both CSV forms
        // with the right column counts.
        let report = TournamentReport {
            cells: vec![TournamentCell {
                scheme: "rge",
                adversary: AdversaryMode::All,
                mix: "uniform",
                summary: AttackSummary::new(),
                trajectory: vec![TrajectoryPoint {
                    tick: 1,
                    entropy_bits: 2.0,
                    user_entropy_bits: 3.0,
                    support: 8.0,
                    observations: 6,
                }],
            }],
            profile: TournamentProfile::quick(),
        };
        let cells = report.cells_csv();
        let header_cols = CELLS_CSV_HEADER.split(',').count();
        for line in cells.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
        }
        let traj = report.trajectories_csv();
        let header_cols = TRAJECTORIES_CSV_HEADER.split(',').count();
        for line in traj.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
        }
        assert!(report.cell("rge", AdversaryMode::All, "uniform").is_some());
        assert!(report.cell("nre", AdversaryMode::All, "uniform").is_none());
    }
}
