//! Anonymizer configuration: the parameter surface of the paper's
//! 'Anonymizer' GUI (Figure 4).
//!
//! "The location data owner first specifies the set of anonymization
//! parameters, including the expected number of anonymity levels, the
//! value of k for k-anonymization in each level, the spatial tolerance to
//! restrict the allowed maximum area of cloaking region and the access key
//! for each level." Plus the GUI's 'Default setting' function, provided by
//! [`AnonymizerConfig::default`].

use cloak::{LevelRequirement, PrivacyProfile, SpatialTolerance};
use serde::{Deserialize, Serialize};

/// Which cloaking algorithm the service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineChoice {
    /// Reversible Global Expansion.
    #[default]
    Rge,
    /// Reversible Pre-assignment-based Local Expansion with the given
    /// transition-list length `T`.
    Rple {
        /// Transition-list length (Algorithm 1's `T`).
        t_len: usize,
    },
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnonymizerConfig {
    /// The algorithm to run.
    pub engine: EngineChoice,
    /// The default privacy profile applied when an owner does not supply
    /// one (the GUI's 'Default setting').
    pub default_profile: PrivacyProfile,
    /// Attempts for dead-ended walks before reporting failure.
    pub max_attempts: u32,
    /// Shards for the owner-record and requester-registry maps. More
    /// shards mean less lock contention between concurrent requests for
    /// different owners; values past the worker count buy little.
    pub shard_count: usize,
    /// Worker threads for `AnonymizerService::anonymize_batch`
    /// (`0` = all available cores).
    pub batch_parallelism: usize,
}

impl Default for AnonymizerConfig {
    fn default() -> Self {
        AnonymizerConfig {
            engine: EngineChoice::default(),
            default_profile: PrivacyProfile::builder()
                .level(LevelRequirement::with_k(5))
                .level(LevelRequirement::with_k(10))
                .level(
                    LevelRequirement::with_k(20).tolerance(SpatialTolerance::TotalLength(20_000.0)),
                )
                .build()
                .expect("default profile is valid"),
            max_attempts: 8,
            shard_count: 16,
            batch_parallelism: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_three_levels() {
        let cfg = AnonymizerConfig::default();
        assert_eq!(cfg.default_profile.level_count(), 3);
        assert_eq!(cfg.engine, EngineChoice::Rge);
        assert!(cfg.max_attempts >= 1);
        assert!(cfg.shard_count >= 1);
        assert_eq!(cfg.batch_parallelism, 0, "0 means all cores");
    }

    #[test]
    fn engine_choice_roundtrips_through_serde_derive() {
        // Compile-time smoke check that the types derive what they claim.
        let c = EngineChoice::Rple { t_len: 8 };
        let c2 = c;
        assert_eq!(c, c2);
    }
}
