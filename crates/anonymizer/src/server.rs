//! A concurrent anonymization server.
//!
//! The paper's toolkit "sends the parameters and access keys to a trusted
//! anonymization server". This module runs the [`AnonymizerService`]
//! behind a crossbeam channel with a pool of worker threads, serving many
//! owners concurrently — the shape a real deployment would take.
//!
//! The service's whole anonymize path works from `&self` (sharded record
//! maps, snapshot behind an `Arc` swap), so every worker holds a plain
//! `Arc<AnonymizerService>` and requests for different owners run fully
//! in parallel: adding workers adds throughput. There is no global lock.

use crate::config::AnonymizerConfig;
use crate::service::{AnonymizeReceipt, AnonymizeRequest, AnonymizerService};
use cloak::{CloakError, PrivacyProfile};
use crossbeam::channel::{bounded, Sender};
use roadnet::{RoadNetwork, SegmentId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// An anonymization job submitted to the server.
struct Job {
    request: AnonymizeRequest,
    reply: Sender<(usize, Result<AnonymizeReceipt, CloakError>)>,
    index: usize,
}

/// Handle to a running anonymization server.
///
/// Dropping the handle shuts the workers down after the queued jobs
/// drain.
///
/// ```
/// use anonymizer::{AnonymizerConfig, AnonymizerServer};
/// use mobisim::OccupancySnapshot;
/// use roadnet::{grid_city, SegmentId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = grid_city(6, 6, 100.0);
/// let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
/// let server = AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), 2, 42);
/// let receipt = server.anonymize("alice", SegmentId(10), None)?;
/// assert!(receipt.payload.region_size() >= 20);
/// assert!(server.service().owner_record("alice").is_some());
/// # Ok(())
/// # }
/// ```
pub struct AnonymizerServer {
    service: Arc<AnonymizerService>,
    submit: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    base_seed: u64,
    job_counter: AtomicU64,
}

/// Derives the per-job seed from the server seed and job number, so
/// results are reproducible regardless of which worker runs the job.
fn job_seed(base: u64, n: u64) -> u64 {
    crate::service::splitmix64(base ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl AnonymizerServer {
    /// Starts the server with `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn start(
        net: RoadNetwork,
        snapshot: mobisim::OccupancySnapshot,
        config: AnonymizerConfig,
        workers: usize,
        seed: u64,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let service = AnonymizerService::new(net, config);
        service.update_snapshot(snapshot);
        let service = Arc::new(service);
        let (tx, rx) = bounded::<Job>(1024);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = rx.clone();
            let service = Arc::clone(&service);
            handles.push(std::thread::spawn(move || {
                // Scratch pool for this worker's lifetime: steady-state
                // jobs run allocation-free inside the cloak walk.
                let mut scratch = cloak::CloakScratch::new();
                while let Ok(job) = rx.recv() {
                    // The anonymize path is `&self`: workers proceed in
                    // parallel, contending only on the owner's record
                    // shard for the final store.
                    let Job {
                        request,
                        reply,
                        index,
                    } = job;
                    let result = service.anonymize_seeded_with(
                        &request.owner,
                        request.segment,
                        request.profile.as_ref(),
                        request.seed,
                        &mut scratch,
                    );
                    let _ = reply.send((index, result));
                }
            }));
        }
        AnonymizerServer {
            service,
            submit: Some(tx),
            workers: handles,
            base_seed: seed,
            job_counter: AtomicU64::new(0),
        }
    }

    fn next_seed(&self) -> u64 {
        job_seed(
            self.base_seed,
            self.job_counter.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// A fresh request seed derived from the server seed and an internal
    /// counter, for callers that do not need to pin request randomness.
    pub fn derive_seed(&self) -> u64 {
        self.next_seed()
    }

    /// Anonymizes synchronously through the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] from the worker.
    pub fn anonymize(
        &self,
        owner: &str,
        segment: SegmentId,
        profile: Option<PrivacyProfile>,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.submit
            .as_ref()
            .expect("server is running")
            .send(Job {
                request: AnonymizeRequest {
                    owner: owner.to_string(),
                    segment,
                    profile,
                    seed: self.next_seed(),
                },
                reply: reply_tx,
                index: 0,
            })
            .expect("workers are alive while the handle exists");
        reply_rx
            .recv()
            .map(|(_, result)| result)
            .expect("worker replies before dropping the job")
    }

    /// Anonymizes a whole batch through the worker pool, pipelining all
    /// jobs at once and collecting results in request order. Every
    /// request's `seed` is honored as given (use
    /// [`AnonymizerServer::derive_seed`] for server-derived seeds), so a
    /// batch of distinct owners is reproducible no matter how many
    /// workers serve it. When a batch repeats an owner, worker scheduling
    /// decides which chain epoch each duplicate draws; the last duplicate
    /// is re-run sequentially afterwards so its returned receipt and the
    /// stored record agree (last-wins).
    pub fn anonymize_batch(
        &self,
        requests: Vec<AnonymizeRequest>,
    ) -> Vec<Result<AnonymizeReceipt, CloakError>> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        // Duplicated owners race on the stored record across workers;
        // remember each such owner's last request so the record can be
        // pinned to sequential (last-wins) semantics after the batch.
        let mut per_owner = std::collections::HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            let entry = per_owner.entry(r.owner.as_str()).or_insert((0usize, i));
            entry.0 += 1;
            entry.1 = i;
        }
        let reruns: Vec<(usize, AnonymizeRequest)> = per_owner
            .values()
            .filter(|(count, _)| *count > 1)
            .map(|&(_, last)| (last, requests[last].clone()))
            .collect();
        let (reply_tx, reply_rx) = bounded(n);
        let submit = self.submit.as_ref().expect("server is running");
        for (index, request) in requests.into_iter().enumerate() {
            submit
                .send(Job {
                    request,
                    reply: reply_tx.clone(),
                    index,
                })
                .expect("workers are alive while the handle exists");
        }
        drop(reply_tx);
        let mut results: Vec<Option<Result<AnonymizeReceipt, CloakError>>> =
            (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, result) = reply_rx
                .recv()
                .expect("every job replies before its sender drops");
            results[index] = Some(result);
        }
        // Pin stored records for duplicated owners. Worker scheduling
        // decides which epoch each duplicate drew from the owner's
        // forward-secret chain, so the re-run ratchets once more and
        // *replaces* the last request's returned receipt too — stored
        // record and returned result stay the same (last-wins) receipt.
        for (last, r) in reruns {
            results[last] = Some(self.service.anonymize_seeded(
                &r.owner,
                r.segment,
                r.profile.as_ref(),
                r.seed,
            ));
        }
        results
            .into_iter()
            .map(|r| r.expect("every index received exactly one reply"))
            .collect()
    }

    /// Shared access to the underlying service (for key fetches, record
    /// inspection, and snapshot updates — all `&self`).
    pub fn service(&self) -> Arc<AnonymizerService> {
        Arc::clone(&self.service)
    }

    /// Installs a fresh traffic snapshot, swapping the shared `Arc`
    /// without blocking in-flight jobs — the streaming-pipeline hook: a
    /// snapshot feed can refresh occupancy while the workers keep
    /// serving, and each request is judged against the snapshot current
    /// when it started.
    pub fn update_snapshot(&self, snapshot: mobisim::OccupancySnapshot) {
        self.service.update_snapshot(snapshot);
    }

    /// Stops the workers after draining queued jobs.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.submit.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for AnonymizerServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    fn start(workers: usize) -> AnonymizerServer {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), workers, 1)
    }

    #[test]
    fn serves_one_request() {
        let server = start(2);
        let receipt = server.anonymize("alice", SegmentId(10), None).unwrap();
        assert!(receipt.payload.region_size() >= 20);
        assert!(server.service().owner_record("alice").is_some());
        server.shutdown();
    }

    #[test]
    fn serves_parallel_requests_from_many_threads() {
        let server = Arc::new(start(4));
        let mut joins = Vec::new();
        for i in 0..16 {
            let server = Arc::clone(&server);
            joins.push(std::thread::spawn(move || {
                let owner = format!("owner-{i}");
                let seg = SegmentId((i * 3) % 80);
                server.anonymize(&owner, seg, None).map(|r| {
                    assert!(r.payload.contains(seg));
                    r.payload.region_size()
                })
            }));
        }
        let mut ok = 0;
        for j in joins {
            if j.join().unwrap().is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 16);
        // All records stored.
        let service = server.service();
        for i in 0..16 {
            assert!(service.owner_record(&format!("owner-{i}")).is_some());
        }
    }

    #[test]
    fn batch_runs_through_the_pool_in_order() {
        let server = start(4);
        let requests: Vec<AnonymizeRequest> = (0..32)
            .map(|i| {
                AnonymizeRequest::new(format!("owner-{i}"), SegmentId(i * 3 % 80), 500 + i as u64)
            })
            .collect();
        let results = server.anonymize_batch(requests.clone());
        assert_eq!(results.len(), 32);
        let service = server.service();
        for (req, result) in requests.iter().zip(&results) {
            let receipt = result.as_ref().unwrap();
            assert!(receipt.payload.contains(req.segment), "{}", req.owner);
            // Order preserved: result i belongs to request i.
            let stored = service.owner_record(&req.owner).unwrap();
            assert_eq!(stored.payload, receipt.payload);
        }
    }

    #[test]
    fn batch_seeds_make_results_reproducible() {
        let a = start(4);
        let b = start(2);
        let requests: Vec<AnonymizeRequest> = (0..8)
            .map(|i| AnonymizeRequest::new(format!("o{i}"), SegmentId(i * 5 % 80), 900 + i as u64))
            .collect();
        let ra = a.anonymize_batch(requests.clone());
        let rb = b.anonymize_batch(requests);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.as_ref().unwrap().payload, y.as_ref().unwrap().payload);
        }
    }

    #[test]
    fn snapshot_update_reaches_the_workers() {
        let server = start(2);
        let n = server.service().network().segment_count();
        server.update_snapshot(OccupancySnapshot::uniform(n, 7));
        assert_eq!(server.service().snapshot().users_on(SegmentId(0)), 7);
        server.shutdown();
    }

    #[test]
    fn error_propagates() {
        let server = start(1);
        let err = server.anonymize("bob", SegmentId(9999), None).unwrap_err();
        assert!(matches!(err, CloakError::UnknownSegment(_)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let net = grid_city(2, 2, 10.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let _ = AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), 0, 1);
    }
}
