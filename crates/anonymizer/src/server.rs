//! A concurrent anonymization server.
//!
//! The paper's toolkit "sends the parameters and access keys to a trusted
//! anonymization server". This module runs the [`AnonymizerService`]
//! behind a crossbeam channel with a pool of worker threads, serving many
//! owners concurrently — the shape a real deployment would take.

use crate::config::AnonymizerConfig;
use crate::service::{AnonymizeReceipt, AnonymizerService};
use cloak::{CloakError, PrivacyProfile};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{RoadNetwork, SegmentId};
use std::sync::Arc;
use std::thread::JoinHandle;

/// An anonymization job submitted to the server.
struct Job {
    owner: String,
    segment: SegmentId,
    profile: Option<PrivacyProfile>,
    reply: Sender<Result<AnonymizeReceipt, CloakError>>,
}

/// Handle to a running anonymization server.
///
/// Dropping the handle shuts the workers down after the queued jobs
/// drain.
///
/// ```
/// use anonymizer::{AnonymizerConfig, AnonymizerServer};
/// use mobisim::OccupancySnapshot;
/// use roadnet::{grid_city, SegmentId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = grid_city(6, 6, 100.0);
/// let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
/// let server = AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), 2, 42);
/// let receipt = server.anonymize("alice", SegmentId(10), None)?;
/// assert!(receipt.payload.region_size() >= 20);
/// # Ok(())
/// # }
/// ```
pub struct AnonymizerServer {
    service: Arc<Mutex<AnonymizerService>>,
    submit: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl AnonymizerServer {
    /// Starts the server with `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn start(
        net: RoadNetwork,
        snapshot: mobisim::OccupancySnapshot,
        config: AnonymizerConfig,
        workers: usize,
        seed: u64,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut service = AnonymizerService::new(net, config);
        service.update_snapshot(snapshot);
        let service = Arc::new(Mutex::new(service));
        let (tx, rx) = bounded::<Job>(1024);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx = rx.clone();
            let service = Arc::clone(&service);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    // The engine holds per-map state (RPLE tables), so the
                    // whole service runs under one lock; contention is on
                    // the anonymization itself, which is the measured cost
                    // anyway.
                    let result = service.lock().anonymize_owner(
                        &job.owner,
                        job.segment,
                        job.profile,
                        &mut rng,
                    );
                    let _ = job.reply.send(result);
                }
            }));
        }
        AnonymizerServer {
            service,
            submit: Some(tx),
            workers: handles,
        }
    }

    /// Anonymizes synchronously through the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates [`CloakError`] from the worker.
    pub fn anonymize(
        &self,
        owner: &str,
        segment: SegmentId,
        profile: Option<PrivacyProfile>,
    ) -> Result<AnonymizeReceipt, CloakError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.submit
            .as_ref()
            .expect("server is running")
            .send(Job {
                owner: owner.to_string(),
                segment,
                profile,
                reply: reply_tx,
            })
            .expect("workers are alive while the handle exists");
        reply_rx
            .recv()
            .expect("worker replies before dropping the job")
    }

    /// Shared access to the underlying service (for key fetches and
    /// record inspection).
    pub fn service(&self) -> Arc<Mutex<AnonymizerService>> {
        Arc::clone(&self.service)
    }

    /// Stops the workers after draining queued jobs.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.submit.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for AnonymizerServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    fn start(workers: usize) -> AnonymizerServer {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), workers, 1)
    }

    #[test]
    fn serves_one_request() {
        let server = start(2);
        let receipt = server.anonymize("alice", SegmentId(10), None).unwrap();
        assert!(receipt.payload.region_size() >= 20);
        assert!(server
            .service()
            .lock()
            .owner_record("alice")
            .is_some());
        server.shutdown();
    }

    #[test]
    fn serves_parallel_requests_from_many_threads() {
        let server = Arc::new(start(4));
        let mut joins = Vec::new();
        for i in 0..16 {
            let server = Arc::clone(&server);
            joins.push(std::thread::spawn(move || {
                let owner = format!("owner-{i}");
                let seg = SegmentId((i * 3) % 80);
                server.anonymize(&owner, seg, None).map(|r| {
                    assert!(r.payload.contains(seg));
                    r.payload.region_size()
                })
            }));
        }
        let mut ok = 0;
        for j in joins {
            if j.join().unwrap().is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 16);
        // All records stored.
        let service = server.service();
        let guard = service.lock();
        for i in 0..16 {
            assert!(guard.owner_record(&format!("owner-{i}")).is_some());
        }
    }

    #[test]
    fn error_propagates() {
        let server = start(1);
        let err = server.anonymize("bob", SegmentId(9999), None).unwrap_err();
        assert!(matches!(err, CloakError::UnknownSegment(_)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let net = grid_city(2, 2, 10.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let _ = AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), 0, 1);
    }
}
