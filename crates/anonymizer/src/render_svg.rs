//! SVG rendering of road networks and multi-level cloaking regions — the
//! colored-region view of the paper's Anonymizer screenshot (Figure 4).

use keystream::Level;
use roadnet::{RoadNetwork, SegmentId};
use std::collections::HashMap;

/// Per-level stroke colors (level 0 first), echoing typical map overlays.
const LEVEL_COLORS: [&str; 6] = [
    "#d62728", // L0 red: the user's segment
    "#ff7f0e", // L1 orange
    "#2ca02c", // L2 green
    "#1f77b4", // L3 blue
    "#9467bd", // L4 purple
    "#8c564b", // L5 brown
];

/// Road color for uncloaked segments.
const ROAD_COLOR: &str = "#c8c8c8";

/// Renders an SVG of the network with nested level regions; cloaked
/// segments take the color of their lowest containing level and a wider
/// stroke.
///
/// `regions` lists `(level, segments)` pairs (cumulative regions nest, as
/// produced by `AnonymizerService::level_regions`).
pub fn render_svg(net: &RoadNetwork, regions: &[(Level, Vec<SegmentId>)], width_px: u32) -> String {
    let bb = net.bounding_box();
    let aspect = if bb.width() > 0.0 {
        (bb.height() / bb.width()).max(0.05)
    } else {
        1.0
    };
    let height_px = (width_px as f64 * aspect).ceil() as u32;
    let pad = 8.0;
    let sx = (width_px as f64 - 2.0 * pad) / bb.width().max(1e-9);
    let sy = (height_px as f64 - 2.0 * pad) / bb.height().max(1e-9);

    let mut color: HashMap<SegmentId, (&str, f64)> = HashMap::new();
    let mut sorted: Vec<&(Level, Vec<SegmentId>)> = regions.iter().collect();
    sorted.sort_by_key(|(l, _)| std::cmp::Reverse(*l));
    for (level, segs) in sorted {
        let c = LEVEL_COLORS[(level.0 as usize).min(LEVEL_COLORS.len() - 1)];
        let w = if level.0 == 0 { 4.0 } else { 2.5 };
        for s in segs {
            color.insert(*s, (c, w));
        }
    }

    let project = |x: f64, y: f64| -> (f64, f64) {
        (
            pad + (x - bb.min.x) * sx,
            // Flip y so north is up.
            height_px as f64 - pad - (y - bb.min.y) * sy,
        )
    };

    let mut svg = String::with_capacity(net.segment_count() * 90 + 512);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" height=\"{height_px}\" \
         viewBox=\"0 0 {width_px} {height_px}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n"
    ));
    // Plain roads first, cloaked segments on top.
    for pass in 0..2 {
        for seg in net.segments() {
            let styled = color.get(&seg.id());
            if (pass == 0) != styled.is_none() {
                continue;
            }
            let (stroke, w) = styled.copied().unwrap_or((ROAD_COLOR, 1.0));
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            let (x1, y1) = project(pa.x, pa.y);
            let (x2, y2) = project(pb.x, pb.y);
            svg.push_str(&format!(
                "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
                 stroke=\"{stroke}\" stroke-width=\"{w}\"/>\n"
            ));
        }
    }
    // Legend.
    let mut y = 16.0;
    for (level, _) in regions {
        let c = LEVEL_COLORS[(level.0 as usize).min(LEVEL_COLORS.len() - 1)];
        svg.push_str(&format!(
            "<rect x=\"10\" y=\"{:.0}\" width=\"12\" height=\"12\" fill=\"{c}\"/>\
             <text x=\"26\" y=\"{:.0}\" font-size=\"12\" font-family=\"sans-serif\">L{}</text>\n",
            y - 10.0,
            y,
            level.0
        ));
        y += 16.0;
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    #[test]
    fn svg_has_all_segments_and_legend() {
        let net = grid_city(4, 4, 100.0);
        let regions = vec![
            (Level(0), vec![SegmentId(0)]),
            (Level(1), vec![SegmentId(0), SegmentId(1)]),
        ];
        let svg = render_svg(&net, &regions, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<line").count(), net.segment_count());
        assert!(svg.contains(LEVEL_COLORS[0]));
        assert!(svg.contains(LEVEL_COLORS[1]));
        assert!(svg.contains(">L0<") && svg.contains(">L1<"));
    }

    #[test]
    fn plain_map_has_only_road_color() {
        let net = grid_city(3, 3, 100.0);
        let svg = render_svg(&net, &[], 300);
        assert!(svg.contains(ROAD_COLOR));
        assert!(!svg.contains(LEVEL_COLORS[0]));
    }

    #[test]
    fn cloaked_segments_use_level_color_not_road_color() {
        let net = grid_city(2, 2, 100.0);
        // All four segments cloaked at L1.
        let all: Vec<SegmentId> = net.segment_ids().collect();
        let svg = render_svg(&net, &[(Level(1), all)], 200);
        assert!(!svg.contains(ROAD_COLOR));
        assert!(svg.contains(LEVEL_COLORS[1]));
    }
}
