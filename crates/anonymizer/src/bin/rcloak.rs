//! `rcloak` — the ReverseCloak toolkit as a command-line tool.
//!
//! The shell-driven equivalent of the paper's Anonymizer / De-anonymizer
//! GUIs. Owners generate maps and keys, cloak a segment, and publish the
//! payload; requesters reduce payloads with the keys they were given.
//!
//! ```text
//! rcloak map --out city.map [--atlanta | --grid 10x10] [--seed N]
//! rcloak keys --levels 3 [--seed N] [--out keyring.txt]
//! rcloak anonymize --map city.map --segment 40 --k 5,10,20 \
//!        (--keys k1,k2,k3 | --keyring keyring.txt) [--engine rge|rple]
//!        [--cars 10000] [--out cloak.bin] [--svg out.svg]
//! rcloak deanonymize --map city.map --payload cloak.bin \
//!        (--keys k3,k2 | --keyring keyring.txt) [--engine rge|rple]
//! rcloak render --map city.map [--payload cloak.bin] [--width 100] [--height 40]
//! rcloak batch --map city.map --input requests.csv [--engine rge|rple]
//!        [--workers N] [--cars N] [--seed N] [--out results.csv]
//! rcloak simulate --ticks 100 --cars 1000 [--grid RxC | --map city.map]
//!        [--engine rge|rple] [--k 5,10,20] [--owners N] [--cadence N]
//!        [--dt SECONDS] [--lbs N] [--seed N] [--out metrics.csv] [--no-verify]
//!        [--chain-store journal.rcs] [--shards N]
//!        [--attack peel|correlate|move|all|adaptive] [--no-baseline]
//! rcloak attack --ticks 100 --cars 1000 [--grid RxC | --map city.map]
//!        [--engine rge|rple] [--adversary peel|correlate|move|all|adaptive]
//!        [--k 5,10,20] [--owners N] [--cadence N] [--dt SECONDS] [--seed N]
//!        [--out attack.csv] [--no-baseline]
//! rcloak tournament --out DIR [--profile quick|full]
//! ```
//!
//! `batch` reads one `owner,segment` pair per CSV line (blank lines and
//! `#` comments skipped), fans the requests across the server's worker
//! pool, and reports one result line per request in input order.
//! Malformed rows are reported individually on stderr with their line
//! numbers; the valid rows still run, and the exit code is 1 when any
//! row was malformed.
//!
//! `simulate` runs the continuous anonymization pipeline: traffic ticks,
//! snapshot swaps every `--cadence` ticks, batched re-anonymization of
//! `--owners` tracked cars, LBS probes, and (unless `--no-verify`)
//! per-receipt verification of exact reversibility, issue-time
//! k-anonymity, and grant preservation. With `--chain-store PATH` every
//! owner's key-chain ratchet is journaled to a crash-safe write-ahead
//! log at `PATH` before its receipt is issued, and re-running over the
//! same path resumes every chain at its journaled epoch (no epoch
//! reuse). Everywhere a `--map FILE` is accepted, the spec
//! `city:SEED:SEGMENTS` (e.g. `city:7:100000`) generates a synthetic
//! city of about that many segments in memory instead; with
//! `--shards N` (> 1) the simulation runs the sharded pipeline — the
//! map is partitioned N ways, each shard anonymizes the owners driving
//! inside it against its own masked snapshot, and owners migrate
//! between shards at tick boundaries (`--attack`/`--lbs` stay
//! single-shard instruments). Per-tick metrics go to `--out`
//! as CSV; with `--attack MODE` the attack leg runs alongside and the
//! CSV gains its per-tick rollup columns (engine stream and NRE
//! control — `--no-baseline` disables the control and leaves its cells
//! empty).
//!
//! `attack` runs the same pipeline with the continuous adversarial
//! evaluation on: a keyless temporal adversary subscribes to the receipt
//! stream (multi-tick peel intersection, snapshot correlation,
//! movement-model pruning — pick with `--adversary`), with a
//! non-reversible random-expansion (NRE) control cloaked side-by-side as
//! the vulnerable comparison (`--no-baseline` disables it). The summary
//! compares posterior entropy, anonymity-set size and guess success per
//! stream; the per-owner/per-tick log goes to `--out` as CSV. The
//! `adaptive` adversary is the Bayesian trajectory particle filter
//! (`cloak::attack::adaptive`).
//!
//! `tournament` runs the full scenario tournament — every engine
//! (RGE / RPLE / NRE control) × every adversary × every behavior mix —
//! and writes `cells.csv` (cumulative rollups) and `trajectories.csv`
//! (per-cell per-tick identity-entropy trajectories) into `--out DIR`.
//! `--profile` (default: the `TOURNAMENT_PROFILE` environment variable,
//! falling back to `quick`) picks the grid size.
//!
//! Keys are 64-digit hex strings; `--keys` lists them **top level first**
//! for `deanonymize` and **level 1 first** for `anonymize` (matching the
//! paper's `Key_i` numbering).

use anonymizer::{render_regions, render_svg, Engine, EngineChoice};
use cloak::{anonymize_with_retry, deanonymize, CloakPayload, LevelRequirement, PrivacyProfile};
use keystream::{Key256, Level};
use mobisim::{OccupancySnapshot, SimConfig, Simulation};
use roadnet::{RoadNetwork, SegmentId};
use std::collections::HashMap;
use std::io::BufReader;
use std::process::ExitCode;

/// How a subcommand failed: `Usage` errors print the usage text and exit
/// 2; `Data` errors (bad input data, invariant violations) print only the
/// message and exit 1, so scripts can tell them apart.
enum CmdError {
    Usage(String),
    Data(String),
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError::Usage(message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage("missing subcommand");
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let result = match cmd.as_str() {
        "map" => cmd_map(&opts).map_err(CmdError::from),
        "keys" => cmd_keys(&opts).map_err(CmdError::from),
        "anonymize" => cmd_anonymize(&opts).map_err(CmdError::from),
        "deanonymize" => cmd_deanonymize(&opts),
        "render" => cmd_render(&opts),
        "batch" => cmd_batch(&opts),
        "simulate" => cmd_simulate(&opts),
        "attack" => cmd_attack(&opts),
        "tournament" => cmd_tournament(&opts),
        other => Err(CmdError::Usage(format!("unknown subcommand `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Usage(e)) => usage(&e),
        Err(CmdError::Data(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage:\n  rcloak map --out FILE [--atlanta | --grid RxC] [--seed N]\n  \
         rcloak keys --levels N [--seed N] [--out keyring.txt]\n  \
         rcloak anonymize --map FILE --segment ID --k K1,K2,.. --keys HEX,.. \
         [--engine rge|rple] [--cars N] [--seed N] [--out FILE] [--svg FILE]\n  \
         rcloak deanonymize --map FILE --payload FILE (--keys HEX,.. | --keyring FILE) [--engine rge|rple]\n  \
         rcloak render --map FILE [--payload FILE] [--width W] [--height H]\n  \
         rcloak batch --map FILE --input FILE [--engine rge|rple] [--workers N] [--cars N] [--seed N] [--out FILE]\n  \
         rcloak simulate --ticks N --cars N [--grid RxC | --map FILE] [--engine rge|rple] \
         [--k K1,K2,..] [--owners N] [--cadence N] [--dt S] [--lbs N] [--seed N] [--out FILE] [--no-verify] \
         [--chain-store FILE] [--shards N] [--attack peel|correlate|move|all|adaptive] [--no-baseline]\n  \
         (any --map FILE also accepts city:SEED:SEGMENTS, a generated synthetic city)\n  \
         rcloak attack --ticks N --cars N [--grid RxC | --map FILE] [--engine rge|rple] \
         [--adversary peel|correlate|move|all|adaptive] [--k K1,K2,..] [--owners N] [--cadence N] [--dt S] \
         [--seed N] [--out FILE] [--no-baseline]\n  \
         rcloak tournament --out DIR [--profile quick|full]"
    );
    ExitCode::from(2)
}

type Opts = HashMap<String, String>;

/// Flags that take no value.
const BOOL_FLAGS: [&str; 3] = ["atlanta", "no-verify", "no-baseline"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if BOOL_FLAGS.contains(&name) {
            opts.insert(name.to_string(), "true".into());
            i += 1;
            continue;
        }
        i += 1;
        let value = args
            .get(i)
            .ok_or_else(|| format!("--{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
        i += 1;
    }
    Ok(opts)
}

fn get_seed(opts: &Opts) -> u64 {
    opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Parses an `RxC` grid spec into a network, rejecting zero dimensions
/// (an empty grid would panic deep in the generator).
fn parse_grid(spec: &str) -> Result<RoadNetwork, String> {
    let (r, c): (usize, usize) = spec
        .split_once('x')
        .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)))
        .ok_or("--grid expects RxC, e.g. 10x10")?;
    if r == 0 || c == 0 || r * c < 2 {
        return Err(format!(
            "--grid needs at least one segment (2 junctions), got `{spec}`"
        ));
    }
    Ok(roadnet::grid_city(r, c, 100.0))
}

fn load_map(opts: &Opts) -> Result<RoadNetwork, String> {
    let path = opts.get("map").ok_or("--map is required")?;
    // `city:SEED:SEGMENTS` generates a synthetic city in memory instead
    // of reading a file — the city-scale entry point needs no map file.
    if let Some(spec) = path.strip_prefix("city:") {
        let (seed, segments): (u64, usize) = spec
            .split_once(':')
            .and_then(|(s, n)| Some((s.parse().ok()?, n.parse().ok()?)))
            .ok_or("--map city: expects city:SEED:SEGMENTS, e.g. city:7:100000")?;
        if segments < 2 {
            return Err(format!("--map {path}: need at least 2 segments"));
        }
        return Ok(roadnet::city_map(seed, segments));
    }
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    roadnet::io::read_map(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

fn parse_engine(opts: &Opts) -> Result<EngineChoice, String> {
    match opts.get("engine").map(String::as_str) {
        None | Some("rge") => Ok(EngineChoice::Rge),
        Some("rple") => Ok(EngineChoice::Rple { t_len: 12 }),
        Some(other) => Err(format!("unknown engine `{other}`")),
    }
}

fn parse_keys(opts: &Opts) -> Result<Vec<Key256>, String> {
    if let Some(path) = opts.get("keyring") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let mgr = keystream::read_keyring(BufReader::new(file)).map_err(|e| e.to_string())?;
        return Ok(mgr.iter().map(|(_, k)| k).collect());
    }
    opts.get("keys")
        .ok_or("--keys or --keyring is required")?
        .split(',')
        .map(|h| Key256::from_hex(h).map_err(|e| format!("bad key `{h}`: {e}")))
        .collect()
}

fn cmd_map(opts: &Opts) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out is required")?;
    let seed = get_seed(opts);
    let net = if opts.contains_key("atlanta") {
        roadnet::atlanta_like(seed)
    } else if let Some(spec) = opts.get("grid") {
        parse_grid(spec)?
    } else {
        roadnet::grid_city(10, 10, 100.0)
    };
    let mut buf = Vec::new();
    roadnet::io::write_map(&net, &mut buf).map_err(|e| e.to_string())?;
    std::fs::write(out, buf).map_err(|e| format!("write {out}: {e}"))?;
    println!("{}", roadnet::NetworkStats::compute(&net));
    println!("wrote {out}");
    Ok(())
}

fn cmd_keys(opts: &Opts) -> Result<(), String> {
    let levels: usize = opts
        .get("levels")
        .ok_or("--levels is required")?
        .parse()
        .map_err(|_| "--levels expects a number")?;
    // Auto key generation, like the GUI button; seeded only when asked.
    // Seeded keys go through the sponge-derived grid (`KeyManager::
    // from_seed`), which domain-separates every (seed, level) pair.
    let mgr = match opts.get("seed") {
        Some(s) => {
            let seed: u64 = s.parse().map_err(|_| "--seed expects a number")?;
            keystream::KeyManager::from_seed(levels, seed)
        }
        None => keystream::KeyManager::generate(levels, &mut rand::thread_rng()),
    };
    if let Some(path) = opts.get("out") {
        // Owner-only (0o600) creation: the keyring is secret material.
        keystream::write_keyring_file(&mgr, path).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote keyring with {} keys to {path}", mgr.level_count());
    }
    for (level, k) in mgr.iter() {
        println!("Key{} = {}", level.0, k.to_hex());
    }
    Ok(())
}

fn cmd_anonymize(opts: &Opts) -> Result<(), String> {
    let net = load_map(opts)?;
    let segment = SegmentId(
        opts.get("segment")
            .ok_or("--segment is required")?
            .parse()
            .map_err(|_| "--segment expects a number")?,
    );
    let ks: Vec<u32> = opts
        .get("k")
        .ok_or("--k is required (e.g. 5,10,20)")?
        .split(',')
        .map(|s| s.parse().map_err(|_| format!("bad k `{s}`")))
        .collect::<Result<_, _>>()?;
    let keys = parse_keys(opts)?;
    if keys.len() != ks.len() {
        return Err(format!(
            "{} k-values but {} keys; one key per level",
            ks.len(),
            keys.len()
        ));
    }
    let mut builder = PrivacyProfile::builder();
    for &k in &ks {
        builder = builder.level(LevelRequirement::with_k(k));
    }
    let profile = builder.build().map_err(|e| e.to_string())?;

    let seed = get_seed(opts);
    let (net, snapshot) = traffic_snapshot(opts, net);
    let net = &net;

    let choice = parse_engine(opts)?;
    let engine = Engine::build(net, choice);
    let (out, attempts) = anonymize_with_retry(
        net,
        &snapshot,
        segment,
        &profile,
        &keys,
        seed ^ 0xc10a_c0de,
        engine.as_dyn(),
        8,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "cloaked {segment} into {} segments over {} levels ({} attempt(s))",
        out.payload.region_size(),
        out.payload.levels.len(),
        attempts
    );
    if let Some(path) = opts.get("out") {
        std::fs::write(path, out.payload.encode()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote payload to {path}");
    }
    if let Some(path) = opts.get("svg") {
        let regions = regions_of(&out);
        std::fs::write(path, render_svg(net, &regions, 1000))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote SVG to {path}");
    }
    Ok(())
}

/// Simulates traffic over `net` for the k-anonymity check (`--cars`,
/// `--seed`), returning the network and the captured occupancy snapshot.
fn traffic_snapshot(opts: &Opts, net: RoadNetwork) -> (RoadNetwork, OccupancySnapshot) {
    let cars = opts
        .get("cars")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000.min(net.segment_count() * 2));
    let seed = get_seed(opts);
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars,
            seed,
            ..Default::default()
        },
    );
    sim.run(3, 10.0);
    let snapshot = OccupancySnapshot::capture(&sim);
    (sim.network().clone(), snapshot)
}

/// Cumulative level regions from an outcome (seed + per-level spans).
fn regions_of(out: &cloak::AnonymizationOutcome) -> Vec<(Level, Vec<SegmentId>)> {
    let chain_set: std::collections::HashSet<_> = out.chain.iter().copied().collect();
    let seed = out
        .payload
        .segments
        .iter()
        .copied()
        .find(|s| !chain_set.contains(s))
        .expect("seed in region");
    let mut acc = vec![seed];
    let mut regions = vec![(Level(0), acc.clone())];
    let mut cursor = 0;
    for (i, meta) in out.payload.levels.iter().enumerate() {
        acc.extend(
            out.chain[cursor..cursor + meta.count as usize]
                .iter()
                .copied(),
        );
        cursor += meta.count as usize;
        regions.push((Level(i as u8 + 1), acc.clone()));
    }
    regions
}

fn cmd_deanonymize(opts: &Opts) -> Result<(), CmdError> {
    let net = load_map(opts)?;
    let path = opts
        .get("payload")
        .ok_or_else(|| CmdError::Usage("--payload is required".into()))?;
    // A payload that won't read or decode is hostile/damaged *data*, not
    // a usage mistake: report it without the usage dump (exit 1).
    let bytes = std::fs::read(path).map_err(|e| CmdError::Data(format!("read {path}: {e}")))?;
    let payload =
        CloakPayload::decode(&bytes).map_err(|e| CmdError::Data(format!("{path}: {e}")))?;
    let mut keys = parse_keys(opts)?;
    if opts.contains_key("keyring") {
        // Keyrings store level 1 first; peeling needs top level first.
        keys.reverse();
    }
    // Keys are supplied top level first.
    let top = payload.top_level().0;
    let leveled: Vec<(Level, Key256)> = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| (Level(top - i as u8), k))
        .collect();
    let choice = parse_engine(opts)?;
    let engine = Engine::build(&net, choice);
    let view = deanonymize(&net, &payload, &leveled, engine.as_dyn())
        .map_err(|e| CmdError::Data(e.to_string()))?;
    println!(
        "reduced to level L{}: {} segments",
        view.level.0,
        view.segments.len()
    );
    let ids: Vec<String> = view.segments.iter().map(|s| s.to_string()).collect();
    println!("{{{}}}", ids.join(", "));
    if view.level == Level(0) {
        println!("exact segment: {}", view.anchor);
    }
    Ok(())
}

fn cmd_batch(opts: &Opts) -> Result<(), CmdError> {
    use anonymizer::{AnonymizerConfig, AnonymizerServer};

    let net = load_map(opts)?;
    let input = opts
        .get("input")
        .ok_or_else(|| "--input is required".to_string())?;
    let text = std::fs::read_to_string(input)
        .map_err(|e| CmdError::Usage(format!("read {input}: {e}")))?;
    // Malformed rows are collected (not aborted on): bad rows are
    // reported with their line numbers (capped — a hostile file cannot
    // flood stderr), the good rows still run, and the exit code ends up
    // nonzero. The parser itself is the fuzz-hardened library surface.
    let parsed = anonymizer::parse_batch_requests(&text, get_seed(opts));
    for report in parsed.capped_reports(input) {
        eprintln!("error: {report}");
    }
    let anonymizer::BatchInput {
        requests,
        malformed,
    } = parsed;
    if requests.is_empty() {
        return Err(if malformed.is_empty() {
            CmdError::Usage(format!("{input}: no requests"))
        } else {
            CmdError::Data(format!(
                "{input}: all {} row(s) malformed, nothing to run",
                malformed.len()
            ))
        });
    }

    let seed = get_seed(opts);
    let (net, snapshot) = traffic_snapshot(opts, net);

    let workers = opts
        .get("workers")
        .map(|s| s.parse().map_err(|_| format!("bad --workers `{s}`")))
        .transpose()?
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    if workers == 0 {
        return Err(CmdError::Usage("--workers must be at least 1".into()));
    }
    let config = AnonymizerConfig {
        engine: parse_engine(opts)?,
        ..Default::default()
    };
    let server = AnonymizerServer::start(net, snapshot, config, workers, seed ^ 0xba7c_c10a);
    let t0 = std::time::Instant::now();
    let results = server.anonymize_batch(requests.clone());
    let elapsed = t0.elapsed();

    let mut ok = 0usize;
    let mut lines = Vec::with_capacity(results.len());
    for (req, result) in requests.iter().zip(&results) {
        match result {
            Ok(receipt) => {
                ok += 1;
                lines.push(format!(
                    "{},{},ok,{},{}",
                    req.owner,
                    req.segment.0,
                    receipt.payload.region_size(),
                    receipt.attempts
                ));
            }
            Err(e) => lines.push(format!("{},{},error,{e},", req.owner, req.segment.0)),
        }
    }
    println!(
        "anonymized {ok}/{} requests on {workers} worker(s) in {:.1} ms ({:.0} req/s)",
        results.len(),
        elapsed.as_secs_f64() * 1e3,
        results.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if let Some(path) = opts.get("out") {
        let mut csv = String::from("owner,segment,status,region_size,attempts\n");
        csv.push_str(&lines.join("\n"));
        csv.push('\n');
        // A failed write after the batch ran is a data error (exit 1),
        // not a bad invocation: re-running with the same flags won't fix it.
        std::fs::write(path, csv).map_err(|e| CmdError::Data(format!("write {path}: {e}")))?;
        println!("wrote results to {path}");
    } else {
        for line in &lines {
            println!("{line}");
        }
    }
    if ok == 0 {
        return Err(CmdError::Data("every request failed".into()));
    }
    if !malformed.is_empty() {
        return Err(CmdError::Data(format!(
            "{} malformed row(s) in {input} (reported above); {} valid request(s) ran",
            malformed.len(),
            requests.len()
        )));
    }
    Ok(())
}

/// Parses a numeric flag with a default.
fn parse_num(opts: &Opts, name: &str, default: usize) -> Result<usize, String> {
    match opts.get(name) {
        Some(s) => s.parse().map_err(|_| format!("bad --{name} `{s}`")),
        None => Ok(default),
    }
}

/// The options `simulate` and `attack` share: run shape, network, and
/// engine/profile configuration. Parsed once by
/// [`parse_pipeline_world`] so the two subcommands cannot drift.
struct PipelineWorld {
    ticks: usize,
    cars: usize,
    owners: usize,
    cadence: usize,
    dt: f64,
    seed: u64,
    net: RoadNetwork,
    config: anonymizer::AnonymizerConfig,
}

/// Shared flag handling for the pipeline-driving subcommands; only the
/// defaults differ (`default_ticks`, and the cap the default owner
/// count is clamped to).
fn parse_pipeline_world(
    opts: &Opts,
    default_ticks: usize,
    default_owner_cap: usize,
) -> Result<PipelineWorld, CmdError> {
    let ticks = parse_num(opts, "ticks", default_ticks)?;
    let cars = parse_num(opts, "cars", 1000)?;
    let owners = parse_num(opts, "owners", default_owner_cap.min(cars.max(1)))?;
    let cadence = parse_num(opts, "cadence", 1)?;
    let dt: f64 = match opts.get("dt") {
        Some(s) => s.parse().map_err(|_| format!("bad --dt `{s}`"))?,
        None => 10.0,
    };
    if ticks == 0 {
        return Err(CmdError::Usage("--ticks must be at least 1".into()));
    }
    if !(dt > 0.0 && dt.is_finite()) {
        return Err(CmdError::Usage(format!(
            "--dt must be a positive number of seconds, got `{dt}`"
        )));
    }
    let seed = get_seed(opts);

    let net = if opts.contains_key("map") {
        load_map(opts)?
    } else if let Some(spec) = opts.get("grid") {
        parse_grid(spec)?
    } else {
        roadnet::grid_city(12, 12, 100.0)
    };

    let mut config = anonymizer::AnonymizerConfig {
        engine: parse_engine(opts)?,
        ..Default::default()
    };
    if let Some(ks) = opts.get("k") {
        let mut builder = PrivacyProfile::builder();
        for part in ks.split(',') {
            let k: u32 = part.parse().map_err(|_| format!("bad k `{part}` in --k"))?;
            builder = builder.level(LevelRequirement::with_k(k));
        }
        config.default_profile = builder.build().map_err(|e| e.to_string())?;
    }
    Ok(PipelineWorld {
        ticks,
        cars,
        owners,
        cadence,
        dt,
        seed,
        net,
        config,
    })
}

fn cmd_simulate(opts: &Opts) -> Result<(), CmdError> {
    use anonymizer::{AttackConfig, ContinuousPipeline, PipelineConfig, TickReport};
    use cloak::AdversaryMode;
    use keystream::{ChainStore, FileStore, MemStore};
    use mobisim::SimConfig;
    use std::sync::Arc;

    let PipelineWorld {
        ticks,
        cars,
        owners,
        cadence,
        dt,
        seed,
        net,
        config,
    } = parse_pipeline_world(opts, 50, 64)?;
    let lbs_probes = parse_num(opts, "lbs", 4)?;
    let shards = parse_num(opts, "shards", 1)?;

    let verify = !opts.contains_key("no-verify");
    let attack_mode = match opts.get("attack").map(String::as_str) {
        None => None,
        Some(s) => Some(AdversaryMode::parse(s).ok_or_else(|| {
            format!("unknown adversary `{s}` (peel|correlate|move|all|adaptive)")
        })?),
    };
    if shards > 1 && (attack_mode.is_some() || opts.contains_key("lbs")) {
        return Err(CmdError::Usage(
            "--attack and --lbs are single-shard instruments; drop --shards to use them".into(),
        ));
    }
    // A durable chain store journals every ratchet advance before its
    // receipt is issued; re-running over the same path resumes every
    // owner's chain at its journaled epoch. An unopenable path is a data
    // error (exit 1): the invocation is fine, the filesystem is not.
    let chain_store_path = opts.get("chain-store");
    let store: Arc<dyn ChainStore> = match chain_store_path {
        Some(path) => Arc::new(FileStore::open(path).map_err(|e| CmdError::Data(e.to_string()))?),
        None => Arc::new(MemStore::new()),
    };
    if shards > 1 {
        use anonymizer::ShardedPipeline;
        let mut pipeline = ShardedPipeline::with_store(
            net,
            SimConfig {
                cars,
                seed,
                ..Default::default()
            },
            config,
            PipelineConfig {
                dt,
                snapshot_cadence: cadence,
                tracked_owners: owners,
                seed: seed ^ 0x51e_71c4,
                verify,
                lbs_probes: 0,
                ..Default::default()
            },
            shards,
            store,
        )
        .map_err(|e| CmdError::Data(e.to_string()))?;
        let quality = pipeline
            .partition()
            .expect("shards > 1 builds a partition")
            .quality(pipeline.services()[0].network());
        println!(
            "simulating {ticks} ticks × {dt}s: {cars} cars on {} segments, {owners} tracked \
             owners, partition [{quality}], snapshot cadence {} (verification {})",
            pipeline.services()[0].network().segment_count(),
            cadence.max(1),
            if verify { "on" } else { "off" },
        );
        if let Some(path) = chain_store_path {
            println!("journaling owner chains to {path} (one journal shared by all shards)");
        }
        let t0 = std::time::Instant::now();
        let mut reports = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            reports.push(pipeline.tick().map_err(|e| CmdError::Data(e.to_string()))?);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let issued: usize = reports.iter().map(|r| r.issued).sum();
        let failed: usize = reports.iter().map(|r| r.failed).sum();
        let verified: usize = reports.iter().map(|r| r.verified).sum();
        let mut quality = cloak::QualitySummary::new();
        for r in &reports {
            quality.merge(&r.quality);
        }
        println!(
            "issued {issued} receipts ({failed} failed) in {:.1} ms — {:.1} ticks/s, \
             {:.0} receipts/s, {} cross-shard handoffs",
            elapsed * 1e3,
            ticks as f64 / elapsed.max(1e-9),
            issued as f64 / elapsed.max(1e-9),
            pipeline.handoffs_total(),
        );
        println!("regions: {quality}");
        if verify {
            println!("verified {verified}/{issued} against each receipt's issuing shard snapshot");
        }
        if let Some(path) = opts.get("out") {
            let mut csv = String::from(anonymizer::ShardTickReport::CSV_HEADER);
            csv.push('\n');
            for r in &reports {
                csv.push_str(&r.csv_row());
                csv.push('\n');
            }
            std::fs::write(path, csv).map_err(|e| CmdError::Data(format!("write {path}: {e}")))?;
            println!("wrote per-tick metrics to {path}");
        }
        return Ok(());
    }
    let mut pipeline = ContinuousPipeline::with_store(
        net,
        SimConfig {
            cars,
            seed,
            ..Default::default()
        },
        config,
        PipelineConfig {
            dt,
            snapshot_cadence: cadence,
            tracked_owners: owners,
            seed: seed ^ 0x51e_71c4,
            verify,
            lbs_probes,
            attack: attack_mode.map(|mode| AttackConfig {
                mode,
                baseline: !opts.contains_key("no-baseline"),
                // `simulate` only exports the per-tick rollups; the
                // long-form per-owner log is `rcloak attack`'s job.
                keep_records: false,
                ..Default::default()
            }),
            ..Default::default()
        },
        store,
    )
    .map_err(|e| CmdError::Data(e.to_string()))?;
    println!(
        "simulating {ticks} ticks × {dt}s: {cars} cars on {} segments, {} tracked owners, \
         engine {}, snapshot cadence {} (verification {}, attack leg {})",
        pipeline.service().network().segment_count(),
        pipeline.tracked_owner_count(),
        pipeline.service().engine().name(),
        cadence.max(1),
        if verify { "on" } else { "off" },
        attack_mode.map_or("off".to_string(), |m| format!("`{}`", m.name())),
    );
    if let Some(path) = chain_store_path {
        println!("journaling owner chains to {path} (crash-safe; reruns resume epochs)");
    }

    let t0 = std::time::Instant::now();
    let mut reports = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        reports.push(pipeline.tick().map_err(|e| CmdError::Data(e.to_string()))?);
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let issued: usize = reports.iter().map(|r| r.issued).sum();
    let failed: usize = reports.iter().map(|r| r.failed).sum();
    let verified: usize = reports.iter().map(|r| r.verified).sum();
    let mut quality = cloak::QualitySummary::new();
    let mut lbs_stats = lbs::QueryStats::new();
    for r in &reports {
        quality.merge(&r.quality);
        lbs_stats.merge(&r.lbs);
    }
    println!(
        "issued {issued} receipts ({failed} failed) in {:.1} ms — {:.1} ticks/s, {:.0} receipts/s",
        elapsed * 1e3,
        ticks as f64 / elapsed.max(1e-9),
        issued as f64 / elapsed.max(1e-9),
    );
    println!("regions: {quality}");
    if lbs_probes > 0 {
        println!("lbs: {lbs_stats}");
    }
    if verify {
        println!(
            "verified {verified}/{issued}: exact deanonymization, issue-time k-anonymity, \
             grant preservation"
        );
    }
    if let Some(path) = opts.get("out") {
        // With the attack leg on, the CSV carries its per-tick rollup
        // columns too (same arity on every row).
        let mut csv = if attack_mode.is_some() {
            TickReport::csv_header_with_attack()
        } else {
            String::from(TickReport::CSV_HEADER)
        };
        csv.push('\n');
        for r in &reports {
            csv.push_str(&if attack_mode.is_some() {
                r.csv_row_with_attack()
            } else {
                r.csv_row()
            });
            csv.push('\n');
        }
        // As in `batch`: the simulation already ran, so a write failure
        // is a data error (exit 1), not a usage error.
        std::fs::write(path, csv).map_err(|e| CmdError::Data(format!("write {path}: {e}")))?;
        println!("wrote per-tick metrics to {path}");
    }
    Ok(())
}

fn cmd_attack(opts: &Opts) -> Result<(), CmdError> {
    use anonymizer::{AttackConfig, AttackRecord, ContinuousPipeline, PipelineConfig};
    use cloak::AdversaryMode;
    use mobisim::SimConfig;

    let PipelineWorld {
        ticks,
        cars,
        owners,
        cadence,
        dt,
        seed,
        net,
        config,
    } = parse_pipeline_world(opts, 100, 16)?;
    let mode = match opts.get("adversary").map(String::as_str) {
        None => AdversaryMode::All,
        Some(s) => AdversaryMode::parse(s)
            .ok_or_else(|| format!("unknown adversary `{s}` (peel|correlate|move|all|adaptive)"))?,
    };
    let baseline = !opts.contains_key("no-baseline");
    let k_top = config.default_profile.top_requirement().k;

    let mut pipeline = ContinuousPipeline::new(
        net,
        SimConfig {
            cars,
            seed,
            ..Default::default()
        },
        config,
        PipelineConfig {
            dt,
            snapshot_cadence: cadence,
            tracked_owners: owners,
            seed: seed ^ 0x51e_71c4,
            verify: false,
            lbs_probes: 0,
            attack: Some(AttackConfig {
                mode,
                baseline,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let engine_name = pipeline.service().engine().name().to_lowercase();
    println!(
        "attacking {ticks} ticks × {dt}s: {cars} cars on {} segments, {} tracked owners, \
         engine {engine_name}, adversary `{}`, NRE control {}",
        pipeline.service().network().segment_count(),
        pipeline.tracked_owner_count(),
        mode.name(),
        if baseline { "on" } else { "off" },
    );

    let t0 = std::time::Instant::now();
    for _ in 0..ticks {
        pipeline.tick().map_err(|e| CmdError::Data(e.to_string()))?;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let engine = pipeline.attack_summary().expect("attack leg is on").clone();
    println!(
        "observed {} receipts in {:.1} ms ({:.1} ticks/s)",
        engine.observations(),
        elapsed * 1e3,
        ticks as f64 / elapsed.max(1e-9),
    );
    println!("adversary vs {engine_name:>4}: {engine}");
    if let Some(nre) = pipeline.baseline_attack_summary() {
        println!(
            "adversary vs  nre: {nre}  [keyless deterministic expansion, replayable; {} failed growth(s)]",
            pipeline.baseline_attack_failures()
        );
        println!(
            "separation: {engine_name} keeps {:.2} bits over user identities \
             (k_top={k_top} → uniform-over-k is {:.2} bits); nre keeps {:.2} bits \
             ({:.2} over segments)",
            engine.mean_user_entropy(),
            (k_top.max(1) as f64).log2(),
            nre.mean_user_entropy(),
            nre.mean_entropy(),
        );
    }
    // Per-mode observe() cost footer: the graph-index wins (packed
    // movement masks, batched correlation weights) are visible from the
    // CLI without running the criterion benches.
    let per_obs = |time: Option<std::time::Duration>, observations: u64| {
        time.map(|t| t.as_secs_f64() * 1e6 / observations.max(1) as f64)
    };
    if let Some(engine_us) = per_obs(pipeline.attack_observe_time(), engine.observations()) {
        let nre = pipeline
            .baseline_attack_summary()
            .map(|s| s.observations())
            .and_then(|n| per_obs(pipeline.baseline_observe_time(), n));
        match nre {
            Some(nre_us) => println!(
                "observe() cost [mode {}]: {engine_name} {engine_us:.1} µs/receipt, \
                 nre {nre_us:.1} µs/receipt (replay inversion included)",
                mode.name(),
            ),
            None => println!(
                "observe() cost [mode {}]: {engine_name} {engine_us:.1} µs/receipt",
                mode.name(),
            ),
        }
    }
    if let Some(path) = opts.get("out") {
        let mut csv = String::from(AttackRecord::CSV_HEADER);
        csv.push('\n');
        for record in pipeline.attack_records() {
            csv.push_str(&record.csv_row());
            csv.push('\n');
        }
        // The evaluation already ran: a write failure is a data error.
        std::fs::write(path, csv).map_err(|e| CmdError::Data(format!("write {path}: {e}")))?;
        println!("wrote per-owner attack log to {path}");
    }
    Ok(())
}

fn cmd_tournament(opts: &Opts) -> Result<(), CmdError> {
    use anonymizer::tournament::{self, TournamentProfile};

    let profile = match opts.get("profile").map(String::as_str) {
        None => TournamentProfile::from_env(),
        Some("quick") => TournamentProfile::quick(),
        Some("full") => TournamentProfile::full(),
        Some(other) => {
            return Err(CmdError::Usage(format!(
                "unknown profile `{other}` (quick|full)"
            )))
        }
    };
    let out = opts
        .get("out")
        .ok_or_else(|| CmdError::Usage("tournament needs --out DIR".into()))?;

    println!(
        "running the {} tournament: {} ticks × {} cars on a {}×{} grid, {} owners, k={:?}",
        profile.name(),
        profile.ticks,
        profile.cars,
        profile.grid.0,
        profile.grid.1,
        profile.owners,
        profile.ks,
    );
    let t0 = std::time::Instant::now();
    let report = tournament::run(&profile).map_err(CmdError::Data)?;
    println!(
        "ran {} cells in {:.1} ms",
        report.cells.len(),
        t0.elapsed().as_secs_f64() * 1e3,
    );
    println!(
        "{:<28} {:>8} {:>8} {:>7} {:>6}",
        "cell", "H(seg)", "H(user)", "guess", "sound"
    );
    for cell in &report.cells {
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>7.2} {:>6.2}",
            cell.name(),
            cell.summary.mean_entropy(),
            cell.summary.mean_user_entropy(),
            cell.summary.guess_success_rate(),
            cell.summary.soundness(),
        );
    }

    std::fs::create_dir_all(out).map_err(|e| CmdError::Data(format!("create {out}: {e}")))?;
    let cells_path = format!("{out}/cells.csv");
    let traj_path = format!("{out}/trajectories.csv");
    std::fs::write(&cells_path, report.cells_csv())
        .map_err(|e| CmdError::Data(format!("write {cells_path}: {e}")))?;
    std::fs::write(&traj_path, report.trajectories_csv())
        .map_err(|e| CmdError::Data(format!("write {traj_path}: {e}")))?;
    println!("wrote {cells_path} and {traj_path}");
    Ok(())
}

fn cmd_render(opts: &Opts) -> Result<(), CmdError> {
    let net = load_map(opts)?;
    let width = opts
        .get("width")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let height = opts
        .get("height")
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let regions = match opts.get("payload") {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| CmdError::Data(format!("read {path}: {e}")))?;
            let payload =
                CloakPayload::decode(&bytes).map_err(|e| CmdError::Data(format!("{path}: {e}")))?;
            // Without keys only the full region is known: one flat level.
            vec![(payload.top_level(), payload.segments)]
        }
        None => Vec::new(),
    };
    println!("{}", render_regions(&net, &regions, width, height));
    if !regions.is_empty() {
        println!("{}", anonymizer::legend(regions[0].0 .0 as usize));
    }
    Ok(())
}
