//! Hardened parsing of `rcloak batch` request CSV.
//!
//! The batch surface reads files an operator did not necessarily author
//! — exported from other tools, truncated by failed copies, or outright
//! adversarial. Parsing therefore lives here, behind a pure function
//! over `&str`, where the mutation fuzzer (`tests/batch_fuzz.rs`) can
//! sweep it directly: no row, however hostile, may panic, over-allocate,
//! or abort the well-formed rows around it.
//!
//! The format is one `owner,segment` pair per line; blank lines and `#`
//! comments are skipped. Malformed rows are *collected*, not fatal: each
//! carries its 1-based line number for the CLI's per-row stderr reports,
//! and [`BatchInput::capped_reports`] bounds how many are echoed so a
//! hostile file cannot flood stderr with millions of error lines.
//!
//! Request seeds derive from the base seed and the *accepted-row* index
//! with the same mix `rcloak batch` has always used, so a rerun over the
//! same input reproduces byte-identical payloads — malformed rows do not
//! shift the seeds of the valid rows after them being the one deliberate
//! exception: they never consumed an index in the old code either.

use crate::service::AnonymizeRequest;
use roadnet::SegmentId;

/// Owner names longer than this are rejected as malformed: no plausible
/// owner identity needs more, and the bound keeps a hostile row from
/// dominating the request table.
pub const MAX_OWNER_LEN: usize = 256;

/// At most this many malformed rows are echoed to stderr; the rest are
/// summarized in one trailing line (see [`BatchInput::capped_reports`]).
pub const MALFORMED_REPORT_CAP: usize = 20;

/// One malformed row: its 1-based line number and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowError {
    /// 1-based line number in the input file.
    pub line: usize,
    /// Human-readable reason, e.g. ``bad segment id `4x` ``.
    pub message: String,
}

/// The parse of one batch CSV: the accepted requests in input order and
/// every malformed row with its line number.
#[derive(Debug, Clone)]
pub struct BatchInput {
    /// Accepted requests, in input order, with derived per-row seeds.
    pub requests: Vec<AnonymizeRequest>,
    /// Rejected rows, in input order.
    pub malformed: Vec<RowError>,
}

impl BatchInput {
    /// The per-row stderr report lines, capped at
    /// [`MALFORMED_REPORT_CAP`]: each is `"{path}:{line}: {message}"`,
    /// and when rows were suppressed the last line summarizes how many.
    pub fn capped_reports(&self, path: &str) -> Vec<String> {
        let mut reports: Vec<String> = self
            .malformed
            .iter()
            .take(MALFORMED_REPORT_CAP)
            .map(|r| format!("{path}:{}: {}", r.line, r.message))
            .collect();
        let suppressed = self.malformed.len().saturating_sub(MALFORMED_REPORT_CAP);
        if suppressed > 0 {
            reports.push(format!(
                "{path}: … and {suppressed} more malformed row(s) not shown"
            ));
        }
        reports
    }
}

/// Derives the seed of accepted row `index` (0-based over accepted rows
/// only) from the CLI's base `--seed` — the exact mix `rcloak batch` has
/// always used, pinned here so reruns keep reproducing byte-identical
/// payloads.
pub fn batch_row_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ 0xba7c_c10a ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Parses a batch request CSV. Never fails as a whole: hostile or
/// damaged rows land in [`BatchInput::malformed`] and every well-formed
/// row still becomes a request. Allocation is bounded by the input
/// length — no row can claim more than it is.
pub fn parse_batch_requests(text: &str, base_seed: u64) -> BatchInput {
    let mut requests: Vec<AnonymizeRequest> = Vec::new();
    let mut malformed = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut reject = |message: String| {
            malformed.push(RowError {
                line: lineno + 1,
                message,
            });
        };
        let Some((owner, segment)) = line.split_once(',') else {
            reject("expected `owner,segment`".to_string());
            continue;
        };
        let owner = owner.trim();
        if owner.is_empty() {
            reject("empty owner".to_string());
            continue;
        }
        if owner.len() > MAX_OWNER_LEN {
            reject(format!(
                "owner name of {} bytes exceeds the {MAX_OWNER_LEN}-byte cap",
                owner.len()
            ));
            continue;
        }
        let segment: u32 = match segment.trim().parse() {
            Ok(s) => s,
            Err(_) => {
                reject(format!("bad segment id `{}`", segment.trim()));
                continue;
            }
        };
        let row_seed = batch_row_seed(base_seed, requests.len());
        requests.push(AnonymizeRequest::new(owner, SegmentId(segment), row_seed));
    }
    BatchInput {
        requests,
        malformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_trimmed_rows_and_skips_comments_and_blanks() {
        let parsed = parse_batch_requests("# hdr\nalice, 40\n\n  bob ,10  \n", 42);
        assert!(parsed.malformed.is_empty());
        assert_eq!(parsed.requests.len(), 2);
        assert_eq!(parsed.requests[0].owner, "alice");
        assert_eq!(parsed.requests[0].segment, SegmentId(40));
        assert_eq!(parsed.requests[1].owner, "bob");
    }

    #[test]
    fn row_seeds_are_the_pinned_mix_over_accepted_rows_only() {
        let parsed = parse_batch_requests("alice,1\nbroken\nbob,2\n", 7);
        assert_eq!(parsed.requests[0].seed, batch_row_seed(7, 0));
        // The malformed row between them never consumed a seed index.
        assert_eq!(parsed.requests[1].seed, batch_row_seed(7, 1));
        assert_eq!(batch_row_seed(7, 0), 7 ^ 0xba7c_c10a);
    }

    #[test]
    fn malformed_rows_carry_line_numbers_and_reasons() {
        let parsed = parse_batch_requests("alice,40\nbob\n,5\ncarol,4x\n", 0);
        assert_eq!(parsed.requests.len(), 1);
        let rendered: Vec<String> = parsed
            .malformed
            .iter()
            .map(|r| format!("{}: {}", r.line, r.message))
            .collect();
        assert_eq!(
            rendered,
            [
                "2: expected `owner,segment`",
                "3: empty owner",
                "4: bad segment id `4x`",
            ]
        );
    }

    #[test]
    fn hostile_owner_lengths_are_rejected_not_allocated() {
        let row = format!("{},7\nok,1\n", "x".repeat(MAX_OWNER_LEN + 1));
        let parsed = parse_batch_requests(&row, 0);
        assert_eq!(parsed.requests.len(), 1, "the valid row still runs");
        assert!(parsed.malformed[0].message.contains("256-byte cap"));
    }

    #[test]
    fn stderr_reports_are_capped_with_a_summary_line() {
        let text = "bad\n".repeat(MALFORMED_REPORT_CAP + 5);
        let parsed = parse_batch_requests(&text, 0);
        assert_eq!(parsed.malformed.len(), MALFORMED_REPORT_CAP + 5);
        let reports = parsed.capped_reports("in.csv");
        assert_eq!(reports.len(), MALFORMED_REPORT_CAP + 1);
        assert_eq!(reports[0], "in.csv:1: expected `owner,segment`");
        assert_eq!(
            reports.last().unwrap(),
            "in.csv: … and 5 more malformed row(s) not shown"
        );
        // Under the cap there is no summary line at all.
        let small = parse_batch_requests("bad\n", 0);
        assert_eq!(small.capped_reports("in.csv").len(), 1);
    }
}
