//! Terminal rendering of road networks and multi-level cloaking regions —
//! the headless substitute for the paper's map visualization.
//!
//! Segments are rasterized onto a character grid; cloaked segments are
//! drawn with the symbol of their *lowest* containing level, so the nested
//! structure of Figure 1 is visible at a glance:
//! `0` = the user's segment, `1`..`9` = levels, `·` = uncloaked road.

use keystream::Level;
use roadnet::{RoadNetwork, SegmentId};
use std::collections::HashMap;

/// Symbol used for roads outside every cloaking region.
const ROAD: char = '\u{b7}'; // ·

/// Renders the network with the given nested level regions.
///
/// `regions` lists `(level, segments)` pairs; a segment takes the symbol
/// of the lowest level containing it. Pass an empty slice for a plain map.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
pub fn render_regions(
    net: &RoadNetwork,
    regions: &[(Level, Vec<SegmentId>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width > 0 && height > 0, "raster must be non-empty");
    let bb = net.bounding_box();
    let mut grid = vec![vec![' '; width]; height];

    // Lowest level wins; build the symbol map first.
    let mut symbol: HashMap<SegmentId, char> = HashMap::new();
    let mut sorted: Vec<&(Level, Vec<SegmentId>)> = regions.iter().collect();
    sorted.sort_by_key(|(l, _)| *l);
    for (level, segs) in sorted.into_iter().rev() {
        let ch = match level.0 {
            0 => '0',
            n if n <= 9 => (b'0' + n) as char,
            _ => '#',
        };
        for s in segs {
            symbol.insert(*s, ch);
        }
    }

    let project = |x: f64, y: f64| -> (usize, usize) {
        let w = bb.width().max(1e-9);
        let h = bb.height().max(1e-9);
        let cx = ((x - bb.min.x) / w * (width - 1) as f64).round() as usize;
        // Flip y so north is up.
        let cy = ((1.0 - (y - bb.min.y) / h) * (height - 1) as f64).round() as usize;
        (cx.min(width - 1), cy.min(height - 1))
    };

    for seg in net.segments() {
        let pa = net.junction(seg.a()).position();
        let pb = net.junction(seg.b()).position();
        let ch = symbol.get(&seg.id()).copied().unwrap_or(ROAD);
        // Supersample along the segment.
        let steps = 2 * (width.max(height));
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let p = pa.lerp(pb, t);
            let (cx, cy) = project(p.x, p.y);
            let cell = &mut grid[cy][cx];
            // Level symbols overwrite plain road; lower levels overwrite
            // higher ones (drawn via the symbol map, so any symbol wins
            // over ROAD and digits keep the lowest symbol drawn last).
            if *cell == ' ' || *cell == ROAD || (ch != ROAD && ch < *cell) {
                *cell = ch;
            }
        }
    }

    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders the plain network map.
pub fn render_map(net: &RoadNetwork, width: usize, height: usize) -> String {
    render_regions(net, &[], width, height)
}

/// A legend explaining the symbols of a rendering.
pub fn legend(levels: usize) -> String {
    let mut out = String::from("legend: 0 = user's segment (L0)");
    for l in 1..=levels {
        out.push_str(&format!(", {l} = level L{l}"));
    }
    out.push_str(", \u{b7} = road");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    #[test]
    fn plain_map_draws_roads() {
        let net = grid_city(4, 4, 100.0);
        let map = render_map(&net, 40, 20);
        assert!(map.contains(ROAD));
        assert!(!map.contains('0'));
        assert_eq!(map.lines().count(), 20);
    }

    #[test]
    fn regions_use_level_symbols() {
        let net = grid_city(4, 4, 100.0);
        let regions = vec![
            (Level(0), vec![SegmentId(0)]),
            (Level(1), vec![SegmentId(0), SegmentId(1), SegmentId(2)]),
        ];
        let map = render_regions(&net, &regions, 60, 30);
        assert!(map.contains('0'), "seed symbol missing:\n{map}");
        assert!(map.contains('1'), "level-1 symbol missing:\n{map}");
    }

    #[test]
    fn lowest_level_symbol_wins() {
        let net = grid_city(3, 3, 100.0);
        // Segment 0 in both L0 and L1: must render as '0'.
        let regions = vec![
            (Level(1), vec![SegmentId(0)]),
            (Level(0), vec![SegmentId(0)]),
        ];
        let map = render_regions(&net, &regions, 40, 20);
        assert!(map.contains('0'));
        assert!(!map.contains('1'));
    }

    #[test]
    fn legend_mentions_all_levels() {
        let l = legend(3);
        assert!(l.contains("L0") && l.contains("L3"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_raster_panics() {
        let net = grid_city(2, 2, 10.0);
        let _ = render_map(&net, 0, 10);
    }
}
