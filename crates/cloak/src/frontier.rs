//! The candidate frontier `CanA`: segments adjacent to the cloaking region
//! but not inside it.

use crate::region::RegionState;
use crate::scratch::StampSet;
use roadnet::{RoadNetwork, SegmentId};

/// Computes `CanA` for the current region: every segment sharing a
/// junction with a member, excluding members, sorted by `(length, id)` —
/// the column order of the RGE transition table ("the shortest segments
/// are mapped to the 1st … column").
pub fn candidates(net: &RoadNetwork, region: &RegionState) -> Vec<SegmentId> {
    let mut out = Vec::new();
    candidates_into(net, region, &mut StampSet::default(), &mut out);
    out
}

/// Like [`candidates`], writing into caller-owned buffers (both cleared
/// first) — the zero-allocation path engine steps use. `stamp` dedups
/// the frontier without a per-call membership vector.
pub fn candidates_into(
    net: &RoadNetwork,
    region: &RegionState,
    stamp: &mut StampSet,
    out: &mut Vec<SegmentId>,
) {
    out.clear();
    stamp.begin(net.segment_count());
    for s in region.iter_ids() {
        for &n in net.neighbor_segments_csr(s) {
            if !region.contains(n) && stamp.insert(n.index()) {
                out.push(n);
            }
        }
    }
    sort_by_length(net, out);
}

/// Sorts segments by `(length, id)` in place.
pub fn sort_by_length(net: &RoadNetwork, ids: &mut [SegmentId]) {
    ids.sort_by(|&a, &b| {
        net.segment(a)
            .length()
            .total_cmp(&net.segment(b).length())
            .then(a.cmp(&b))
    });
}

/// Index of `target` in a `(length, id)`-sorted list, or `None`.
pub fn position_in_sorted(
    net: &RoadNetwork,
    sorted: &[SegmentId],
    target: SegmentId,
) -> Option<usize> {
    let key = (net.segment(target).length(), target);
    sorted
        .binary_search_by(|&s| {
            net.segment(s)
                .length()
                .total_cmp(&key.0)
                .then(s.cmp(&key.1))
        })
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    #[test]
    fn frontier_of_single_segment_is_its_neighbors() {
        let net = grid_city(3, 3, 100.0);
        let region = RegionState::from_segments(&net, [SegmentId(0)]);
        let mut expect = net.neighbor_segments(SegmentId(0));
        sort_by_length(&net, &mut expect);
        assert_eq!(candidates(&net, &region), expect);
    }

    #[test]
    fn frontier_excludes_members_and_has_no_dups() {
        let net = grid_city(4, 4, 100.0);
        let members = [SegmentId(0), SegmentId(1), SegmentId(2)];
        let region = RegionState::from_segments(&net, members);
        let f = candidates(&net, &region);
        for m in members {
            assert!(!f.contains(&m));
        }
        let mut d = f.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), f.len());
        // Every candidate is adjacent to some member.
        for c in &f {
            assert!(
                members.iter().any(|&m| net.segments_adjacent(m, *c)),
                "candidate {c} not adjacent to region"
            );
        }
    }

    #[test]
    fn frontier_of_empty_region_is_empty() {
        let net = grid_city(3, 3, 100.0);
        let region = RegionState::new(&net);
        assert!(candidates(&net, &region).is_empty());
    }

    #[test]
    fn frontier_of_full_network_is_empty() {
        let net = grid_city(3, 3, 100.0);
        let region = RegionState::from_segments(&net, net.segment_ids());
        assert!(candidates(&net, &region).is_empty());
    }

    #[test]
    fn position_in_sorted_finds_all() {
        let net = grid_city(4, 4, 100.0);
        let region = RegionState::from_segments(&net, [SegmentId(5)]);
        let f = candidates(&net, &region);
        for (i, &s) in f.iter().enumerate() {
            assert_eq!(position_in_sorted(&net, &f, s), Some(i));
        }
        assert_eq!(position_in_sorted(&net, &f, SegmentId(5)), None);
    }

    #[test]
    fn sorted_order_is_deterministic() {
        let net = grid_city(5, 5, 100.0);
        let region = RegionState::from_segments(&net, [SegmentId(10), SegmentId(11)]);
        assert_eq!(candidates(&net, &region), candidates(&net, &region));
    }
}
