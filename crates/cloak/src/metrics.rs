//! Quality metrics for cloaking outcomes: the quantities the paper's
//! evaluation axes report (success rate, relative anonymity, relative
//! spatial resolution).

use crate::multilevel::AnonymizationOutcome;
use crate::profile::{PrivacyProfile, SpatialTolerance};
use mobisim::OccupancySnapshot;
use roadnet::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Quality metrics of one anonymization at its top level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionQuality {
    /// Segments in the region.
    pub segments: usize,
    /// Users covered.
    pub users: u64,
    /// Achieved users divided by requested k (≥ 1 on success; the paper's
    /// *relative anonymity level*).
    pub relative_anonymity: f64,
    /// Total road length of the region in meters.
    pub total_length: f64,
    /// Region extent used divided by the allowed tolerance (≤ 1; the
    /// paper's *relative spatial resolution*). 0 when unlimited.
    pub relative_spatial_resolution: f64,
    /// Keyed draws consumed per added segment (reversibility overhead).
    pub draws_per_segment: f64,
    /// Voided draws across all levels (collision-avoidance cost, B8).
    pub voided_draws: u32,
}

impl RegionQuality {
    /// Computes metrics for a finished anonymization.
    pub fn measure(
        net: &RoadNetwork,
        snapshot: &OccupancySnapshot,
        profile: &PrivacyProfile,
        outcome: &AnonymizationOutcome,
    ) -> Self {
        let users = snapshot.users_in(outcome.payload.segments.iter().copied());
        let total_length: f64 = outcome
            .payload
            .segments
            .iter()
            .map(|&s| net.segment(s).length())
            .sum();
        let top = profile.top_requirement();
        let relative_spatial_resolution = match top.tolerance {
            SpatialTolerance::Unlimited => 0.0,
            SpatialTolerance::TotalLength(max) => total_length / max,
            SpatialTolerance::BboxDiagonal(max) => {
                net.segments_bounding_box(outcome.payload.segments.iter().copied())
                    .diagonal()
                    / max
            }
        };
        let added: u32 = outcome.per_level.iter().map(|l| l.added).sum();
        let draws: u32 = outcome.per_level.iter().map(|l| l.draws).sum();
        let voided: u32 = outcome.per_level.iter().map(|l| l.voided).sum();
        RegionQuality {
            segments: outcome.payload.region_size(),
            users,
            relative_anonymity: users as f64 / top.k as f64,
            total_length,
            relative_spatial_resolution,
            draws_per_segment: if added == 0 {
                0.0
            } else {
                draws as f64 / added as f64
            },
            voided_draws: voided,
        }
    }
}

impl fmt::Display for RegionQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} segments, {} users (rel-k {:.2}), {:.0} m (rel-σ {:.2}), {:.2} draws/seg, {} voided",
            self.segments,
            self.users,
            self.relative_anonymity,
            self.total_length,
            self.relative_spatial_resolution,
            self.draws_per_segment,
            self.voided_draws
        )
    }
}

/// Running aggregate of [`RegionQuality`] measurements — the per-tick /
/// per-experiment rollup (mean region size, mean/min relative anonymity)
/// that streaming pipelines and scenario harnesses report instead of one
/// line per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    count: u64,
    sum_segments: u64,
    sum_users: u64,
    sum_relative_anonymity: f64,
    sum_total_length: f64,
    min_relative_anonymity: f64,
    max_segments: usize,
}

impl Default for QualitySummary {
    fn default() -> Self {
        QualitySummary {
            count: 0,
            sum_segments: 0,
            sum_users: 0,
            sum_relative_anonymity: 0.0,
            sum_total_length: 0.0,
            min_relative_anonymity: f64::INFINITY,
            max_segments: 0,
        }
    }
}

impl QualitySummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one measurement in.
    pub fn record(&mut self, q: &RegionQuality) {
        self.count += 1;
        self.sum_segments += q.segments as u64;
        self.sum_users += q.users;
        self.sum_relative_anonymity += q.relative_anonymity;
        self.sum_total_length += q.total_length;
        self.min_relative_anonymity = self.min_relative_anonymity.min(q.relative_anonymity);
        self.max_segments = self.max_segments.max(q.segments);
    }

    /// Measurements recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean region size in segments (0 when empty).
    pub fn mean_segments(&self) -> f64 {
        self.mean(self.sum_segments as f64)
    }

    /// Mean users covered per region (0 when empty).
    pub fn mean_users(&self) -> f64 {
        self.mean(self.sum_users as f64)
    }

    /// Mean relative anonymity (0 when empty; ≥ 1 when every region met
    /// its k).
    pub fn mean_relative_anonymity(&self) -> f64 {
        self.mean(self.sum_relative_anonymity)
    }

    /// Worst (smallest) relative anonymity seen (0 when empty). A value
    /// ≥ 1 certifies every recorded region was k-anonymous.
    pub fn min_relative_anonymity(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_relative_anonymity
        }
    }

    /// Mean total road length of the regions in meters (0 when empty).
    pub fn mean_total_length(&self) -> f64 {
        self.mean(self.sum_total_length)
    }

    /// Largest region seen, in segments.
    pub fn max_segments(&self) -> usize {
        self.max_segments
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &QualitySummary) {
        self.count += other.count;
        self.sum_segments += other.sum_segments;
        self.sum_users += other.sum_users;
        self.sum_relative_anonymity += other.sum_relative_anonymity;
        self.sum_total_length += other.sum_total_length;
        self.min_relative_anonymity = self
            .min_relative_anonymity
            .min(other.min_relative_anonymity);
        self.max_segments = self.max_segments.max(other.max_segments);
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            sum / self.count as f64
        }
    }
}

impl fmt::Display for QualitySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} regions: {:.1} segments mean (max {}), rel-k mean {:.2} min {:.2}, {:.0} m mean",
            self.count,
            self.mean_segments(),
            self.max_segments,
            self.mean_relative_anonymity(),
            self.min_relative_anonymity(),
            self.mean_total_length()
        )
    }
}

/// Running success-rate aggregator across many requests (experiment B6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuccessRate {
    /// Requests attempted.
    pub attempts: u64,
    /// Requests that produced a region.
    pub successes: u64,
}

impl SuccessRate {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request outcome.
    pub fn record(&mut self, success: bool) {
        self.attempts += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Success fraction in `[0, 1]` (0 when nothing was attempted).
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Merges another aggregator into this one.
    pub fn merge(&mut self, other: SuccessRate) {
        self.attempts += other.attempts;
        self.successes += other.successes;
    }
}

impl fmt::Display for SuccessRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.successes,
            self.attempts,
            self.rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RgeEngine;
    use crate::multilevel::anonymize;
    use crate::profile::LevelRequirement;
    use keystream::Key256;
    use roadnet::{grid_city, SegmentId};

    #[test]
    fn quality_of_a_simple_run() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(10).tolerance(SpatialTolerance::TotalLength(5000.0)))
            .build()
            .unwrap();
        let keys = vec![Key256::from_seed(1)];
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(15),
            &profile,
            &keys,
            1,
            &RgeEngine::new(),
        )
        .unwrap();
        let q = RegionQuality::measure(&net, &snapshot, &profile, &out);
        assert!(q.relative_anonymity >= 1.0);
        assert!(q.users >= 10);
        assert!(q.segments >= 5); // 2 users/segment
        assert!(q.relative_spatial_resolution > 0.0 && q.relative_spatial_resolution <= 1.0);
        assert!(q.draws_per_segment >= 1.0);
        assert!((q.total_length - q.segments as f64 * 100.0).abs() < 1e-9);
        let text = q.to_string();
        assert!(text.contains("segments"));
    }

    #[test]
    fn unlimited_tolerance_reports_zero_relative_resolution() {
        let net = grid_city(5, 5, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(5))
            .build()
            .unwrap();
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(0),
            &profile,
            &[Key256::from_seed(2)],
            1,
            &RgeEngine::new(),
        )
        .unwrap();
        let q = RegionQuality::measure(&net, &snapshot, &profile, &out);
        assert_eq!(q.relative_spatial_resolution, 0.0);
    }

    #[test]
    fn quality_summary_aggregates_means_and_extremes() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(8))
            .build()
            .unwrap();
        let mut summary = QualitySummary::new();
        assert_eq!(summary.count(), 0);
        assert_eq!(summary.mean_segments(), 0.0);
        assert_eq!(summary.min_relative_anonymity(), 0.0);
        for seed in 0..4u64 {
            let out = anonymize(
                &net,
                &snapshot,
                SegmentId(10 + seed as u32),
                &profile,
                &[Key256::from_seed(seed)],
                seed,
                &RgeEngine::new(),
            )
            .unwrap();
            summary.record(&RegionQuality::measure(&net, &snapshot, &profile, &out));
        }
        assert_eq!(summary.count(), 4);
        assert!(summary.mean_segments() >= 4.0);
        assert!(summary.min_relative_anonymity() >= 1.0);
        assert!(summary.mean_relative_anonymity() >= summary.min_relative_anonymity());
        assert!(summary.max_segments() as f64 >= summary.mean_segments());
        assert!(summary.mean_users() >= 8.0);
        assert!(summary.mean_total_length() > 0.0);

        let mut merged = QualitySummary::new();
        merged.merge(&summary);
        merged.merge(&QualitySummary::new());
        assert_eq!(merged, summary);
        assert!(merged.to_string().contains("4 regions"));
    }

    #[test]
    fn success_rate_aggregation() {
        let mut sr = SuccessRate::new();
        assert_eq!(sr.rate(), 0.0);
        sr.record(true);
        sr.record(true);
        sr.record(false);
        assert!((sr.rate() - 2.0 / 3.0).abs() < 1e-12);
        let mut other = SuccessRate::new();
        other.record(false);
        sr.merge(other);
        assert_eq!(sr.attempts, 4);
        assert_eq!(sr.successes, 2);
        assert!(sr.to_string().contains("50.0%"));
    }
}
