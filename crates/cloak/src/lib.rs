//! # cloak — the ReverseCloak core
//!
//! Reversible multi-level location cloaking over road networks,
//! reproducing Li, Palanisamy, Kalaivanan & Raghunathan, *ReverseCloak: A
//! Reversible Multi-level Location Privacy Protection System* (ICDCS 2017)
//! and the companion CIKM 2015 algorithms paper.
//!
//! A user's exact road segment is perturbed into a *cloaking region* — a
//! connected set of segments guaranteeing location k-anonymity and segment
//! l-diversity — in a way that is **reversible**: each privacy level's
//! expansion is driven by a shared secret key, and a requester holding the
//! right keys can peel the region back level by level, down to the exact
//! segment. Without the keys, the region leaks nothing beyond its own
//! extent.
//!
//! ## The two algorithms
//!
//! * [`RgeEngine`] — **Reversible Global Expansion**: per-step transition
//!   tables over (cloak × frontier), rebuilt on the fly. Slower
//!   anonymization, no resident memory.
//! * [`RpleEngine`] — **Reversible Pre-assignment-based Local Expansion**:
//!   collision-free forward/backward transition lists precomputed for the
//!   whole map (Algorithm 1). Faster per step, `2·E·T` cells resident.
//!
//! ## Quick start
//!
//! ```
//! use cloak::{anonymize, deanonymize, LevelRequirement, PrivacyProfile, RgeEngine};
//! use keystream::{Key256, KeyManager, Level};
//! use mobisim::OccupancySnapshot;
//! use roadnet::{grid_city, SegmentId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_city(6, 6, 100.0);
//! let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
//! let profile = PrivacyProfile::builder()
//!     .level(LevelRequirement::with_k(5))
//!     .level(LevelRequirement::with_k(10))
//!     .build()?;
//! let manager = KeyManager::from_seed(2, 42);
//! let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
//!
//! let engine = RgeEngine::new();
//! let out = anonymize(&net, &snapshot, SegmentId(17), &profile, &keys, 1, &engine)?;
//! assert!(out.payload.region_size() >= 10);
//!
//! // A fully privileged requester recovers the exact segment.
//! let view = deanonymize(&net, &out.payload, &manager.keys_down_to(Level(0))?, &engine)?;
//! assert_eq!(view.segments, vec![SegmentId(17)]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Pooled entry points
//!
//! [`anonymize`] and [`deanonymize`] allocate their working buffers per
//! call. On a serving hot path, thread a [`CloakScratch`] through the
//! `*_with_scratch` variants instead: the buffers grow to the workload's
//! high-water mark once and every further cloak is allocation-free at
//! steady state. Scratch is plain state — any scratch, including a fresh
//! one, yields bit-identical results.
//!
//! ```
//! use cloak::{
//!     anonymize_with_scratch, deanonymize_with_scratch, CloakScratch, LevelRequirement,
//!     PrivacyProfile, RgeEngine,
//! };
//! use keystream::{Key256, KeyManager, Level};
//! use mobisim::OccupancySnapshot;
//! use roadnet::{grid_city, SegmentId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_city(6, 6, 100.0);
//! let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
//! let profile = PrivacyProfile::builder().level(LevelRequirement::with_k(6)).build()?;
//! let engine = RgeEngine::new();
//!
//! // One scratch serves every request this worker will ever handle.
//! let mut scratch = CloakScratch::new();
//! for (nonce, segment) in [(1u64, SegmentId(12)), (2, SegmentId(40))] {
//!     let manager = KeyManager::from_seed(1, nonce);
//!     let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
//!     let out = anonymize_with_scratch(
//!         &net, &snapshot, segment, &profile, &keys, nonce, &engine, &mut scratch,
//!     )?;
//!     let view = deanonymize_with_scratch(
//!         &net,
//!         &out.payload,
//!         &manager.keys_down_to(Level(0))?,
//!         &engine,
//!         &mut scratch,
//!     )?;
//!     assert_eq!(view.segments, vec![segment]);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Adversarial evaluation
//!
//! The [`attack`] module quantifies the keyless adversary against a
//! single cloak (posterior entropy, guess success, selection
//! uniformity); [`attack::temporal`] extends it to an adversary watching
//! the whole per-tick receipt stream of a continuously anonymizing
//! system, and [`attack::adaptive`] to a learning adversary — a Bayesian
//! trajectory particle filter — that compounds evidence across the
//! stream. See `docs/ARCHITECTURE.md` at the repository root for how
//! the pieces fit together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod baseline;
pub mod engine;
pub mod error;
pub mod frontier;
pub mod metrics;
pub mod multilevel;
pub mod payload;
pub mod preassign;
pub mod profile;
pub mod region;
pub mod scratch;
pub mod table;

pub use attack::adaptive::{AdaptiveConfig, AdaptiveStats, AdaptiveTracker};
pub use attack::temporal::{
    AdversaryConfig, AdversaryMode, AttackObservation, AttackSummary, Observation, ReachScratch,
    ReplayProbe, TemporalAdversary,
};
pub use baseline::{
    random_expansion, random_expansion_with, replay_expansion_matches, BaselineOutcome,
    ExpansionScratch,
};
pub use engine::{HintStack, ReversibleEngine, RgeEngine, RpleEngine, StepAccept, MAX_REDRAWS};
pub use error::{CloakError, DeanonError, DecodeError, StepFailure};
pub use metrics::{QualitySummary, RegionQuality, SuccessRate};
pub use multilevel::{
    ambiguity_profile, anonymize, anonymize_batch_with_scratch, anonymize_with_retry,
    anonymize_with_retry_scratch, anonymize_with_scratch, deanonymize, deanonymize_with_scratch,
    AmbiguityReport, AnonymizationOutcome, BatchCloakItem, DeanonymizedView, LevelStats,
    MAX_STEPS_PER_LEVEL,
};
pub use payload::{CloakPayload, LevelMeta};
pub use preassign::PreassignedTables;
pub use profile::{LevelRequirement, PrivacyProfile, PrivacyProfileBuilder, SpatialTolerance};
pub use region::RegionState;
pub use scratch::{BatchCloakScratch, CloakScratch, StepScratch};
pub use table::{TableView, TransitionTable};
