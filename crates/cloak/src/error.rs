//! Error types of the cloaking core.

use keystream::Level;
use roadnet::SegmentId;
use std::error::Error;
use std::fmt;

/// Errors from anonymization.
#[derive(Debug, Clone, PartialEq)]
pub enum CloakError {
    /// The privacy profile was empty or internally inconsistent.
    InvalidProfile(String),
    /// The starting segment does not exist in the network.
    UnknownSegment(SegmentId),
    /// The number of keys did not match the number of levels.
    KeyCountMismatch {
        /// Keyed levels required by the profile.
        expected: usize,
        /// Keys supplied.
        got: usize,
    },
    /// Expansion could not meet a level's requirement: the frontier was
    /// exhausted, the spatial tolerance was hit, or the engine could not
    /// find an unambiguous reversible transition.
    CloakingFailed {
        /// The level that could not be satisfied.
        level: Level,
        /// Why expansion stopped.
        reason: StepFailure,
    },
    /// The anonymizer could not durably journal the owner's ratchet
    /// advance, so no receipt was issued for the epoch: a receipt must
    /// never reference an unjournaled epoch.
    Persistence(String),
}

impl fmt::Display for CloakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloakError::InvalidProfile(msg) => write!(f, "invalid privacy profile: {msg}"),
            CloakError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            CloakError::KeyCountMismatch { expected, got } => {
                write!(f, "profile needs {expected} keys but {got} were supplied")
            }
            CloakError::CloakingFailed { level, reason } => {
                write!(f, "cloaking failed at level {level}: {reason}")
            }
            CloakError::Persistence(msg) => {
                write!(f, "chain journal write failed (receipt withheld): {msg}")
            }
        }
    }
}

impl Error for CloakError {}

/// Why a single expansion step could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFailure {
    /// The cloaking region has no candidate segments left.
    NoCandidates,
    /// Every admissible candidate would exceed the spatial tolerance, or
    /// no reversibility-preserving transition was found within the redraw
    /// budget.
    RedrawBudgetExhausted,
    /// The step limit was reached before the privacy requirement was met.
    StepLimit,
    /// The selection would be ambiguous to reverse — the paper's
    /// "collision" issue. The request should be retried under a fresh
    /// nonce.
    Collision,
}

impl fmt::Display for StepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepFailure::NoCandidates => write!(f, "no candidate segments on the frontier"),
            StepFailure::RedrawBudgetExhausted => {
                write!(
                    f,
                    "redraw budget exhausted (tolerance or collision avoidance)"
                )
            }
            StepFailure::StepLimit => write!(f, "step limit reached"),
            StepFailure::Collision => {
                write!(f, "reversal collision detected; retry with a fresh nonce")
            }
        }
    }
}

/// Structured payload-decode failures.
///
/// [`crate::CloakPayload::decode`] parses attacker-supplied bytes, so
/// every variant carries what the parser *saw* (claimed lengths, the
/// offending version byte) rather than a free-form string: fuzzers and
/// callers can assert on the failure class, and no variant is produced
/// by allocating first and validating later — length and count fields
/// are capped against the remaining input before any allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Fewer bytes remained than a fixed-size field requires.
    Truncated {
        /// The field being parsed when input ran out.
        field: &'static str,
        /// Bytes the field needs.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// The payload does not open with the `RCLK` magic.
    BadMagic,
    /// The version byte is not the current wire version. Version 1
    /// (epoch-less) payloads are retired and must be re-anonymized.
    UnsupportedVersion(u8),
    /// An embedded length/count field claims more elements than the
    /// remaining input could possibly hold — hostile or corrupt, and
    /// rejected *before* any allocation is sized from it.
    HostileLength {
        /// The count field in question.
        field: &'static str,
        /// Elements the field claimed.
        claimed: u64,
        /// Bytes actually remaining in the input.
        available: usize,
    },
    /// Segment ids were not strictly ascending.
    UnsortedSegments,
    /// The tolerance kind byte was not a known encoding.
    UnknownToleranceKind(u8),
    /// A tolerance value was NaN, infinite, or negative.
    NonFiniteTolerance,
    /// A level declared more quotient hints than forward steps.
    HintOverflow {
        /// Hints declared.
        hints: u64,
        /// Steps the level has.
        steps: u64,
    },
    /// Bytes remained after a structurally complete payload.
    TrailingBytes(usize),
    /// The per-level counts do not add up to the region size.
    InconsistentCounts {
        /// Sum of level counts plus the seed segment.
        declared: u64,
        /// Segments actually present in the region.
        region: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                field,
                needed,
                available,
            } => write!(
                f,
                "truncated {field}: need {needed} bytes, {available} available"
            ),
            DecodeError::BadMagic => write!(f, "bad magic (not an RCLK payload)"),
            DecodeError::UnsupportedVersion(v) => write!(
                f,
                "unsupported version {v} (expected 2; epoch-less v1 payloads \
                 are retired and must be re-anonymized)"
            ),
            DecodeError::HostileLength {
                field,
                claimed,
                available,
            } => write!(
                f,
                "hostile {field} count: claims {claimed} entries but only \
                 {available} bytes remain"
            ),
            DecodeError::UnsortedSegments => {
                write!(f, "segment ids must be strictly ascending")
            }
            DecodeError::UnknownToleranceKind(k) => write!(f, "unknown tolerance kind {k}"),
            DecodeError::NonFiniteTolerance => write!(f, "non-finite tolerance"),
            DecodeError::HintOverflow { hints, steps } => {
                write!(f, "{hints} hints declared for {steps} steps")
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            DecodeError::InconsistentCounts { declared, region } => write!(
                f,
                "level counts declare {declared} segments but region holds {region}"
            ),
        }
    }
}

impl Error for DecodeError {}

impl From<DecodeError> for DeanonError {
    fn from(e: DecodeError) -> Self {
        DeanonError::MalformedPayload(e.to_string())
    }
}

/// Errors from de-anonymization.
#[derive(Debug, Clone, PartialEq)]
pub enum DeanonError {
    /// The payload could not be decoded (see [`DecodeError`] for the
    /// structured classification; this carries its rendered message).
    MalformedPayload(String),
    /// Keys must be supplied contiguously from the payload's top level
    /// downward.
    NonContiguousKeys {
        /// The level whose key was expected next.
        expected: Level,
        /// The level actually supplied.
        got: Level,
    },
    /// No segment in the region matches the level's bootstrap tag — the
    /// key is wrong (or the payload was tampered with).
    WrongKey(Level),
    /// The backward walk failed to identify a predecessor — wrong key or
    /// corrupted payload.
    ReversalFailed {
        /// The level being peeled when the walk failed.
        level: Level,
        /// The backward step index (counting down) that failed.
        step: usize,
    },
}

impl fmt::Display for DeanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeanonError::MalformedPayload(msg) => write!(f, "malformed payload: {msg}"),
            DeanonError::NonContiguousKeys { expected, got } => write!(
                f,
                "keys must peel levels contiguously from the top: expected {expected}, got {got}"
            ),
            DeanonError::WrongKey(level) => {
                write!(f, "key for level {level} does not match the payload")
            }
            DeanonError::ReversalFailed { level, step } => {
                write!(f, "reversal failed at level {level}, backward step {step}")
            }
        }
    }
}

impl Error for DeanonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CloakError::CloakingFailed {
            level: Level(2),
            reason: StepFailure::NoCandidates,
        };
        assert!(e.to_string().contains("L2"));
        assert!(e.to_string().contains("no candidate"));

        let e = CloakError::KeyCountMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));

        let e = DeanonError::NonContiguousKeys {
            expected: Level(3),
            got: Level(1),
        };
        assert!(e.to_string().contains("L3") && e.to_string().contains("L1"));

        assert!(DeanonError::WrongKey(Level(2)).to_string().contains("L2"));
        assert!(DeanonError::ReversalFailed {
            level: Level(1),
            step: 4
        }
        .to_string()
        .contains("step 4"));
        assert!(StepFailure::StepLimit.to_string().contains("limit"));
        assert!(StepFailure::RedrawBudgetExhausted
            .to_string()
            .contains("redraw"));
    }
}
