//! Adversarial analysis: what a requester *without* the keys can infer.
//!
//! The paper's privacy claim: "without the secret key, the cloaked region
//! preserves strong privacy properties, allowing no additional information
//! to be inferred even when the adversary has complete knowledge about the
//! location perturbation algorithm used." This module quantifies that
//! claim (experiment B5):
//!
//! * [`peel_candidates`] — segments that could plausibly be a level's
//!   last-added segment (the adversary's search space for one backward
//!   step),
//! * [`l0_posterior_entropy`] — entropy of the adversary's posterior over
//!   the user's segment,
//! * [`guess_success_rate`] — Monte-Carlo success of the optimal
//!   keyless guess,
//! * [`selection_uniformity`] — empirical check that, over random keys,
//!   each linked candidate is selected with near-equal probability (the
//!   "all its linked segments would have the same probability" property).
//!
//! These score one cloak in isolation. The [`temporal`] submodule mounts
//! the longitudinal versions — multi-tick peel intersection, snapshot
//! correlation, movement-model pruning, and replay inversion against
//! keyless schemes — over a whole receipt stream. The [`adaptive`]
//! submodule upgrades the stream adversary to a learning one: a Bayesian
//! particle filter over whole trajectories that compounds evidence
//! across ticks instead of re-deriving it per observation.

pub mod adaptive;
pub mod temporal;

use crate::engine::ReversibleEngine;
use crate::frontier::candidates;
use crate::profile::SpatialTolerance;
use crate::region::RegionState;
use keystream::{DrawStream, Key256};
use roadnet::{RoadNetwork, SegmentId};

/// Segments of `region` that could have been the last one added: removing
/// them keeps the region connected and they are adjacent to the remainder.
///
/// This is the keyless adversary's candidate set for undoing one step.
///
/// Allocating reference implementation — one connectivity DFS per member,
/// `O(|region|²)`. The temporal adversary's per-tick loop uses
/// [`peel_candidates_into`], which computes the same set with a single
/// articulation-point pass.
pub fn peel_candidates(net: &RoadNetwork, region: &[SegmentId]) -> Vec<SegmentId> {
    if region.len() <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, &s) in region.iter().enumerate() {
        let rest: Vec<SegmentId> = region
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &x)| x)
            .collect();
        if net.segments_connected(&rest) && rest.iter().any(|&r| net.segments_adjacent(r, s)) {
            out.push(s);
        }
    }
    out
}

/// Pooled buffers for [`peel_candidates_into`]: the region-induced
/// adjacency in CSR form plus the iterative articulation-point DFS
/// state. Same reuse contract as [`crate::CloakScratch`] — plain state,
/// results identical to [`peel_candidates`] for any scratch.
#[derive(Debug, Clone, Default)]
pub struct PeelScratch {
    /// `SegmentId -> local vertex index`, valid where `pos_epoch` holds
    /// the current epoch (stamped membership, never cleared).
    pos: Vec<u32>,
    pos_epoch: Vec<u32>,
    epoch: u32,
    /// Region-induced adjacency, CSR over local vertex indices.
    adj: Vec<u32>,
    adj_off: Vec<u32>,
    /// DFS discovery times / low-links / articulation flags.
    disc: Vec<u32>,
    low: Vec<u32>,
    art: Vec<bool>,
    /// Explicit DFS stack: `(vertex, parent, adjacency cursor)`.
    stack: Vec<(u32, u32, u32)>,
}

impl PeelScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`peel_candidates`] with caller-owned scratch, computed as **one**
/// articulation-point DFS over the region-induced adjacency instead of
/// one connectivity check per member.
///
/// For a connected region of `n ≥ 2` segments, a member can be peeled
/// exactly when it is *not* an articulation vertex of the induced graph
/// (removing a non-articulation vertex keeps the rest connected, and in
/// a connected graph every vertex has a neighbor among the rest).
/// Disconnected regions defer to the reference scan, which is the
/// semantics of record. Output order matches [`peel_candidates`]
/// (region iteration order).
pub fn peel_candidates_into(
    net: &RoadNetwork,
    region: &[SegmentId],
    scratch: &mut PeelScratch,
    out: &mut Vec<SegmentId>,
) {
    out.clear();
    let n = region.len();
    if n <= 1 {
        return;
    }
    let PeelScratch {
        pos,
        pos_epoch,
        epoch,
        adj,
        adj_off,
        disc,
        low,
        art,
        stack,
    } = scratch;
    let seg_count = net.segment_count();
    if pos.len() < seg_count {
        pos.resize(seg_count, 0);
        pos_epoch.resize(seg_count, 0);
    }
    *epoch = epoch.wrapping_add(1);
    if *epoch == 0 {
        pos_epoch.fill(0);
        *epoch = 1;
    }
    for (i, &s) in region.iter().enumerate() {
        pos[s.index()] = i as u32;
        pos_epoch[s.index()] = *epoch;
    }
    adj.clear();
    adj_off.clear();
    adj_off.push(0);
    for &s in region {
        for &nb in net.neighbor_segments_csr(s) {
            if pos_epoch[nb.index()] == *epoch {
                adj.push(pos[nb.index()]);
            }
        }
        adj_off.push(adj.len() as u32);
    }

    const UNVISITED: u32 = u32::MAX;
    disc.clear();
    disc.resize(n, UNVISITED);
    low.clear();
    low.resize(n, 0);
    art.clear();
    art.resize(n, false);
    let mut timer: u32 = 1;
    let mut root_children: u32 = 0;
    let mut visited: usize = 1;
    disc[0] = 0;
    stack.clear();
    stack.push((0, UNVISITED, adj_off[0]));
    while let Some(&mut (v, parent, ref mut cursor)) = stack.last_mut() {
        let c = *cursor;
        if c < adj_off[v as usize + 1] {
            *cursor += 1;
            let w = adj[c as usize];
            if w == parent {
                // Skipping every traversal edge to the parent is sound
                // for *vertex* cuts: a parallel back-edge could only set
                // low[v] to disc[parent], which leaves the
                // `low ≥ disc[parent]` test unchanged.
                continue;
            }
            if disc[w as usize] == UNVISITED {
                disc[w as usize] = timer;
                low[w as usize] = timer;
                timer += 1;
                visited += 1;
                stack.push((w, v, adj_off[w as usize]));
            } else {
                let d = disc[w as usize];
                if d < low[v as usize] {
                    low[v as usize] = d;
                }
            }
        } else {
            stack.pop();
            if let Some(&(p, _, _)) = stack.last() {
                let lv = low[v as usize];
                if lv < low[p as usize] {
                    low[p as usize] = lv;
                }
                if p == 0 {
                    root_children += 1;
                } else if lv >= disc[p as usize] {
                    art[p as usize] = true;
                }
            }
        }
    }
    if visited < n {
        out.extend(peel_candidates(net, region));
        return;
    }
    art[0] = root_children > 1;
    for (i, &s) in region.iter().enumerate() {
        if !art[i] {
            out.push(s);
        }
    }
}

/// Entropy (bits) of the adversary's posterior over the user's segment.
///
/// Without a key, every segment of a connected region is a feasible `L0`
/// under some chain, and the keyed selection makes all chains equally
/// likely a priori — the posterior is uniform over the region, giving
/// `log2(|region|)` bits. (Sanity-checked empirically by
/// [`guess_success_rate`].)
pub fn l0_posterior_entropy(region: &[SegmentId]) -> f64 {
    if region.is_empty() {
        0.0
    } else {
        (region.len() as f64).log2()
    }
}

/// Monte-Carlo estimate of the keyless adversary's success guessing the
/// user's segment: the fraction of `trials` anonymizations (fresh keys and
/// nonces) where a uniform guess over the region hits the true segment.
///
/// With the privacy claim holding, this converges to
/// `E[1 / |region|]`, which is also returned as the analytic prediction
/// `(hit_rate, predicted)`.
pub fn guess_success_rate(
    net: &RoadNetwork,
    snapshot: &mobisim::OccupancySnapshot,
    user_segment: SegmentId,
    profile: &crate::profile::PrivacyProfile,
    engine: &dyn ReversibleEngine,
    trials: u32,
    seed: u64,
) -> (f64, f64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u32;
    let mut predicted = 0.0f64;
    let mut done = 0u32;
    for t in 0..trials {
        let keys: Vec<Key256> = (0..profile.level_count())
            .map(|_| Key256::generate(&mut rng))
            .collect();
        let out = match crate::multilevel::anonymize(
            net,
            snapshot,
            user_segment,
            profile,
            &keys,
            seed ^ (t as u64).wrapping_mul(0x9e37_79b9),
            engine,
        ) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let n = out.payload.region_size();
        predicted += 1.0 / n as f64;
        let guess = out.payload.segments[rng.gen_range(0..n)];
        if guess == user_segment {
            hits += 1;
        }
        done += 1;
    }
    if done == 0 {
        return (0.0, 0.0);
    }
    (hits as f64 / done as f64, predicted / done as f64)
}

/// Empirical distribution of the first forward transition over the
/// frontier, across `trials` random keys. Returns
/// `(frontier_size, max_abs_deviation_from_uniform)` where the deviation
/// is measured on selection frequencies.
///
/// A small deviation demonstrates the paper's pseudo-randomness claim:
/// without the key, "all its linked segments would have the same
/// probability to be selected".
pub fn selection_uniformity(
    net: &RoadNetwork,
    seed_segment: SegmentId,
    engine: &dyn ReversibleEngine,
    trials: u32,
    seed: u64,
) -> (usize, f64) {
    let region = RegionState::from_segments(net, [seed_segment]);
    let frontier = candidates(net, &region);
    // RPLE selects only among the seed's pre-assigned links; restrict the
    // support to segments actually selectable so uniformity is measured
    // over the right set.
    let mut counts = std::collections::HashMap::new();
    let mut scratch = crate::scratch::StepScratch::default();
    let mut done = 0u32;
    for t in 0..trials {
        let key = Key256::from_seed(seed.wrapping_add(t as u64).wrapping_mul(0x2545_f491));
        let mut stream = DrawStream::new(key, b"uniformity-probe");
        if let Ok(acc) = engine.forward_step(
            net,
            &region,
            seed_segment,
            &mut stream,
            &SpatialTolerance::Unlimited,
            &mut scratch,
        ) {
            *counts.entry(acc.segment).or_insert(0u32) += 1;
            done += 1;
        }
    }
    if done == 0 || counts.is_empty() {
        return (frontier.len(), 1.0);
    }
    let support = counts.len();
    let uniform = 1.0 / support as f64;
    let max_dev = counts
        .values()
        .map(|&c| (c as f64 / done as f64 - uniform).abs())
        .fold(0.0f64, f64::max);
    (support, max_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RgeEngine, RpleEngine};
    use crate::profile::{LevelRequirement, PrivacyProfile};
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    #[test]
    fn peel_candidates_keep_connectivity() {
        let net = grid_city(4, 4, 100.0);
        // An L-shaped region: s0-s1 horizontal-ish chain plus neighbor.
        let region = vec![SegmentId(0), SegmentId(1), SegmentId(2)];
        let cands = peel_candidates(&net, &region);
        for c in &cands {
            let rest: Vec<SegmentId> = region.iter().copied().filter(|s| s != c).collect();
            assert!(net.segments_connected(&rest));
        }
        assert!(!cands.is_empty());
        // Singleton region has no peel candidates.
        assert!(peel_candidates(&net, &[SegmentId(0)]).is_empty());
    }

    #[test]
    fn articulation_peel_matches_reference() {
        let net = grid_city(5, 5, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut scratch = PeelScratch::new();
        let mut fast = Vec::new();
        // Engine-grown regions (always connected) of varied shapes.
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(10))
            .build()
            .unwrap();
        let engine = RgeEngine::new();
        for nonce in 0..24u64 {
            let keys = vec![Key256::from_seed(900 + nonce)];
            let out = crate::multilevel::anonymize(
                &net,
                &snapshot,
                SegmentId((nonce % 40) as u32),
                &profile,
                &keys,
                nonce,
                &engine,
            )
            .unwrap();
            peel_candidates_into(&net, &out.payload.segments, &mut scratch, &mut fast);
            assert_eq!(
                fast,
                peel_candidates(&net, &out.payload.segments),
                "nonce {nonce}"
            );
        }
        // Degenerate and disconnected inputs agree too (the latter via
        // the reference fallback).
        for region in [
            vec![],
            vec![SegmentId(0)],
            vec![SegmentId(0), SegmentId(1)],
            vec![SegmentId(0), SegmentId(30)],
            vec![SegmentId(0), SegmentId(1), SegmentId(30), SegmentId(31)],
        ] {
            peel_candidates_into(&net, &region, &mut scratch, &mut fast);
            assert_eq!(fast, peel_candidates(&net, &region), "{region:?}");
        }
    }

    #[test]
    fn entropy_grows_with_region() {
        assert_eq!(l0_posterior_entropy(&[]), 0.0);
        assert_eq!(l0_posterior_entropy(&[SegmentId(0)]), 0.0);
        let four: Vec<SegmentId> = (0..4).map(SegmentId).collect();
        assert!((l0_posterior_entropy(&four) - 2.0).abs() < 1e-12);
        let eight: Vec<SegmentId> = (0..8).map(SegmentId).collect();
        assert!((l0_posterior_entropy(&eight) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn keyless_guessing_matches_uniform_prediction() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(8))
            .build()
            .unwrap();
        let engine = RgeEngine::new();
        let (hit, predicted) =
            guess_success_rate(&net, &snapshot, SegmentId(20), &profile, &engine, 400, 42);
        // With k=8 and 1 user/segment, regions have 8 segments: predicted
        // success 1/8. Allow Monte-Carlo noise.
        assert!((predicted - 0.125).abs() < 0.01, "predicted {predicted}");
        assert!((hit - predicted).abs() < 0.06, "hit {hit} vs {predicted}");
    }

    #[test]
    fn rge_first_step_selection_is_near_uniform() {
        let net = grid_city(6, 6, 100.0);
        let engine = RgeEngine::new();
        let (support, dev) = selection_uniformity(&net, SegmentId(20), &engine, 3000, 7);
        assert!(support >= 4, "support {support}");
        assert!(dev < 0.05, "deviation {dev}");
    }

    #[test]
    fn rple_first_step_selection_is_near_uniform_over_links() {
        let net = grid_city(6, 6, 100.0);
        let engine = RpleEngine::build(&net, 8);
        let (support, dev) = selection_uniformity(&net, SegmentId(20), &engine, 3000, 9);
        assert!(support >= 3, "support {support}");
        assert!(dev < 0.06, "deviation {dev}");
    }
}

/// What a *density-aware* keyless adversary achieves: unlike the uniform
/// guesser it knows the public traffic distribution, so its posterior
/// over the user's segment is `users(s) / region_users` (every user in
/// the region is equally likely to have issued the request).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DensityAdversary {
    /// Hit rate of a guesser sampling from the density posterior.
    pub hit_rate: f64,
    /// Mean posterior mass on the true segment — the analytic value the
    /// hit rate converges to.
    pub true_posterior_mass: f64,
    /// Mean posterior mass on the *heaviest* region segment — an upper
    /// bound on any keyless guesser, dictated purely by k-anonymity (a
    /// one-way cloak gives the same bound); the reversible chain adds
    /// nothing on top.
    pub max_posterior_mass: f64,
}

/// Monte-Carlo evaluation of the density-aware keyless adversary over
/// `trials` anonymizations with fresh keys.
pub fn density_guess_success_rate(
    net: &RoadNetwork,
    snapshot: &mobisim::OccupancySnapshot,
    user_segment: SegmentId,
    profile: &crate::profile::PrivacyProfile,
    engine: &dyn ReversibleEngine,
    trials: u32,
    seed: u64,
) -> DensityAdversary {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u32;
    let mut true_mass = 0.0f64;
    let mut max_mass = 0.0f64;
    let mut done = 0u32;
    for t in 0..trials {
        let keys: Vec<Key256> = (0..profile.level_count())
            .map(|_| Key256::generate(&mut rng))
            .collect();
        let out = match crate::multilevel::anonymize(
            net,
            snapshot,
            user_segment,
            profile,
            &keys,
            seed ^ (t as u64).wrapping_mul(0x517c_c1e5),
            engine,
        ) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let total = snapshot.users_in(out.payload.segments.iter().copied());
        if total == 0 {
            continue;
        }
        // Sample a guess from the posterior users(s)/total.
        let mut x = rng.gen_range(0..total);
        let mut guess = out.payload.segments[0];
        for &s in &out.payload.segments {
            let u = snapshot.users_on(s) as u64;
            if x < u {
                guess = s;
                break;
            }
            x -= u;
        }
        if guess == user_segment {
            hits += 1;
        }
        true_mass += snapshot.users_on(user_segment) as f64 / total as f64;
        max_mass += out
            .payload
            .segments
            .iter()
            .map(|&s| snapshot.users_on(s))
            .max()
            .unwrap_or(0) as f64
            / total as f64;
        done += 1;
    }
    if done == 0 {
        return DensityAdversary::default();
    }
    DensityAdversary {
        hit_rate: hits as f64 / done as f64,
        true_posterior_mass: true_mass / done as f64,
        max_posterior_mass: max_mass / done as f64,
    }
}

#[cfg(test)]
mod density_tests {
    use super::*;
    use crate::engine::RgeEngine;
    use crate::profile::{LevelRequirement, PrivacyProfile};
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    #[test]
    fn density_adversary_matches_bayes_bound_under_uniform_traffic() {
        // Uniform traffic: density adds no information; hit rate must
        // stay near 1/|region| (and near the Bayes prediction).
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(12).l(6))
            .build()
            .unwrap();
        let engine = RgeEngine::new();
        let adv =
            density_guess_success_rate(&net, &snapshot, SegmentId(20), &profile, &engine, 300, 3);
        assert!(
            (adv.hit_rate - adv.true_posterior_mass).abs() < 0.07,
            "hit {} vs posterior {}",
            adv.hit_rate,
            adv.true_posterior_mass
        );
        // With 6+ equal segments no keyless guesser clears ~1/6 by much.
        assert!(adv.max_posterior_mass < 0.35, "{}", adv.max_posterior_mass);
    }

    #[test]
    fn density_adversary_beats_uniform_on_skewed_traffic_but_is_bounded() {
        // A hotspot next to the user: the adversary gains, but only up to
        // users_max/k — the k-anonymity bound, not a reversibility leak.
        let net = grid_city(6, 6, 100.0);
        let mut counts = vec![1u32; net.segment_count()];
        counts[21] = 10; // hotspot adjacent to seed 20
        let snapshot = OccupancySnapshot::from_counts(counts);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(15).l(4))
            .build()
            .unwrap();
        let engine = RgeEngine::new();
        let adv =
            density_guess_success_rate(&net, &snapshot, SegmentId(20), &profile, &engine, 200, 5);
        // The posterior mass sits on the hotspot, which is NOT the user.
        assert!(adv.hit_rate < 0.2, "hit {}", adv.hit_rate);
        assert!(
            adv.max_posterior_mass > 0.3,
            "the hotspot dominates the region: {}",
            adv.max_posterior_mass
        );
    }
}
