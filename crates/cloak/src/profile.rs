//! User-defined privacy profiles: `(δk^i, σs^i)` per level plus segment
//! l-diversity.

use crate::error::CloakError;
use roadnet::{BoundingBox, RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};

/// The customizable maximum spatial resolution `σs` of a level: a bound on
/// how large the cloaking region may grow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SpatialTolerance {
    /// No bound.
    #[default]
    Unlimited,
    /// Total road length of the region must stay within this many meters.
    TotalLength(f64),
    /// The diagonal of the region's bounding box must stay within this
    /// many meters.
    BboxDiagonal(f64),
}

impl SpatialTolerance {
    /// Whether a region consisting of `segments` (with the candidate
    /// already included) still satisfies the tolerance.
    pub fn allows(&self, net: &RoadNetwork, total_length: f64, bbox: &BoundingBox) -> bool {
        let _ = net;
        match *self {
            SpatialTolerance::Unlimited => true,
            SpatialTolerance::TotalLength(max) => total_length <= max,
            SpatialTolerance::BboxDiagonal(max) => bbox.diagonal() <= max,
        }
    }

    /// Whether adding `candidate` to a region with the given running
    /// totals would still satisfy the tolerance.
    pub fn allows_extended(
        &self,
        net: &RoadNetwork,
        total_length: f64,
        bbox: &BoundingBox,
        candidate: SegmentId,
    ) -> bool {
        match *self {
            SpatialTolerance::Unlimited => true,
            SpatialTolerance::TotalLength(max) => {
                total_length + net.segment(candidate).length() <= max
            }
            SpatialTolerance::BboxDiagonal(max) => {
                let seg = net.segment(candidate);
                let mut bb = *bbox;
                bb.expand(net.junction(seg.a()).position());
                bb.expand(net.junction(seg.b()).position());
                bb.diagonal() <= max
            }
        }
    }
}

/// The privacy requirement of one level `Li`: `(δk, δl, σs)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelRequirement {
    /// Location k-anonymity: the region must contain at least this many
    /// users (the owner included).
    pub k: u32,
    /// Segment l-diversity: the region must span at least this many
    /// distinct segments.
    pub l: u32,
    /// Maximum spatial resolution for this level.
    pub tolerance: SpatialTolerance,
}

impl LevelRequirement {
    /// A requirement with the given `k`, `l = k.min(3)` segments and no
    /// spatial bound.
    pub fn with_k(k: u32) -> Self {
        LevelRequirement {
            k,
            l: k.min(3),
            tolerance: SpatialTolerance::Unlimited,
        }
    }

    /// Sets the l-diversity requirement.
    pub fn l(mut self, l: u32) -> Self {
        self.l = l;
        self
    }

    /// Sets the spatial tolerance.
    pub fn tolerance(mut self, t: SpatialTolerance) -> Self {
        self.tolerance = t;
        self
    }
}

/// The full multi-level privacy profile `(δk^i, σs^i), 1 ≤ i ≤ N-1`.
///
/// Level 0 (the user's own segment) is implicit; `requirements()[0]` is
/// the requirement of level `L1`.
///
/// ```
/// use cloak::{LevelRequirement, PrivacyProfile};
/// let profile = PrivacyProfile::builder()
///     .level(LevelRequirement::with_k(5))
///     .level(LevelRequirement::with_k(10))
///     .level(LevelRequirement::with_k(20))
///     .build()?;
/// assert_eq!(profile.level_count(), 3);
/// # Ok::<(), cloak::CloakError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyProfile {
    levels: Vec<LevelRequirement>,
}

impl PrivacyProfile {
    /// Starts building a profile.
    pub fn builder() -> PrivacyProfileBuilder {
        PrivacyProfileBuilder { levels: Vec::new() }
    }

    /// A profile with geometrically increasing `k` per level:
    /// `base_k, 2·base_k, 4·base_k, …` — a common multi-level shape.
    ///
    /// # Errors
    ///
    /// Fails if `levels == 0` or `base_k == 0`.
    pub fn geometric(levels: usize, base_k: u32) -> Result<Self, CloakError> {
        let mut b = Self::builder();
        for i in 0..levels {
            b = b.level(LevelRequirement::with_k(
                base_k.saturating_mul(1 << i.min(31)),
            ));
        }
        b.build()
    }

    /// Requirements for levels `L1..`, in order.
    pub fn requirements(&self) -> &[LevelRequirement] {
        &self.levels
    }

    /// Number of keyed levels (`N - 1`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The requirement of the top (most anonymous) level.
    pub fn top_requirement(&self) -> &LevelRequirement {
        self.levels.last().expect("profiles are never empty")
    }
}

/// Builder for [`PrivacyProfile`].
#[derive(Debug, Default)]
pub struct PrivacyProfileBuilder {
    levels: Vec<LevelRequirement>,
}

impl PrivacyProfileBuilder {
    /// Appends the next level's requirement.
    pub fn level(mut self, req: LevelRequirement) -> Self {
        self.levels.push(req);
        self
    }

    /// Validates and builds the profile.
    ///
    /// # Errors
    ///
    /// Fails when there are no levels, a `k` or `l` is zero, or the
    /// requirements are not monotonically non-decreasing in `k` (higher
    /// levels must be at least as anonymous as lower ones).
    pub fn build(self) -> Result<PrivacyProfile, CloakError> {
        if self.levels.is_empty() {
            return Err(CloakError::InvalidProfile(
                "profile needs at least one level".into(),
            ));
        }
        for (i, req) in self.levels.iter().enumerate() {
            if req.k == 0 {
                return Err(CloakError::InvalidProfile(format!(
                    "level L{} has k = 0",
                    i + 1
                )));
            }
            if req.l == 0 {
                return Err(CloakError::InvalidProfile(format!(
                    "level L{} has l = 0",
                    i + 1
                )));
            }
        }
        for w in self.levels.windows(2) {
            if w[1].k < w[0].k {
                return Err(CloakError::InvalidProfile(
                    "k must be non-decreasing across levels".into(),
                ));
            }
        }
        Ok(PrivacyProfile {
            levels: self.levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::grid_city;

    #[test]
    fn builder_validates() {
        assert!(matches!(
            PrivacyProfile::builder().build(),
            Err(CloakError::InvalidProfile(_))
        ));
        assert!(PrivacyProfile::builder()
            .level(LevelRequirement::with_k(0))
            .build()
            .is_err());
        assert!(PrivacyProfile::builder()
            .level(LevelRequirement::with_k(4).l(0))
            .build()
            .is_err());
        // Decreasing k rejected.
        assert!(PrivacyProfile::builder()
            .level(LevelRequirement::with_k(10))
            .level(LevelRequirement::with_k(5))
            .build()
            .is_err());
        // Equal k allowed.
        assert!(PrivacyProfile::builder()
            .level(LevelRequirement::with_k(5))
            .level(LevelRequirement::with_k(5))
            .build()
            .is_ok());
    }

    #[test]
    fn geometric_profile() {
        let p = PrivacyProfile::geometric(4, 3).unwrap();
        let ks: Vec<u32> = p.requirements().iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![3, 6, 12, 24]);
        assert_eq!(p.top_requirement().k, 24);
        assert!(PrivacyProfile::geometric(0, 3).is_err());
        assert!(PrivacyProfile::geometric(2, 0).is_err());
    }

    #[test]
    fn tolerance_total_length() {
        let net = grid_city(3, 3, 100.0);
        let t = SpatialTolerance::TotalLength(250.0);
        let bb = net.bounding_box();
        assert!(t.allows(&net, 200.0, &bb));
        assert!(!t.allows(&net, 250.1, &bb));
        // Extending a 200 m region by a 100 m segment exceeds 250.
        assert!(!t.allows_extended(&net, 200.0, &bb, SegmentId(0)));
        assert!(t.allows_extended(&net, 100.0, &bb, SegmentId(0)));
    }

    #[test]
    fn tolerance_bbox_diagonal() {
        let net = grid_city(3, 3, 100.0);
        let t = SpatialTolerance::BboxDiagonal(150.0);
        let small = net.segments_bounding_box([SegmentId(0)]);
        assert!(t.allows(&net, 9999.0, &small));
        // A candidate far away blows the diagonal.
        let far = net.segment_ids().last().expect("grid has segments");
        assert!(!t.allows_extended(&net, 0.0, &small, far));
    }

    #[test]
    fn unlimited_allows_everything() {
        let net = grid_city(2, 2, 10.0);
        let t = SpatialTolerance::Unlimited;
        assert!(t.allows(&net, f64::MAX, &net.bounding_box()));
        assert!(t.allows_extended(&net, f64::MAX, &net.bounding_box(), SegmentId(0)));
    }

    #[test]
    fn level_requirement_builder() {
        let r = LevelRequirement::with_k(8)
            .l(4)
            .tolerance(SpatialTolerance::TotalLength(1000.0));
        assert_eq!(r.k, 8);
        assert_eq!(r.l, 4);
        assert!(matches!(r.tolerance, SpatialTolerance::TotalLength(_)));
        // Default l caps at 3.
        assert_eq!(LevelRequirement::with_k(100).l, 3);
        assert_eq!(LevelRequirement::with_k(2).l, 2);
    }
}
