//! The RGE transition table (paper Figure 2).
//!
//! Rows are the cloaking region `CloakA` and columns the candidate
//! frontier `CanA`, both sorted by segment length (shortest first, ties by
//! id). Cell `(i, j)` holds the transition value `(i + j) mod |CanA|`
//! (0-based; the paper's `((i−1)+(j−1)) mod |CanA|` in 1-based indexing).
//!
//! * Every **row** is a complete residue system mod `|CanA|`, so a forward
//!   transition exists for every pick value.
//! * Every **column** has pairwise-distinct values whenever
//!   `|CloakA| ≤ |CanA|`, so the backward transition is unambiguous —
//!   "thus no collisions" (paper §III).
//! * When `|CloakA| > |CanA|` a column value repeats every `|CanA|` rows;
//!   the engine disambiguates with an encrypted per-step *quotient hint*
//!   (DESIGN.md §3.3) carried in the payload.

use crate::frontier::position_in_sorted;
use roadnet::{RoadNetwork, SegmentId};
use std::fmt;

/// A borrowed transition-table view: the same cell algebra as
/// [`TransitionTable`] over slices the caller owns (engine scratch
/// buffers), so building a per-step table costs no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableView<'a> {
    rows: &'a [SegmentId],
    cols: &'a [SegmentId],
}

impl<'a> TableView<'a> {
    /// Wraps *already `(length, id)`-sorted* row and column lists.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn new(rows: &'a [SegmentId], cols: &'a [SegmentId]) -> Self {
        assert!(!rows.is_empty(), "transition table needs at least one row");
        assert!(
            !cols.is_empty(),
            "transition table needs at least one column"
        );
        TableView { rows, cols }
    }

    /// Row segments (the cloaking region, shortest first).
    pub fn rows(&self) -> &'a [SegmentId] {
        self.rows
    }

    /// Column segments (the frontier, shortest first).
    pub fn cols(&self) -> &'a [SegmentId] {
        self.cols
    }

    /// `|CloakA|`.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// `|CanA|`.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }

    /// The transition value in cell `(i, j)` (0-based).
    pub fn value(&self, i: usize, j: usize) -> usize {
        (i + j) % self.cols.len()
    }

    /// The quotient-hint modulus: how many row "bands" share each residue.
    /// 1 when `|CloakA| ≤ |CanA|` (no hint needed).
    pub fn hint_modulus(&self) -> usize {
        self.rows.len().div_ceil(self.cols.len()).max(1)
    }

    /// Whether backward lookups need a quotient hint.
    pub fn needs_hint(&self) -> bool {
        self.rows.len() > self.cols.len()
    }

    /// Forward transition: from row `i`, the unique column whose cell
    /// value equals `pick`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `pick ≥ |CanA|`.
    pub fn forward_col(&self, i: usize, pick: usize) -> usize {
        let n = self.cols.len();
        assert!(i < self.rows.len(), "row out of range");
        assert!(pick < n, "pick out of range");
        (pick + n - (i % n)) % n
    }

    /// Backward transition: from column `j` and `pick`, the unique row in
    /// band `hint` whose cell value equals `pick` — `None` when that row
    /// index falls outside the table (the draw cannot have produced this
    /// column).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `pick ≥ |CanA|`.
    pub fn backward_row(&self, j: usize, pick: usize, hint: usize) -> Option<usize> {
        let n = self.cols.len();
        assert!(j < n, "column out of range");
        assert!(pick < n, "pick out of range");
        let base = (pick + n - j) % n;
        let i = hint * n + base;
        (i < self.rows.len()).then_some(i)
    }

    /// The row index of segment `s`, if present.
    pub fn row_of(&self, net: &RoadNetwork, s: SegmentId) -> Option<usize> {
        position_in_sorted(net, self.rows, s)
    }

    /// The column index of segment `s`, if present.
    pub fn col_of(&self, net: &RoadNetwork, s: SegmentId) -> Option<usize> {
        position_in_sorted(net, self.cols, s)
    }
}

/// A transition table for one expansion step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionTable {
    rows: Vec<SegmentId>,
    cols: Vec<SegmentId>,
}

impl TransitionTable {
    /// Builds the table from *already `(length, id)`-sorted* row and
    /// column segment lists.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn from_sorted(rows: Vec<SegmentId>, cols: Vec<SegmentId>) -> Self {
        assert!(!rows.is_empty(), "transition table needs at least one row");
        assert!(
            !cols.is_empty(),
            "transition table needs at least one column"
        );
        TransitionTable { rows, cols }
    }

    /// The table as a borrowed [`TableView`] (what the engines build
    /// directly from scratch buffers on the hot path).
    pub fn view(&self) -> TableView<'_> {
        TableView {
            rows: &self.rows,
            cols: &self.cols,
        }
    }

    /// Row segments (the cloaking region, shortest first).
    pub fn rows(&self) -> &[SegmentId] {
        &self.rows
    }

    /// Column segments (the frontier, shortest first).
    pub fn cols(&self) -> &[SegmentId] {
        &self.cols
    }

    /// `|CloakA|`.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// `|CanA|`.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }

    /// The transition value in cell `(i, j)` (0-based).
    pub fn value(&self, i: usize, j: usize) -> usize {
        self.view().value(i, j)
    }

    /// The quotient-hint modulus: how many row "bands" share each residue.
    /// 1 when `|CloakA| ≤ |CanA|` (no hint needed).
    pub fn hint_modulus(&self) -> usize {
        self.view().hint_modulus()
    }

    /// Whether backward lookups need a quotient hint.
    pub fn needs_hint(&self) -> bool {
        self.view().needs_hint()
    }

    /// Forward transition: from row `i`, the unique column whose cell
    /// value equals `pick`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `pick ≥ |CanA|`.
    pub fn forward_col(&self, i: usize, pick: usize) -> usize {
        self.view().forward_col(i, pick)
    }

    /// Backward transition: from column `j` and `pick`, the unique row in
    /// band `hint` whose cell value equals `pick` — `None` when that row
    /// index falls outside the table (the draw cannot have produced this
    /// column).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `pick ≥ |CanA|`.
    pub fn backward_row(&self, j: usize, pick: usize, hint: usize) -> Option<usize> {
        self.view().backward_row(j, pick, hint)
    }

    /// The row index of segment `s`, if present.
    pub fn row_of(&self, net: &RoadNetwork, s: SegmentId) -> Option<usize> {
        self.view().row_of(net, s)
    }

    /// The column index of segment `s`, if present.
    pub fn col_of(&self, net: &RoadNetwork, s: SegmentId) -> Option<usize> {
        self.view().col_of(net, s)
    }

    /// Renders the table like paper Figure 2 (rows/columns labelled with
    /// segment ids, cells holding transition values).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("        ");
        for c in &self.cols {
            out.push_str(&format!("{:>6}", c.to_string()));
        }
        out.push('\n');
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!("{:>6} |", r.to_string()));
            for j in 0..self.cols.len() {
                out.push_str(&format!("{:>6}", self.value(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TransitionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(m: usize, n: usize) -> TransitionTable {
        TransitionTable::from_sorted(
            (0..m as u32).map(SegmentId).collect(),
            (100..100 + n as u32).map(SegmentId).collect(),
        )
    }

    #[test]
    fn paper_figure2_values() {
        // 3×3 table: cell (i,j) = (i + j) mod 3 (0-based), matching the
        // paper's ((i−1)+(j−1)) mod |CanA| in 1-based indexing.
        let t = table(3, 3);
        let expect = [[0, 1, 2], [1, 2, 0], [2, 0, 1]];
        for (i, row) in expect.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(t.value(i, j), v);
            }
        }
    }

    #[test]
    fn paper_figure2_walkthrough() {
        // CloakA = {s8, s9, s11}, CanA = {s6, s10, s14}; last added s8 is
        // row 1 (0-based row index 1 in the paper's ordering by length —
        // here we emulate with explicit lists), R = 5 ⇒ pick = 5 mod 3 = 2.
        let t = TransitionTable::from_sorted(
            vec![SegmentId(9), SegmentId(8), SegmentId(11)],
            vec![SegmentId(6), SegmentId(14), SegmentId(10)],
        );
        let pick = 5 % t.col_count();
        // Forward: row of s8 (index 1) → column with value 2 is (2,2)'s
        // row-1 cell: j = (2 + 3 - 1) % 3 = 1 → s14. Transition s8 → s14.
        let j = t.forward_col(1, pick);
        assert_eq!(t.cols()[j], SegmentId(14));
        assert_eq!(t.value(1, j), pick);
        // Backward: column of s14 (index 1) + pick 2 → row 1 = s8.
        let i = t.backward_row(1, pick, 0).unwrap();
        assert_eq!(t.rows()[i], SegmentId(8));
    }

    #[test]
    fn rows_are_complete_residue_systems() {
        for (m, n) in [(1, 1), (3, 5), (5, 3), (7, 7), (10, 4)] {
            let t = table(m, n);
            for i in 0..m {
                let mut seen = vec![false; n];
                for j in 0..n {
                    seen[t.value(i, j)] = true;
                }
                assert!(seen.iter().all(|&v| v), "row {i} of {m}x{n} incomplete");
            }
        }
    }

    #[test]
    fn columns_unique_when_cloak_not_larger() {
        for (m, n) in [(3, 3), (3, 5), (6, 9)] {
            let t = table(m, n);
            assert!(!t.needs_hint());
            for j in 0..n {
                let mut seen = std::collections::HashSet::new();
                for i in 0..m {
                    assert!(seen.insert(t.value(i, j)), "dup in column {j} of {m}x{n}");
                }
            }
        }
    }

    #[test]
    fn forward_backward_are_inverse() {
        for (m, n) in [(1, 1), (3, 3), (2, 7), (9, 4), (12, 5)] {
            let t = table(m, n);
            for i in 0..m {
                for pick in 0..n {
                    let j = t.forward_col(i, pick);
                    assert_eq!(t.value(i, j), pick);
                    let hint = i / n;
                    let back = t.backward_row(j, pick, hint).unwrap();
                    assert_eq!(back, i, "roundtrip failed for {m}x{n} i={i} pick={pick}");
                }
            }
        }
    }

    #[test]
    fn backward_row_rejects_out_of_band() {
        let t = table(3, 5);
        // hint 1 would address rows 5..9 which do not exist.
        for j in 0..5 {
            for pick in 0..5 {
                let r = t.backward_row(j, pick, 1);
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn hint_modulus() {
        assert_eq!(table(3, 5).hint_modulus(), 1);
        assert_eq!(table(5, 5).hint_modulus(), 1);
        assert_eq!(table(6, 5).hint_modulus(), 2);
        assert_eq!(table(11, 5).hint_modulus(), 3);
        assert!(table(6, 5).needs_hint());
    }

    #[test]
    fn row_col_lookup_by_segment() {
        use roadnet::grid_city;
        let net = grid_city(3, 3, 100.0);
        let rows = vec![SegmentId(0), SegmentId(1)];
        let cols = vec![SegmentId(2), SegmentId(3), SegmentId(4)];
        let t = TransitionTable::from_sorted(rows, cols);
        assert_eq!(t.row_of(&net, SegmentId(1)), Some(1));
        assert_eq!(t.col_of(&net, SegmentId(4)), Some(2));
        assert_eq!(t.row_of(&net, SegmentId(4)), None);
        assert_eq!(t.col_of(&net, SegmentId(0)), None);
    }

    #[test]
    fn render_contains_labels_and_values() {
        let t = table(2, 3);
        let s = t.render();
        assert!(s.contains("s0"));
        assert!(s.contains("s102"));
        assert_eq!(s, t.to_string());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_rows_panic() {
        let _ = TransitionTable::from_sorted(vec![], vec![SegmentId(0)]);
    }

    #[test]
    #[should_panic(expected = "pick out of range")]
    fn bad_pick_panics() {
        table(2, 3).forward_col(0, 3);
    }
}
