//! Multi-level anonymization and selective de-anonymization — the
//! ReverseCloak protocol itself (paper §II-B and Figure 1).
//!
//! Anonymization grows one contiguous chain `c_1 … c_n` of segment
//! additions from the user's segment `c_0`, with level `Li`'s span driven
//! by `Key_i`. De-anonymization peels levels top-down: within a level it
//! removes segments in reverse chain order, each backward step revealing
//! the previous chain segment; undoing a level's first step reveals the
//! anchor — which is the next level down's last-added segment, so peeling
//! is self-bootstrapping below the top level.

use crate::engine::{HintStack, ReversibleEngine};
use crate::error::{CloakError, DeanonError};
use crate::payload::{CloakPayload, LevelMeta};
use crate::profile::PrivacyProfile;
use crate::region::RegionState;
use crate::scratch::{BatchCloakScratch, CloakScratch, StepScratch};
use keystream::{tag, DrawStream, Key256, Level};
use mobisim::OccupancySnapshot;
use roadnet::{RoadNetwork, SegmentId};

/// Hard cap on expansion steps per level (defense against degenerate
/// profiles; practical regions are orders of magnitude smaller).
pub const MAX_STEPS_PER_LEVEL: usize = 100_000;

/// Per-level statistics from an anonymization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelStats {
    /// The level.
    pub level: Level,
    /// Segments added by this level.
    pub added: u32,
    /// Total keyed draws consumed.
    pub draws: u32,
    /// Draws voided (tolerance, collisions avoided, quotient mismatches).
    pub voided: u32,
}

/// The outcome of a successful anonymization.
#[derive(Debug, Clone)]
pub struct AnonymizationOutcome {
    /// The public payload to upload to the LBS provider.
    pub payload: CloakPayload,
    /// The secret chain (additions in order, excluding the seed segment).
    /// Held by the trusted anonymizer only; exposed here for testing and
    /// experimentation.
    pub chain: Vec<SegmentId>,
    /// Per-level accounting.
    pub per_level: Vec<LevelStats>,
}

/// The outcome of a (possibly partial) de-anonymization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeanonymizedView {
    /// The reduced region, sorted by segment id.
    pub segments: Vec<SegmentId>,
    /// The privacy level the region was reduced to.
    pub level: Level,
    /// The chain segment the walk ended at: the last-added segment of
    /// `level` (for `level == L0`, the user's own segment).
    pub anchor: SegmentId,
}

/// Writes the per-level walk context into `ctx` (cleared first). One
/// base stream is absorbed from this context per level; each expansion
/// step then [`DrawStream::fork`]s its own counter lane off that base
/// (the step index is public walk structure, so it lives in the counter
/// rather than costing an absorption per step), and the level's round
/// and hint metadata encrypt under the reserved lanes below.
fn steps_context_into(ctx: &mut Vec<u8>, algorithm: u8, level: Level, nonce: u64) {
    ctx.clear();
    ctx.extend_from_slice(b"rc/step/");
    ctx.push(algorithm);
    ctx.push(level.0);
    ctx.extend_from_slice(&nonce.to_le_bytes());
}

/// Reserved fork lanes of the per-level base stream for the round and
/// hint metadata keystreams. Step lanes are `1..=MAX_STEPS_PER_LEVEL`
/// (100 000), so the top of the `u32` lane space can never collide with
/// a walk step.
const ROUNDS_LANE: u32 = u32::MAX - 1;
const HINTS_LANE: u32 = u32::MAX;

fn tag_context_into(ctx: &mut Vec<u8>, level: Level, nonce: u64) {
    ctx.clear();
    ctx.extend_from_slice(b"rc/tag/");
    ctx.push(level.0);
    ctx.extend_from_slice(&nonce.to_le_bytes());
}

/// XORs `words` against the keystream of the given fork `lane` of the
/// per-level base stream (the symmetric encrypt/decrypt of round and
/// hint metadata), returning a fresh `Vec`.
fn xor_lane(base: &DrawStream, lane: u32, words: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(words.len());
    xor_lane_into(&mut out, base, lane, words);
    out
}

/// Like [`xor_lane`], writing into a caller-owned buffer (cleared
/// first). Each u64 draw masks two u32 words (low half first), so the
/// keystream is consumed at its native width.
fn xor_lane_into(out: &mut Vec<u32>, base: &DrawStream, lane: u32, words: &[u32]) {
    let mut ks = base.fork(lane);
    out.clear();
    out.reserve(words.len());
    for pair in words.chunks(2) {
        let draw = ks.next_u64();
        out.push(pair[0] ^ (draw as u32));
        if let Some(&hi) = pair.get(1) {
            out.push(hi ^ ((draw >> 32) as u32));
        }
    }
}

/// Anonymizes `user_segment` under `profile`, driving level `Li` with
/// `keys[i-1]`.
///
/// The `nonce` must be fresh per request (it domain-separates the keyed
/// streams so repeated requests from the same segment do not reuse
/// randomness).
///
/// Allocating convenience over
/// [`anonymize_with_scratch`] (one throwaway [`CloakScratch`] per call).
///
/// # Errors
///
/// Fails when the profile/keys disagree, the segment is unknown, or a
/// level's requirement cannot be met within its spatial tolerance.
pub fn anonymize(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
) -> Result<AnonymizationOutcome, CloakError> {
    anonymize_with_scratch(
        net,
        snapshot,
        user_segment,
        profile,
        keys,
        nonce,
        engine,
        &mut CloakScratch::default(),
    )
}

/// [`anonymize`] with caller-owned scratch buffers: a worker that keeps
/// one [`CloakScratch`] per thread cloaks request after request with no
/// steady-state heap traffic beyond the returned outcome itself. Results
/// are bit-identical to [`anonymize`] for any scratch state.
///
/// # Errors
///
/// As [`anonymize`].
#[allow(clippy::too_many_arguments)]
pub fn anonymize_with_scratch(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
    scratch: &mut CloakScratch,
) -> Result<AnonymizationOutcome, CloakError> {
    let CloakScratch {
        region,
        step,
        ctx,
        rounds,
        hints,
    } = scratch;
    rounds.clear();
    hints.clear();
    anonymize_core(
        net,
        snapshot,
        user_segment,
        profile,
        keys,
        nonce,
        engine,
        region,
        step,
        ctx,
        rounds,
        hints,
    )
}

/// The shared cloaking core behind [`anonymize_with_scratch`] and
/// [`anonymize_batch_with_scratch`].
///
/// `rounds` and `hints` are **append-only arenas**: the core writes this
/// run's metadata at the current tail (offsets `r0`/`h0`) and reads it
/// back as slices, so a batch can lay many owners' lanes out
/// contiguously while the single-owner wrapper simply clears first.
/// Every keyed draw, tag, and encrypted word is computed from the same
/// inputs in the same order regardless of the arena offset, so results
/// are bit-identical across entry points.
#[allow(clippy::too_many_arguments)]
fn anonymize_core(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
    region: &mut RegionState,
    step: &mut StepScratch,
    ctx: &mut Vec<u8>,
    rounds: &mut Vec<u32>,
    hints: &mut Vec<u32>,
) -> Result<AnonymizationOutcome, CloakError> {
    if keys.len() != profile.level_count() {
        return Err(CloakError::KeyCountMismatch {
            expected: profile.level_count(),
            got: keys.len(),
        });
    }
    if net.get_segment(user_segment).is_none() {
        return Err(CloakError::UnknownSegment(user_segment));
    }
    let algorithm = engine.algorithm_id();
    region.reset_for(net);
    region.insert(net, user_segment);
    let mut last = user_segment;
    let mut chain = Vec::new();
    let mut level_metas = Vec::new();
    let mut per_level = Vec::new();

    for (idx, req) in profile.requirements().iter().enumerate() {
        let level = Level(idx as u8 + 1);
        let key = keys[idx];
        let mut added = 0u32;
        let mut draws = 0u32;
        let mut voided = 0u32;
        let r0 = rounds.len();
        let h0 = hints.len();
        steps_context_into(ctx, algorithm, level, nonce);
        let step_base = DrawStream::new(key, ctx);
        while region.users(snapshot) < req.k as u64 || region.len() < req.l as usize {
            if added as usize >= MAX_STEPS_PER_LEVEL {
                return Err(CloakError::CloakingFailed {
                    level,
                    reason: crate::error::StepFailure::StepLimit,
                });
            }
            let step_no = added + 1;
            let mut stream = step_base.fork(step_no);
            let accept = engine
                .forward_step(net, region, last, &mut stream, &req.tolerance, step)
                .map_err(|reason| CloakError::CloakingFailed { level, reason })?;
            region.insert(net, accept.segment);
            chain.push(accept.segment);
            last = accept.segment;
            added += 1;
            draws += accept.draws;
            voided += accept.voided;
            rounds.push(accept.draws);
            if let Some(h) = accept.hint {
                hints.push(h);
            }
        }
        tag_context_into(ctx, level, nonce);
        let tag = tag::compute(key, ctx, &last.0.to_le_bytes());
        let enc_rounds = xor_lane(&step_base, ROUNDS_LANE, &rounds[r0..]);
        let enc_hints = xor_lane(&step_base, HINTS_LANE, &hints[h0..]);
        level_metas.push(LevelMeta {
            count: added,
            tag,
            tolerance: req.tolerance,
            enc_rounds,
            enc_hints,
        });
        per_level.push(LevelStats {
            level,
            added,
            draws,
            voided,
        });
    }

    Ok(AnonymizationOutcome {
        payload: CloakPayload {
            algorithm,
            nonce,
            // Chain position is a service-level concern: callers running a
            // forward-secret chain stamp the epoch after anonymization.
            epoch: 0,
            segments: region.to_sorted_ids(),
            levels: level_metas,
        },
        chain,
        per_level,
    })
}

/// One owner of a batch handed to [`anonymize_batch_with_scratch`]: the
/// per-owner inputs of [`anonymize_with_retry`], borrowed rather than
/// owned so a service can build the batch without cloning profiles or
/// key material.
#[derive(Debug, Clone, Copy)]
pub struct BatchCloakItem<'a> {
    /// The owner's true segment (the seed `c_0`).
    pub segment: SegmentId,
    /// The owner's privacy profile.
    pub profile: &'a PrivacyProfile,
    /// Level keys, `keys[i-1]` driving level `Li`.
    pub keys: &'a [Key256],
    /// The request nonce (retries derive fresh nonces from it).
    pub nonce: u64,
    /// Retry budget for dead-ended walks (clamped to at least 1).
    pub max_attempts: u32,
}

/// Grows k-anonymity regions for **many owners of one snapshot** in a
/// single pass over shared scratch state — the owner-batched form of
/// [`anonymize_with_retry_scratch`].
///
/// All owners share one region bitset, one engine [`StepScratch`]
/// (the table rows/columns every expansion walks over), and one pair of
/// structure-of-arrays metadata arenas: each owner's per-level round and
/// hint words land in a contiguous lane of a shared row-major `u32`
/// arena, so the encrypt sweeps run over flat lanes the compiler can
/// autovectorize instead of per-owner re-walks.
///
/// Returns one result per item, in item order. Each result carries the
/// outcome and the number of attempts used, exactly as
/// [`anonymize_with_retry`] would have produced for that owner alone:
/// batching is a layout change, never a semantics change — receipts are
/// bit-identical to the single-owner path.
pub fn anonymize_batch_with_scratch(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    items: &[BatchCloakItem<'_>],
    engine: &dyn ReversibleEngine,
    scratch: &mut BatchCloakScratch,
) -> Vec<Result<(AnonymizationOutcome, u32), CloakError>> {
    let BatchCloakScratch {
        region,
        step,
        ctx,
        rounds,
        hints,
        lanes,
    } = scratch;
    rounds.clear();
    hints.clear();
    lanes.clear();
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        let r0 = rounds.len();
        let h0 = hints.len();
        let mut last_err = None;
        let mut outcome = None;
        for attempt in 0..item.max_attempts.max(1) {
            let derived = item
                .nonce
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            match anonymize_core(
                net,
                snapshot,
                item.segment,
                item.profile,
                item.keys,
                derived,
                engine,
                region,
                step,
                ctx,
                rounds,
                hints,
            ) {
                Ok(out) => {
                    outcome = Some(Ok((out, attempt + 1)));
                    break;
                }
                Err(e) => {
                    // A failed walk leaves partial lanes behind; rewind
                    // the arenas to this owner's lane start so the next
                    // attempt (or owner) stays contiguous.
                    rounds.truncate(r0);
                    hints.truncate(h0);
                    let retryable = matches!(
                        e,
                        CloakError::CloakingFailed {
                            reason: crate::error::StepFailure::NoCandidates
                                | crate::error::StepFailure::RedrawBudgetExhausted
                                | crate::error::StepFailure::Collision,
                            ..
                        }
                    );
                    if retryable {
                        last_err = Some(e);
                    } else {
                        outcome = Some(Err(e));
                        break;
                    }
                }
            }
        }
        match outcome {
            Some(result) => {
                if result.is_ok() {
                    lanes.push((r0 as u32, h0 as u32));
                }
                results.push(result);
            }
            None => results.push(Err(last_err.expect("loop ran at least once"))),
        }
    }
    results
}

/// Like [`anonymize`], but retries under derived nonces when a walk
/// dead-ends (RPLE local expansion ran out of admissible pre-assigned
/// neighbors, or the tolerance voided a step's budget) — a fresh nonce
/// gives a fresh walk. Returns the outcome and the number of attempts
/// used.
///
/// # Errors
///
/// Propagates the last error after `max_attempts` failed walks, and any
/// non-retryable error immediately.
#[allow(clippy::too_many_arguments)]
pub fn anonymize_with_retry(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
    max_attempts: u32,
) -> Result<(AnonymizationOutcome, u32), CloakError> {
    anonymize_with_retry_scratch(
        net,
        snapshot,
        user_segment,
        profile,
        keys,
        nonce,
        engine,
        max_attempts,
        &mut CloakScratch::default(),
    )
}

/// [`anonymize_with_retry`] with caller-owned scratch buffers (see
/// [`anonymize_with_scratch`]).
///
/// # Errors
///
/// As [`anonymize_with_retry`].
#[allow(clippy::too_many_arguments)]
pub fn anonymize_with_retry_scratch(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
    max_attempts: u32,
    scratch: &mut CloakScratch,
) -> Result<(AnonymizationOutcome, u32), CloakError> {
    let mut last_err = None;
    for attempt in 0..max_attempts.max(1) {
        let derived = nonce.wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match anonymize_with_scratch(
            net,
            snapshot,
            user_segment,
            profile,
            keys,
            derived,
            engine,
            scratch,
        ) {
            Ok(out) => return Ok((out, attempt + 1)),
            Err(
                e @ CloakError::CloakingFailed {
                    reason:
                        crate::error::StepFailure::NoCandidates
                        | crate::error::StepFailure::RedrawBudgetExhausted
                        | crate::error::StepFailure::Collision,
                    ..
                },
            ) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("loop ran at least once"))
}

/// Selectively de-anonymizes `payload` using `keys`, which must peel
/// levels contiguously from the payload's top level downward (e.g. to
/// reduce an `L3` payload to `L1`, supply `[(L3, Key3), (L2, Key2)]`).
///
/// Passing no keys returns the payload's region unchanged at its top
/// level.
///
/// Allocating convenience over [`deanonymize_with_scratch`] (one
/// throwaway [`CloakScratch`] per call).
///
/// # Errors
///
/// Fails on malformed payloads, non-contiguous keys, keys that do not
/// match the payload's tags, or an engine mismatch.
pub fn deanonymize(
    net: &RoadNetwork,
    payload: &CloakPayload,
    keys: &[(Level, Key256)],
    engine: &dyn ReversibleEngine,
) -> Result<DeanonymizedView, DeanonError> {
    deanonymize_with_scratch(net, payload, keys, engine, &mut CloakScratch::default())
}

/// [`deanonymize`] with caller-owned scratch buffers: the verification
/// loop of a streaming pipeline peels receipt after receipt without
/// re-allocating the region, draw cache, or metadata buffers. Results
/// are bit-identical to [`deanonymize`] for any scratch state.
///
/// # Errors
///
/// As [`deanonymize`].
pub fn deanonymize_with_scratch(
    net: &RoadNetwork,
    payload: &CloakPayload,
    keys: &[(Level, Key256)],
    engine: &dyn ReversibleEngine,
    scratch: &mut CloakScratch,
) -> Result<DeanonymizedView, DeanonError> {
    if payload.algorithm != engine.algorithm_id() {
        return Err(DeanonError::MalformedPayload(format!(
            "payload algorithm {} does not match engine {}",
            payload.algorithm,
            engine.name()
        )));
    }
    for s in &payload.segments {
        if net.get_segment(*s).is_none() {
            return Err(DeanonError::MalformedPayload(format!(
                "segment {s} not in the network"
            )));
        }
    }
    let CloakScratch {
        region,
        step,
        ctx,
        rounds,
        hints,
    } = scratch;
    region.reset_for(net);
    for &s in &payload.segments {
        region.insert(net, s);
    }
    let mut current_level = payload.top_level();
    let mut anchor: Option<SegmentId> = None;

    for &(level, key) in keys {
        if level != current_level {
            return Err(DeanonError::NonContiguousKeys {
                expected: current_level,
                got: level,
            });
        }
        if level.0 == 0 {
            return Err(DeanonError::NonContiguousKeys {
                expected: current_level,
                got: level,
            });
        }
        let meta = &payload.levels[level.index() - 1];
        tag_context_into(ctx, level, payload.nonce);

        // Identify the level's last-added segment: verify against the
        // running anchor when we have one, otherwise search the region for
        // the unique tag match (the top level's bootstrap).
        let last = match anchor {
            Some(a) => {
                if !tag::verify(key, ctx, &a.0.to_le_bytes(), meta.tag) {
                    return Err(DeanonError::WrongKey(level));
                }
                a
            }
            None => {
                let mut matches = region
                    .iter_ids()
                    .filter(|s| tag::verify(key, ctx, &s.0.to_le_bytes(), meta.tag));
                let found = matches.next().ok_or(DeanonError::WrongKey(level))?;
                if matches.next().is_some() {
                    // Two segments share a 128-bit tag: astronomically
                    // unlikely unless the payload was crafted.
                    return Err(DeanonError::MalformedPayload(
                        "ambiguous bootstrap tag".into(),
                    ));
                }
                found
            }
        };

        // Decrypt the level's round numbers and quotient hints, then walk
        // backward.
        steps_context_into(ctx, payload.algorithm, level, payload.nonce);
        let step_base = DrawStream::new(key, ctx);
        xor_lane_into(rounds, &step_base, ROUNDS_LANE, &meta.enc_rounds);
        xor_lane_into(hints, &step_base, HINTS_LANE, &meta.enc_hints);
        let mut hint_stack = HintStack::new(std::mem::take(hints));
        let mut current = last;
        let mut walk = || -> Result<SegmentId, DeanonError> {
            for t in (1..=meta.count).rev() {
                region.remove(net, current);
                let mut stream = step_base.fork(t);
                current = engine
                    .backward_step(
                        net,
                        region,
                        current,
                        &mut stream,
                        &meta.tolerance,
                        rounds[t as usize - 1],
                        &mut hint_stack,
                        step,
                    )
                    .map_err(|_| DeanonError::ReversalFailed {
                        level,
                        step: t as usize,
                    })?;
            }
            Ok(current)
        };
        let walked = walk();
        // Reclaim the hint buffer before propagating any walk error so
        // the scratch keeps its capacity across calls.
        *hints = hint_stack.into_inner();
        anchor = Some(walked?);
        current_level = Level(level.0 - 1);
    }

    let anchor = match anchor {
        Some(a) => a,
        None => {
            // No keys: the anchor is unknown; report the region as-is. Use
            // the first segment as a placeholder only when the region is a
            // single segment (L0 payloads), otherwise there is no anchor
            // to report — pick the smallest id deterministically.
            payload.segments[0]
        }
    };
    Ok(DeanonymizedView {
        segments: region.to_sorted_ids(),
        level: current_level,
        anchor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RgeEngine, RpleEngine};
    use crate::profile::{LevelRequirement, PrivacyProfile, SpatialTolerance};
    use keystream::KeyManager;
    use roadnet::grid_city;

    fn setup() -> (RoadNetwork, OccupancySnapshot, PrivacyProfile, KeyManager) {
        let net = grid_city(7, 7, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(4))
            .level(LevelRequirement::with_k(8))
            .level(LevelRequirement::with_k(14))
            .build()
            .unwrap();
        let mgr = KeyManager::from_seed(3, 99);
        (net, snapshot, profile, mgr)
    }

    fn keys_of(mgr: &KeyManager) -> Vec<Key256> {
        mgr.iter().map(|(_, k)| k).collect()
    }

    #[test]
    fn full_roundtrip_rge_and_rple() {
        let (net, snapshot, profile, mgr) = setup();
        let engines: Vec<Box<dyn ReversibleEngine>> = vec![
            Box::new(RgeEngine::new()),
            Box::new(RpleEngine::build(&net, 8)),
        ];
        for engine in &engines {
            let user = SegmentId(40);
            let out = anonymize(
                &net,
                &snapshot,
                user,
                &profile,
                &keys_of(&mgr),
                7,
                engine.as_ref(),
            )
            .unwrap();
            // Region covers seed + chain.
            assert_eq!(out.payload.region_size(), out.chain.len() + 1);
            assert!(out.payload.contains(user));
            // k satisfied at the top level (uniform 1 user/segment).
            assert!(out.payload.region_size() >= 14);

            // Peel all the way to L0.
            let all_keys = mgr.keys_down_to(Level(0)).unwrap();
            let view = deanonymize(&net, &out.payload, &all_keys, engine.as_ref()).unwrap();
            assert_eq!(view.level, Level(0));
            assert_eq!(view.segments, vec![user]);
            assert_eq!(view.anchor, user, "{}", engine.name());
        }
    }

    #[test]
    fn partial_peeling_matches_intermediate_regions() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let user = SegmentId(30);
        let out = anonymize(&net, &snapshot, user, &profile, &keys_of(&mgr), 11, &engine).unwrap();

        // Reconstruct intermediate region sets from the secret chain.
        let counts: Vec<u32> = out.payload.levels.iter().map(|l| l.count).collect();
        let l2_size = 1 + counts[0] as usize + counts[1] as usize;
        let mut expect_l2: Vec<SegmentId> = std::iter::once(user)
            .chain(out.chain[..l2_size - 1].iter().copied())
            .collect();
        expect_l2.sort();

        let keys = mgr.keys_down_to(Level(2)).unwrap();
        let view = deanonymize(&net, &out.payload, &keys, &engine).unwrap();
        assert_eq!(view.level, Level(2));
        assert_eq!(view.segments, expect_l2);
        // The anchor is the last chain segment of level 2.
        assert_eq!(view.anchor, out.chain[l2_size - 2]);
    }

    #[test]
    fn no_keys_returns_top_level() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(10),
            &profile,
            &keys_of(&mgr),
            3,
            &engine,
        )
        .unwrap();
        let view = deanonymize(&net, &out.payload, &[], &engine).unwrap();
        assert_eq!(view.level, Level(3));
        assert_eq!(view.segments, out.payload.segments);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(10),
            &profile,
            &keys_of(&mgr),
            5,
            &engine,
        )
        .unwrap();
        let bogus = Key256::from_seed(123456);
        let err = deanonymize(&net, &out.payload, &[(Level(3), bogus)], &engine).unwrap_err();
        assert_eq!(err, DeanonError::WrongKey(Level(3)));
    }

    #[test]
    fn non_contiguous_keys_rejected() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(10),
            &profile,
            &keys_of(&mgr),
            5,
            &engine,
        )
        .unwrap();
        // Supplying Key2 first (should be Key3).
        let k2 = mgr.key_for(Level(2)).unwrap();
        let err = deanonymize(&net, &out.payload, &[(Level(2), k2)], &engine).unwrap_err();
        assert_eq!(
            err,
            DeanonError::NonContiguousKeys {
                expected: Level(3),
                got: Level(2)
            }
        );
    }

    #[test]
    fn engine_mismatch_rejected() {
        let (net, snapshot, profile, mgr) = setup();
        let rge = RgeEngine::new();
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(10),
            &profile,
            &keys_of(&mgr),
            5,
            &rge,
        )
        .unwrap();
        let rple = RpleEngine::build(&net, 8);
        assert!(matches!(
            deanonymize(&net, &out.payload, &[], &rple),
            Err(DeanonError::MalformedPayload(_))
        ));
    }

    #[test]
    fn key_count_mismatch_rejected() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let mut keys = keys_of(&mgr);
        keys.pop();
        assert_eq!(
            anonymize(&net, &snapshot, SegmentId(0), &profile, &keys, 1, &engine).unwrap_err(),
            CloakError::KeyCountMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn unknown_segment_rejected() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        assert_eq!(
            anonymize(
                &net,
                &snapshot,
                SegmentId(9999),
                &profile,
                &keys_of(&mgr),
                1,
                &engine
            )
            .unwrap_err(),
            CloakError::UnknownSegment(SegmentId(9999))
        );
    }

    #[test]
    fn impossible_tolerance_fails_cloaking() {
        let (net, snapshot, _, mgr) = setup();
        let engine = RgeEngine::new();
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(10).tolerance(SpatialTolerance::TotalLength(150.0)))
            .build()
            .unwrap();
        let keys: Vec<Key256> = mgr.iter().map(|(_, k)| k).take(1).collect();
        let err =
            anonymize(&net, &snapshot, SegmentId(0), &profile, &keys, 1, &engine).unwrap_err();
        assert!(matches!(err, CloakError::CloakingFailed { .. }), "{err}");
    }

    #[test]
    fn distinct_nonces_produce_distinct_regions() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RgeEngine::new();
        let a = anonymize(
            &net,
            &snapshot,
            SegmentId(20),
            &profile,
            &keys_of(&mgr),
            1,
            &engine,
        )
        .unwrap();
        let b = anonymize(
            &net,
            &snapshot,
            SegmentId(20),
            &profile,
            &keys_of(&mgr),
            2,
            &engine,
        )
        .unwrap();
        assert_ne!(
            a.payload.segments, b.payload.segments,
            "nonces must freshen the expansion"
        );
        // Same nonce: fully deterministic.
        let c = anonymize(
            &net,
            &snapshot,
            SegmentId(20),
            &profile,
            &keys_of(&mgr),
            1,
            &engine,
        )
        .unwrap();
        assert_eq!(a.payload, c.payload);
    }

    #[test]
    fn already_satisfied_level_adds_nothing() {
        let (net, _, _, mgr) = setup();
        let engine = RgeEngine::new();
        // 30 users on the seed segment: k=5 needs l=1 satisfied instantly.
        let mut counts = vec![0u32; net.segment_count()];
        counts[0] = 30;
        let snapshot = OccupancySnapshot::from_counts(counts);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(5).l(1))
            .level(LevelRequirement::with_k(9).l(1))
            .build()
            .unwrap();
        let keys: Vec<Key256> = mgr.iter().map(|(_, k)| k).take(2).collect();
        let out = anonymize(&net, &snapshot, SegmentId(0), &profile, &keys, 1, &engine).unwrap();
        assert_eq!(out.payload.levels[0].count, 0);
        assert_eq!(out.payload.levels[1].count, 0);
        assert_eq!(out.payload.region_size(), 1);
        // Peeling still works and ends at the seed. The payload has two
        // levels, so peel with (L2, keys[1]) then (L1, keys[0]).
        let keys2 = vec![(Level(2), keys[1]), (Level(1), keys[0])];
        let view = deanonymize(&net, &out.payload, &keys2, &engine).unwrap();
        assert_eq!(view.segments, vec![SegmentId(0)]);
        assert_eq!(view.level, Level(0));
    }

    #[test]
    fn payload_wire_roundtrip_preserves_deanonymization() {
        let (net, snapshot, profile, mgr) = setup();
        let engine = RpleEngine::build(&net, 8);
        let out = anonymize(
            &net,
            &snapshot,
            SegmentId(25),
            &profile,
            &keys_of(&mgr),
            21,
            &engine,
        )
        .unwrap();
        let bytes = out.payload.encode();
        let payload = CloakPayload::decode(&bytes).unwrap();
        let all_keys = mgr.keys_down_to(Level(0)).unwrap();
        let view = deanonymize(&net, &payload, &all_keys, &engine).unwrap();
        assert_eq!(view.segments, vec![SegmentId(25)]);
    }
}

/// Ablation analysis of the paper's "collision" issue.
///
/// Replays an anonymization's backward walk (using the anonymizer-side
/// secret chain) and, at each step, counts how many predecessor hypotheses
/// a de-anonymizer **without round metadata** would find consistent. Steps
/// with a count above 1 are collisions: a design relying on hypothesis
/// testing alone (as the paper sketches) could not reverse them, which is
/// exactly why RGE rebuilds collision-free tables and RPLE pre-assigns
/// them — and why this implementation records encrypted round indices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmbiguityReport {
    /// Backward steps analyzed.
    pub steps: u32,
    /// Steps with more than one consistent predecessor.
    pub ambiguous_steps: u32,
    /// Largest hypothesis count seen on one step.
    pub max_candidates: u32,
    /// Sum of hypothesis counts (for means).
    pub total_candidates: u64,
}

impl AmbiguityReport {
    /// Fraction of steps that would collide without round metadata.
    pub fn collision_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.ambiguous_steps as f64 / self.steps as f64
        }
    }

    /// Mean consistent-hypothesis count per step.
    pub fn mean_candidates(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_candidates as f64 / self.steps as f64
        }
    }
}

/// Computes the [`AmbiguityReport`] for a finished anonymization.
///
/// Requires the outcome's secret chain (anonymizer side), the keys, and
/// the same engine.
pub fn ambiguity_profile(
    net: &RoadNetwork,
    outcome: &AnonymizationOutcome,
    keys: &[Key256],
    engine: &dyn ReversibleEngine,
) -> AmbiguityReport {
    let payload = &outcome.payload;
    let algorithm = payload.algorithm;
    let mut region = RegionState::from_segments(net, payload.segments.iter().copied());
    let mut step_scratch = crate::scratch::StepScratch::default();
    let mut ctx = Vec::new();
    let mut report = AmbiguityReport::default();
    let mut chain_end = outcome.chain.len();
    for (idx, meta) in payload.levels.iter().enumerate().rev() {
        let level = Level(idx as u8 + 1);
        let key = keys[idx];
        steps_context_into(&mut ctx, algorithm, level, payload.nonce);
        let step_base = DrawStream::new(key, &ctx);
        let hints = xor_lane(&step_base, HINTS_LANE, &meta.enc_hints);
        let mut hint_stack = HintStack::new(hints);
        for t in (1..=meta.count).rev() {
            let removed = outcome.chain[chain_end - 1];
            chain_end -= 1;
            region.remove(net, removed);
            let mut stream = step_base.fork(t);
            let count = engine.ambiguous_predecessors(
                net,
                &region,
                removed,
                &mut stream,
                &meta.tolerance,
                &mut hint_stack,
                &mut step_scratch,
            ) as u32;
            report.steps += 1;
            report.total_candidates += count as u64;
            report.max_candidates = report.max_candidates.max(count);
            if count > 1 {
                report.ambiguous_steps += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::engine::{RgeEngine, RpleEngine};
    use crate::profile::{LevelRequirement, PrivacyProfile};
    use keystream::KeyManager;
    use roadnet::grid_city;

    #[test]
    fn every_step_has_at_least_the_true_predecessor() {
        let net = grid_city(7, 7, 100.0);
        let snapshot = mobisim::OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(12))
            .build()
            .unwrap();
        let mgr = KeyManager::from_seed(1, 31);
        let keys: Vec<Key256> = mgr.iter().map(|(_, k)| k).collect();
        for engine in [
            Box::new(RgeEngine::new()) as Box<dyn ReversibleEngine>,
            Box::new(RpleEngine::build(&net, 8)),
        ] {
            let out = anonymize(
                &net,
                &snapshot,
                roadnet::SegmentId(20),
                &profile,
                &keys,
                5,
                engine.as_ref(),
            )
            .unwrap();
            let report = ambiguity_profile(&net, &out, &keys, engine.as_ref());
            assert_eq!(report.steps, out.chain.len() as u32);
            // The true predecessor is always consistent.
            assert!(report.mean_candidates() >= 1.0, "{}", engine.name());
            assert!(report.max_candidates >= 1);
        }
    }

    #[test]
    fn collisions_do_occur_without_round_metadata() {
        // Aggregate over many keys: hypothesis testing alone must show a
        // nonzero collision rate for at least one engine/key — this is
        // the phenomenon the paper's designs (and our round metadata)
        // exist to handle. If it were always zero the metadata would be
        // unnecessary.
        let net = grid_city(7, 7, 100.0);
        let snapshot = mobisim::OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(20))
            .build()
            .unwrap();
        let rple = RpleEngine::build(&net, 8);
        let mut ambiguous = 0u32;
        for seed in 0..20 {
            let mgr = KeyManager::from_seed(1, seed);
            let keys: Vec<Key256> = mgr.iter().map(|(_, k)| k).collect();
            if let Ok(out) = anonymize(
                &net,
                &snapshot,
                roadnet::SegmentId(20),
                &profile,
                &keys,
                seed,
                &rple,
            ) {
                ambiguous += ambiguity_profile(&net, &out, &keys, &rple).ambiguous_steps;
            }
        }
        assert!(
            ambiguous > 0,
            "expected some collisions across 20 keyed walks"
        );
    }
}
