//! The public cloaked-location payload and its wire codec.
//!
//! What the LBS provider (and every requester) sees: the cloaking region
//! as a *sorted set* of segment ids — deliberately stripped of the chain
//! order, which is the secret the keys unlock — plus per-level metadata:
//!
//! * `count`: how many segments the level added (region sizes per level
//!   are observable by key holders anyway),
//! * `tag`: a keyed tag identifying the level's last-added segment to a
//!   key holder (the backward walk's bootstrap, DESIGN.md §3.4),
//! * `enc_hints`: quotient hints for RGE steps with `|CloakA| > |CanA|`,
//!   XOR-encrypted under the level key (pseudorandom noise without it).
//!
//! The codec is a hand-rolled length-prefixed binary format (no serde
//! format dependency): `"RCLK" | version | algorithm | nonce | epoch |
//! segments | levels`.
//!
//! Wire version 2 added the `epoch` field: the owner's forward-secret
//! chain position at anonymization time. v1 payloads (no epoch) are
//! rejected explicitly rather than mis-parsed — the epoch tells a
//! requester *which* granted key set opens a receipt, so a silent
//! epoch-less parse would be a correctness hazard, not a compatibility
//! feature.

use crate::error::DeanonError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use keystream::{Level, Tag128};
use roadnet::SegmentId;
use serde::{Deserialize, Serialize};

/// Magic bytes opening every payload.
pub const MAGIC: &[u8; 4] = b"RCLK";
/// Current wire version. Version 2 added the chain `epoch` field; v1
/// payloads are rejected at decode.
pub const VERSION: u8 = 2;

/// Per-level public metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMeta {
    /// Segments this level added to the region.
    pub count: u32,
    /// Keyed tag of the level's last-added segment.
    pub tag: Tag128,
    /// The level's spatial tolerance `σs`. Public profile metadata: the
    /// backward walk replays tolerance-voided rounds, so key holders need
    /// it; to others it only bounds what the region's extent already
    /// reveals.
    pub tolerance: crate::profile::SpatialTolerance,
    /// Encrypted accepting-round numbers, one per step in forward step
    /// order. These let the backward walk filter predecessor hypotheses
    /// by exact round, where ambiguity is structurally impossible; they
    /// are pseudorandom noise without the level key.
    pub enc_rounds: Vec<u32>,
    /// Encrypted quotient hints, in forward step order.
    pub enc_hints: Vec<u32>,
}

/// The public cloaked location: what gets uploaded to the LBS provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloakPayload {
    /// Algorithm id (1 = RGE, 2 = RPLE).
    pub algorithm: u8,
    /// Per-request nonce for domain separation of the keyed streams.
    pub nonce: u64,
    /// The owner's forward-secret chain epoch at anonymization time
    /// (0 for payloads produced outside a chain, e.g. one-shot CLI use).
    /// Requesters use it to match a receipt to the key set they were
    /// granted for that epoch.
    pub epoch: u64,
    /// The cloaking region, sorted by segment id (chain order withheld).
    pub segments: Vec<SegmentId>,
    /// Metadata for levels `L1..`, in level order.
    pub levels: Vec<LevelMeta>,
}

impl CloakPayload {
    /// The highest privacy level in the payload.
    pub fn top_level(&self) -> Level {
        Level(self.levels.len() as u8)
    }

    /// Number of segments in the exposed region.
    pub fn region_size(&self) -> usize {
        self.segments.len()
    }

    /// Whether a segment is part of the exposed region.
    pub fn contains(&self, s: SegmentId) -> bool {
        self.segments.binary_search(&s).is_ok()
    }

    /// Serializes the payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(
            24 + 4 * self.segments.len()
                + self
                    .levels
                    .iter()
                    .map(|l| 24 + 4 * l.enc_hints.len())
                    .sum::<usize>(),
        );
        b.put_slice(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.algorithm);
        b.put_u64_le(self.nonce);
        b.put_u64_le(self.epoch);
        b.put_u32_le(self.segments.len() as u32);
        for s in &self.segments {
            b.put_u32_le(s.0);
        }
        b.put_u8(self.levels.len() as u8);
        for level in &self.levels {
            b.put_u32_le(level.count);
            b.put_slice(&level.tag.0);
            match level.tolerance {
                crate::profile::SpatialTolerance::Unlimited => b.put_u8(0),
                crate::profile::SpatialTolerance::TotalLength(v) => {
                    b.put_u8(1);
                    b.put_f64_le(v);
                }
                crate::profile::SpatialTolerance::BboxDiagonal(v) => {
                    b.put_u8(2);
                    b.put_f64_le(v);
                }
            }
            for r in &level.enc_rounds {
                b.put_u32_le(*r);
            }
            b.put_u32_le(level.enc_hints.len() as u32);
            for h in &level.enc_hints {
                b.put_u32_le(*h);
            }
        }
        b.freeze()
    }

    /// Deserializes a payload.
    ///
    /// # Errors
    ///
    /// Fails on truncation, bad magic/version, unsorted or duplicate
    /// segment ids, or inconsistent counts.
    pub fn decode(mut data: &[u8]) -> Result<Self, DeanonError> {
        let err = |msg: &str| DeanonError::MalformedPayload(msg.to_string());
        if data.remaining() < 6 {
            return Err(err("truncated header"));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("bad magic"));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(DeanonError::MalformedPayload(format!(
                "unsupported version {version} (expected {VERSION}; epoch-less v1 \
                 payloads are retired and must be re-anonymized)"
            )));
        }
        let algorithm = data.get_u8();
        if data.remaining() < 20 {
            return Err(err("truncated nonce/epoch/segment count"));
        }
        let nonce = data.get_u64_le();
        let epoch = data.get_u64_le();
        let seg_count = data.get_u32_le() as usize;
        if data.remaining() < seg_count * 4 {
            return Err(err("truncated segment list"));
        }
        let mut segments = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            segments.push(SegmentId(data.get_u32_le()));
        }
        if segments.windows(2).any(|w| w[0] >= w[1]) {
            return Err(err("segment ids must be strictly ascending"));
        }
        if !data.has_remaining() {
            return Err(err("truncated level count"));
        }
        let level_count = data.get_u8() as usize;
        let mut levels = Vec::with_capacity(level_count);
        let mut total_added = 0u64;
        for _ in 0..level_count {
            if data.remaining() < 24 {
                return Err(err("truncated level metadata"));
            }
            let count = data.get_u32_le();
            total_added += count as u64;
            let mut tag = [0u8; 16];
            data.copy_to_slice(&mut tag);
            if !data.has_remaining() {
                return Err(err("truncated tolerance"));
            }
            let tolerance = match data.get_u8() {
                0 => crate::profile::SpatialTolerance::Unlimited,
                code @ (1 | 2) => {
                    if data.remaining() < 8 {
                        return Err(err("truncated tolerance value"));
                    }
                    let v = data.get_f64_le();
                    if !v.is_finite() || v < 0.0 {
                        return Err(err("non-finite tolerance"));
                    }
                    if code == 1 {
                        crate::profile::SpatialTolerance::TotalLength(v)
                    } else {
                        crate::profile::SpatialTolerance::BboxDiagonal(v)
                    }
                }
                _ => return Err(err("unknown tolerance kind")),
            };
            if data.remaining() < count as usize * 4 {
                return Err(err("truncated round list"));
            }
            let mut enc_rounds = Vec::with_capacity(count as usize);
            for _ in 0..count {
                enc_rounds.push(data.get_u32_le());
            }
            if data.remaining() < 4 {
                return Err(err("truncated hint count"));
            }
            let hint_count = data.get_u32_le() as usize;
            if hint_count > count as usize {
                return Err(err("more hints than steps"));
            }
            if data.remaining() < hint_count * 4 {
                return Err(err("truncated hint list"));
            }
            let mut enc_hints = Vec::with_capacity(hint_count);
            for _ in 0..hint_count {
                enc_hints.push(data.get_u32_le());
            }
            levels.push(LevelMeta {
                count,
                tag: Tag128(tag),
                tolerance,
                enc_rounds,
                enc_hints,
            });
        }
        if data.has_remaining() {
            return Err(err("trailing bytes"));
        }
        // Region must hold the seed segment plus everything ever added.
        if total_added + 1 != segments.len() as u64 {
            return Err(err("level counts inconsistent with region size"));
        }
        Ok(CloakPayload {
            algorithm,
            nonce,
            epoch,
            segments,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CloakPayload {
        CloakPayload {
            algorithm: 1,
            nonce: 0xdead_beef_cafe_f00d,
            epoch: 42,
            segments: vec![SegmentId(2), SegmentId(5), SegmentId(9), SegmentId(14)],
            levels: vec![
                LevelMeta {
                    count: 2,
                    tag: Tag128([7; 16]),
                    tolerance: crate::profile::SpatialTolerance::TotalLength(1234.5),
                    enc_rounds: vec![0xaaaa_0001, 0xaaaa_0002],
                    enc_hints: vec![],
                },
                LevelMeta {
                    count: 1,
                    tag: Tag128([9; 16]),
                    tolerance: crate::profile::SpatialTolerance::Unlimited,
                    enc_rounds: vec![0xbbbb_0001],
                    enc_hints: vec![0x1234_5678],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.encode();
        let back = CloakPayload::decode(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.top_level(), Level(2));
        assert_eq!(p.region_size(), 4);
        assert!(p.contains(SegmentId(5)));
        assert!(!p.contains(SegmentId(6)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                CloakPayload::decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut v = sample().encode().to_vec();
        v.push(0);
        assert!(CloakPayload::decode(&v).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut v = sample().encode().to_vec();
        v[0] = b'X';
        assert!(CloakPayload::decode(&v).is_err());
        let mut v = sample().encode().to_vec();
        v[4] = 99;
        assert!(matches!(
            CloakPayload::decode(&v),
            Err(DeanonError::MalformedPayload(m)) if m.contains("version")
        ));
    }

    /// A captured v1 payload — the v2 byte-string with the 8 epoch bytes
    /// spliced out and the version byte rewound — must fail decode with a
    /// clear unsupported-version error, not mis-parse the segment count
    /// out of the nonce's tail.
    #[test]
    fn rejects_captured_v1_payload_bytes() {
        let mut v1 = sample().encode().to_vec();
        v1[4] = 1; // version byte back to v1
        v1.drain(14..22); // strip the epoch (after magic+ver+algo+nonce)
        match CloakPayload::decode(&v1) {
            Err(DeanonError::MalformedPayload(m)) => {
                assert!(
                    m.contains("unsupported version 1"),
                    "error should name the rejected version: {m}"
                );
            }
            other => panic!("v1 bytes must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsorted_segments() {
        let mut p = sample();
        p.segments.swap(0, 1);
        let bytes = p.encode();
        assert!(CloakPayload::decode(&bytes).is_err());
        // Duplicates too.
        let mut p = sample();
        p.segments[1] = p.segments[0];
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn rejects_inconsistent_level_counts() {
        let mut p = sample();
        p.levels[0].count = 99;
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn rejects_hint_overflow() {
        let mut p = sample();
        p.levels[1].enc_hints = vec![1, 2, 3]; // 3 hints for 1 step
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn empty_levels_payload() {
        let p = CloakPayload {
            algorithm: 2,
            nonce: 1,
            epoch: 0,
            segments: vec![SegmentId(0)],
            levels: vec![],
        };
        let back = CloakPayload::decode(&p.encode()).unwrap();
        assert_eq!(back.top_level(), Level(0));
        assert_eq!(back, p);
    }
}
