//! The public cloaked-location payload and its wire codec.
//!
//! What the LBS provider (and every requester) sees: the cloaking region
//! as a *sorted set* of segment ids — deliberately stripped of the chain
//! order, which is the secret the keys unlock — plus per-level metadata:
//!
//! * `count`: how many segments the level added (region sizes per level
//!   are observable by key holders anyway),
//! * `tag`: a keyed tag identifying the level's last-added segment to a
//!   key holder (the backward walk's bootstrap, DESIGN.md §3.4),
//! * `enc_hints`: quotient hints for RGE steps with `|CloakA| > |CanA|`,
//!   XOR-encrypted under the level key (pseudorandom noise without it).
//!
//! The codec is a hand-rolled length-prefixed binary format (no serde
//! format dependency): `"RCLK" | version | algorithm | nonce | epoch |
//! segments | levels`.
//!
//! Wire version 2 added the `epoch` field: the owner's forward-secret
//! chain position at anonymization time. v1 payloads (no epoch) are
//! rejected explicitly rather than mis-parsed — the epoch tells a
//! requester *which* granted key set opens a receipt, so a silent
//! epoch-less parse would be a correctness hazard, not a compatibility
//! feature.

use crate::error::DecodeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use keystream::{Level, Tag128};
use roadnet::SegmentId;
use serde::{Deserialize, Serialize};

/// Magic bytes opening every payload.
pub const MAGIC: &[u8; 4] = b"RCLK";
/// Current wire version. Version 2 added the chain `epoch` field; v1
/// payloads are rejected at decode.
pub const VERSION: u8 = 2;

/// Per-level public metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMeta {
    /// Segments this level added to the region.
    pub count: u32,
    /// Keyed tag of the level's last-added segment.
    pub tag: Tag128,
    /// The level's spatial tolerance `σs`. Public profile metadata: the
    /// backward walk replays tolerance-voided rounds, so key holders need
    /// it; to others it only bounds what the region's extent already
    /// reveals.
    pub tolerance: crate::profile::SpatialTolerance,
    /// Encrypted accepting-round numbers, one per step in forward step
    /// order. These let the backward walk filter predecessor hypotheses
    /// by exact round, where ambiguity is structurally impossible; they
    /// are pseudorandom noise without the level key.
    pub enc_rounds: Vec<u32>,
    /// Encrypted quotient hints, in forward step order.
    pub enc_hints: Vec<u32>,
}

/// The public cloaked location: what gets uploaded to the LBS provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloakPayload {
    /// Algorithm id (1 = RGE, 2 = RPLE).
    pub algorithm: u8,
    /// Per-request nonce for domain separation of the keyed streams.
    pub nonce: u64,
    /// The owner's forward-secret chain epoch at anonymization time
    /// (0 for payloads produced outside a chain, e.g. one-shot CLI use).
    /// Requesters use it to match a receipt to the key set they were
    /// granted for that epoch.
    pub epoch: u64,
    /// The cloaking region, sorted by segment id (chain order withheld).
    pub segments: Vec<SegmentId>,
    /// Metadata for levels `L1..`, in level order.
    pub levels: Vec<LevelMeta>,
}

impl CloakPayload {
    /// The highest privacy level in the payload.
    pub fn top_level(&self) -> Level {
        Level(self.levels.len() as u8)
    }

    /// Number of segments in the exposed region.
    pub fn region_size(&self) -> usize {
        self.segments.len()
    }

    /// Whether a segment is part of the exposed region.
    pub fn contains(&self, s: SegmentId) -> bool {
        self.segments.binary_search(&s).is_ok()
    }

    /// Serializes the payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(
            24 + 4 * self.segments.len()
                + self
                    .levels
                    .iter()
                    .map(|l| 24 + 4 * l.enc_hints.len())
                    .sum::<usize>(),
        );
        b.put_slice(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.algorithm);
        b.put_u64_le(self.nonce);
        b.put_u64_le(self.epoch);
        b.put_u32_le(self.segments.len() as u32);
        for s in &self.segments {
            b.put_u32_le(s.0);
        }
        b.put_u8(self.levels.len() as u8);
        for level in &self.levels {
            b.put_u32_le(level.count);
            b.put_slice(&level.tag.0);
            match level.tolerance {
                crate::profile::SpatialTolerance::Unlimited => b.put_u8(0),
                crate::profile::SpatialTolerance::TotalLength(v) => {
                    b.put_u8(1);
                    b.put_f64_le(v);
                }
                crate::profile::SpatialTolerance::BboxDiagonal(v) => {
                    b.put_u8(2);
                    b.put_f64_le(v);
                }
            }
            for r in &level.enc_rounds {
                b.put_u32_le(*r);
            }
            b.put_u32_le(level.enc_hints.len() as u32);
            for h in &level.enc_hints {
                b.put_u32_le(*h);
            }
        }
        b.freeze()
    }

    /// Deserializes a payload.
    ///
    /// The input is adversary-controlled (any requester or LBS provider
    /// can feed bytes here), so the parser never panics and never sizes
    /// an allocation from an embedded count before capping that count
    /// against the bytes actually remaining.
    ///
    /// # Errors
    ///
    /// Returns a structured [`DecodeError`] classifying the failure:
    /// truncation, bad magic/version, hostile length fields, unsorted or
    /// duplicate segment ids, or inconsistent counts.
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeError> {
        fn need(available: usize, field: &'static str, needed: usize) -> Result<(), DecodeError> {
            if available < needed {
                Err(DecodeError::Truncated {
                    field,
                    needed,
                    available,
                })
            } else {
                Ok(())
            }
        }
        /// Validates a count field against the remaining input *before*
        /// the caller allocates `claimed` elements of `elem_bytes` each.
        fn cap(
            available: usize,
            field: &'static str,
            claimed: u64,
            elem_bytes: u64,
        ) -> Result<usize, DecodeError> {
            if claimed.saturating_mul(elem_bytes) > available as u64 {
                Err(DecodeError::HostileLength {
                    field,
                    claimed,
                    available,
                })
            } else {
                Ok(claimed as usize)
            }
        }
        need(data.remaining(), "header", 6)?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let algorithm = data.get_u8();
        need(data.remaining(), "nonce/epoch/segment count", 20)?;
        let nonce = data.get_u64_le();
        let epoch = data.get_u64_le();
        let claimed_segs = data.get_u32_le() as u64;
        let seg_count = cap(data.remaining(), "segment", claimed_segs, 4)?;
        let mut segments = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            segments.push(SegmentId(data.get_u32_le()));
        }
        if segments.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DecodeError::UnsortedSegments);
        }
        need(data.remaining(), "level count", 1)?;
        let level_count = data.get_u8() as usize;
        let mut levels = Vec::with_capacity(level_count);
        let mut total_added = 0u64;
        for _ in 0..level_count {
            need(data.remaining(), "level metadata", 21)?;
            let count = data.get_u32_le();
            total_added += count as u64;
            let mut tag = [0u8; 16];
            data.copy_to_slice(&mut tag);
            let tolerance = match data.get_u8() {
                0 => crate::profile::SpatialTolerance::Unlimited,
                code @ (1 | 2) => {
                    need(data.remaining(), "tolerance value", 8)?;
                    let v = data.get_f64_le();
                    if !v.is_finite() || v < 0.0 {
                        return Err(DecodeError::NonFiniteTolerance);
                    }
                    if code == 1 {
                        crate::profile::SpatialTolerance::TotalLength(v)
                    } else {
                        crate::profile::SpatialTolerance::BboxDiagonal(v)
                    }
                }
                kind => return Err(DecodeError::UnknownToleranceKind(kind)),
            };
            let rounds = cap(data.remaining(), "round", count as u64, 4)?;
            let mut enc_rounds = Vec::with_capacity(rounds);
            for _ in 0..rounds {
                enc_rounds.push(data.get_u32_le());
            }
            need(data.remaining(), "hint count", 4)?;
            let claimed_hints = data.get_u32_le() as u64;
            if claimed_hints > count as u64 {
                return Err(DecodeError::HintOverflow {
                    hints: claimed_hints,
                    steps: count as u64,
                });
            }
            let hint_count = cap(data.remaining(), "hint", claimed_hints, 4)?;
            let mut enc_hints = Vec::with_capacity(hint_count);
            for _ in 0..hint_count {
                enc_hints.push(data.get_u32_le());
            }
            levels.push(LevelMeta {
                count,
                tag: Tag128(tag),
                tolerance,
                enc_rounds,
                enc_hints,
            });
        }
        if data.has_remaining() {
            return Err(DecodeError::TrailingBytes(data.remaining()));
        }
        // Region must hold the seed segment plus everything ever added.
        if total_added + 1 != segments.len() as u64 {
            return Err(DecodeError::InconsistentCounts {
                declared: total_added + 1,
                region: segments.len(),
            });
        }
        Ok(CloakPayload {
            algorithm,
            nonce,
            epoch,
            segments,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CloakPayload {
        CloakPayload {
            algorithm: 1,
            nonce: 0xdead_beef_cafe_f00d,
            epoch: 42,
            segments: vec![SegmentId(2), SegmentId(5), SegmentId(9), SegmentId(14)],
            levels: vec![
                LevelMeta {
                    count: 2,
                    tag: Tag128([7; 16]),
                    tolerance: crate::profile::SpatialTolerance::TotalLength(1234.5),
                    enc_rounds: vec![0xaaaa_0001, 0xaaaa_0002],
                    enc_hints: vec![],
                },
                LevelMeta {
                    count: 1,
                    tag: Tag128([9; 16]),
                    tolerance: crate::profile::SpatialTolerance::Unlimited,
                    enc_rounds: vec![0xbbbb_0001],
                    enc_hints: vec![0x1234_5678],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.encode();
        let back = CloakPayload::decode(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.top_level(), Level(2));
        assert_eq!(p.region_size(), 4);
        assert!(p.contains(SegmentId(5)));
        assert!(!p.contains(SegmentId(6)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                CloakPayload::decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut v = sample().encode().to_vec();
        v.push(0);
        assert!(CloakPayload::decode(&v).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut v = sample().encode().to_vec();
        v[0] = b'X';
        assert_eq!(CloakPayload::decode(&v), Err(DecodeError::BadMagic));
        let mut v = sample().encode().to_vec();
        v[4] = 99;
        assert_eq!(
            CloakPayload::decode(&v),
            Err(DecodeError::UnsupportedVersion(99))
        );
    }

    /// A captured v1 payload — the v2 byte-string with the 8 epoch bytes
    /// spliced out and the version byte rewound — must fail decode with a
    /// clear unsupported-version error, not mis-parse the segment count
    /// out of the nonce's tail.
    #[test]
    fn rejects_captured_v1_payload_bytes() {
        let mut v1 = sample().encode().to_vec();
        v1[4] = 1; // version byte back to v1
        v1.drain(14..22); // strip the epoch (after magic+ver+algo+nonce)
        match CloakPayload::decode(&v1) {
            Err(DecodeError::UnsupportedVersion(1)) => {
                let msg = DecodeError::UnsupportedVersion(1).to_string();
                assert!(
                    msg.contains("re-anonymized"),
                    "error should tell the caller what to do: {msg}"
                );
            }
            other => panic!("v1 bytes must be rejected, got {other:?}"),
        }
    }

    /// Regression for the pre-allocation trust bug class: a header that
    /// claims a 4-billion-segment region (a would-be 16 GiB allocation)
    /// must be rejected as a hostile length *before* any allocation is
    /// sized from it — decode of the 30-byte input stays O(1) memory.
    #[test]
    fn rejects_hostile_4gib_segment_count_before_allocating() {
        let mut v = sample().encode().to_vec();
        // Segment count sits right after magic+ver+algo+nonce+epoch.
        v[22..26].copy_from_slice(&u32::MAX.to_le_bytes());
        v.truncate(30); // a handful of "segment" bytes, nothing close to 4Gi
        assert_eq!(
            CloakPayload::decode(&v),
            Err(DecodeError::HostileLength {
                field: "segment",
                claimed: u32::MAX as u64,
                available: 4,
            })
        );
    }

    /// Same class, one layer down: hostile level round/hint counts are
    /// capped against the remaining input, not trusted as capacities.
    #[test]
    fn rejects_hostile_level_counts_before_allocating() {
        let p = sample();
        let bytes = p.encode();
        // The first level's `count` field follows segments + level count.
        let count_at = 26 + 4 * p.segments.len() + 1;
        let mut v = bytes.to_vec();
        v[count_at..count_at + 4].copy_from_slice(&0xfff_ffffu32.to_le_bytes());
        match CloakPayload::decode(&v) {
            Err(DecodeError::HostileLength {
                field: "round",
                claimed,
                ..
            }) => {
                assert_eq!(claimed, 0xfff_ffff);
            }
            other => panic!("hostile round count must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsorted_segments() {
        let mut p = sample();
        p.segments.swap(0, 1);
        let bytes = p.encode();
        assert!(CloakPayload::decode(&bytes).is_err());
        // Duplicates too.
        let mut p = sample();
        p.segments[1] = p.segments[0];
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn rejects_inconsistent_level_counts() {
        let mut p = sample();
        p.levels[0].count = 99;
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn rejects_hint_overflow() {
        let mut p = sample();
        p.levels[1].enc_hints = vec![1, 2, 3]; // 3 hints for 1 step
        assert!(CloakPayload::decode(&p.encode()).is_err());
    }

    #[test]
    fn empty_levels_payload() {
        let p = CloakPayload {
            algorithm: 2,
            nonce: 1,
            epoch: 0,
            segments: vec![SegmentId(0)],
            levels: vec![],
        };
        let back = CloakPayload::decode(&p.encode()).unwrap();
        assert_eq!(back.top_level(), Level(0));
        assert_eq!(back, p);
    }
}
