//! Reusable scratch buffers for the cloaking hot path.
//!
//! Every expansion step historically allocated: a fresh candidate
//! frontier `Vec`, a fresh `(length, id)`-sorted region list, a fresh
//! draw-cache `Vec`, and fresh context byte strings for the keyed
//! streams. [`CloakScratch`] owns all of those buffers so a worker that
//! cloaks N owners performs no steady-state heap traffic: buffers grow
//! to the high-water mark of the workload once and are then reused.
//!
//! # Reuse contract
//!
//! * A scratch is **plain state, not configuration** — any scratch
//!   (including `CloakScratch::default()`) produces bit-identical
//!   results for the same inputs; the scratch-taking entry points
//!   ([`crate::multilevel::anonymize_with_scratch`],
//!   [`crate::multilevel::deanonymize_with_scratch`]) clear every
//!   buffer they use before reading it.
//! * A scratch is `Send` but not shareable: use one per worker thread,
//!   not one behind a lock.
//! * Buffers are sized lazily against the network they first see; a
//!   scratch may be reused across networks (it resizes), though keeping
//!   one scratch per network avoids re-growing.

use crate::region::RegionState;
use roadnet::SegmentId;

/// A generation-stamped membership set over dense indices: `O(1)` insert
/// and reset without clearing the backing array (the epoch bump
/// invalidates every stale stamp at once).
#[derive(Debug, Clone, Default)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// Starts a fresh set covering indices `0..n`.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One clear every 2^32 generations keeps stale stamps from
            // aliasing a recycled epoch value.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Inserts `i`; returns whether it was newly inserted this
    /// generation.
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// Whether `i` is a member of the current generation. Indices beyond
    /// the last [`StampSet::begin`] bound are simply absent.
    pub fn contains(&self, i: usize) -> bool {
        self.stamp.get(i).copied() == Some(self.epoch)
    }
}

/// Per-step buffers threaded through
/// [`ReversibleEngine`](crate::engine::ReversibleEngine) steps: the RGE
/// table's row/column lists, the frontier dedup stamps, the draw cache
/// shared by hypothesis replays, and RPLE's predecessor-hypothesis list.
///
/// See the [module docs](self) for the reuse contract.
#[derive(Debug, Clone, Default)]
pub struct StepScratch {
    /// `(length, id)`-sorted region members — RGE table rows.
    pub(crate) rows: Vec<SegmentId>,
    /// Sorted candidate frontier — RGE table columns.
    pub(crate) cols: Vec<SegmentId>,
    /// Frontier dedup stamps (one slot per segment).
    pub(crate) stamp: StampSet,
    /// Materialized draws of the step substream, replayed across
    /// hypothesis simulations.
    pub(crate) draws: Vec<u64>,
    /// RPLE predecessor hypotheses.
    pub(crate) hyp: Vec<SegmentId>,
}

impl StepScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-worker buffers for whole (de)anonymization runs: the region
/// membership bitset, the engine [`StepScratch`], the keyed-stream
/// context byte buffer, and the per-level round/hint buffers.
///
/// One `CloakScratch` per worker thread makes the anonymize → verify
/// hot path allocation-free at steady state; see the
/// [module docs](self) for the reuse contract.
#[derive(Debug, Clone, Default)]
pub struct CloakScratch {
    /// The evolving cloaking region (membership bitset + cached totals).
    pub(crate) region: RegionState,
    /// Engine per-step buffers.
    pub(crate) step: StepScratch,
    /// Context bytes for deriving keyed streams (`rc/step/…` etc.).
    pub(crate) ctx: Vec<u8>,
    /// Plain (decrypted) per-step accepting rounds of one level.
    pub(crate) rounds: Vec<u32>,
    /// Plain (decrypted) quotient hints of one level.
    pub(crate) hints: Vec<u32>,
}

impl CloakScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffers for growing k-anonymity regions for **many owners of one
/// snapshot** in a single pass
/// ([`crate::multilevel::anonymize_batch_with_scratch`]).
///
/// The shared per-step state (region bitset, table rows/columns, dedup
/// stamps) is reused across every owner in the batch, and the per-level
/// round/hint metadata is laid out structure-of-arrays: one contiguous
/// row-major `u32` arena per kind, with `lanes` recording each owner's
/// `(offset, len)` row. The inner encrypt/decrypt sweeps then run over
/// contiguous lanes instead of per-owner re-walks, which keeps them
/// autovectorizable.
///
/// Same reuse contract as [`CloakScratch`]: plain state, any scratch
/// yields bit-identical results, one scratch per worker thread.
#[derive(Debug, Clone, Default)]
pub struct BatchCloakScratch {
    /// The evolving cloaking region, shared across the batch (reset per
    /// owner; the membership bitset is sized once per network).
    pub(crate) region: RegionState,
    /// Engine per-step buffers — the shared table rows/columns every
    /// owner's expansion walks over.
    pub(crate) step: StepScratch,
    /// Context bytes for deriving keyed streams.
    pub(crate) ctx: Vec<u8>,
    /// Owner-major contiguous arena of plain per-step accepting rounds.
    pub(crate) rounds: Vec<u32>,
    /// Owner-major contiguous arena of plain quotient hints.
    pub(crate) hints: Vec<u32>,
    /// Each successfully cloaked owner's `(rounds, hints)` lane starts —
    /// the row index of the structure-of-arrays layout.
    pub(crate) lanes: Vec<(u32, u32)>,
}

impl BatchCloakScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lane starts recorded for the owners cloaked so far in the current
    /// batch (diagnostics; one entry per successful owner).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_set_dedups_within_a_generation() {
        let mut s = StampSet::default();
        s.begin(4);
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.insert(0));
        // A new generation forgets everything without clearing.
        s.begin(4);
        assert!(s.insert(2));
    }

    #[test]
    fn stamp_set_grows() {
        let mut s = StampSet::default();
        s.begin(2);
        assert!(s.insert(1));
        s.begin(10);
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn scratches_construct() {
        let c = CloakScratch::new();
        assert!(c.ctx.is_empty());
        let s = StepScratch::new();
        assert!(s.rows.is_empty() && s.cols.is_empty() && s.hyp.is_empty());
    }
}
