//! The reversible expansion engines: RGE and RPLE.
//!
//! Both engines implement one *forward step* (select the next segment to
//! add, driven by a keyed draw stream) and one *backward step* (given the
//! segment just removed, identify its predecessor in the chain). The
//! protocol follows the paper's de-anonymization discipline directly:
//!
//! 1. **Per-step substreams.** Step `t` of a level draws from an
//!    independent keyed stream derived from `(key, level, t, nonce)`, so
//!    the backward walk — which visits steps in reverse order — can replay
//!    any step's draws without knowing how many draws other steps used.
//! 2. **Deterministic core selection.** `forward_core(anchor)` consumes
//!    draws in rounds; a round is *voided* when its candidate is
//!    inadmissible (empty RPLE slot, already in the region, spatial
//!    tolerance, RGE quotient-band mismatch) and the first admissible
//!    round's candidate is selected. No other state enters the decision,
//!    so anyone with the key can replay it for any hypothetical anchor.
//! 3. **Backward hypothesis testing.** The paper: "the algorithm checks
//!    which road segment is linked with S′ to narrow down the options and
//!    whether segment S′ can be deterministically selected with the access
//!    key if we assume a segment is S." The backward step enumerates the
//!    possible predecessors and keeps the one whose simulated
//!    `forward_core` selects exactly the removed segment *at the step's
//!    recorded accepting round* (carried encrypted in the payload).
//! 4. **No collisions, by construction.** Filtering hypotheses by exact
//!    round makes ambiguity structurally impossible: two anchors
//!    accepting the same segment at the same round would need the same
//!    table column (RGE: "no repeated transition value in each row and
//!    column") or the same `BT` cell (RPLE: the pre-assignment duality).
//!    This is this implementation's resolution of the paper's "collision"
//!    issue; [`StepFailure::Collision`] remains as the wrong-key /
//!    tampered-payload error. Voided-round counts are an experiment
//!    output (B8).

use crate::error::StepFailure;
use crate::frontier::candidates_into;
use crate::preassign::PreassignedTables;
use crate::profile::SpatialTolerance;
use crate::region::RegionState;
use crate::scratch::StepScratch;
use crate::table::TableView;
use keystream::DrawStream;
use roadnet::{RoadNetwork, SegmentId};

/// Upper bound on draw rounds per step. Exhausting it fails the request
/// (counted in the success-rate metric); it can only happen when the
/// tolerance rejects nearly every candidate or an RPLE row has no usable
/// slot.
pub const MAX_REDRAWS: usize = 1024;

/// A successfully selected forward transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAccept {
    /// The segment to add to the region.
    pub segment: SegmentId,
    /// The quotient hint to record for the backward walk, when the step
    /// needed one (RGE with `|CloakA| > |CanA|`).
    pub hint: Option<u32>,
    /// Draw rounds consumed by this step's own selection.
    pub draws: u32,
    /// Rounds voided before acceptance (tolerance, empty slots, quotient
    /// mismatches).
    pub voided: u32,
}

/// A stack of recorded quotient hints consumed by the backward walk.
///
/// Hints are recorded in forward step order; the backward walk visits
/// steps in reverse, so it pops from the end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HintStack(Vec<u32>);

impl HintStack {
    /// Wraps hints recorded in forward order.
    pub fn new(hints: Vec<u32>) -> Self {
        HintStack(hints)
    }

    /// Pops the most recently recorded hint.
    pub fn pop(&mut self) -> Option<u32> {
        self.0.pop()
    }

    /// Unwraps the remaining hints (scratch-buffer reclamation).
    pub fn into_inner(self) -> Vec<u32> {
        self.0
    }

    /// Remaining hints.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the stack is exhausted.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Lazily materialized draw sequence of one step's substream, so multiple
/// hypothesis simulations can replay the same rounds. The backing buffer
/// is borrowed from the caller's [`StepScratch`] (cleared on wrap) so
/// steps allocate nothing at steady state.
struct DrawCache<'a> {
    stream: &'a mut DrawStream,
    draws: &'a mut Vec<u64>,
}

impl<'a> DrawCache<'a> {
    fn new(stream: &'a mut DrawStream, draws: &'a mut Vec<u64>) -> Self {
        draws.clear();
        DrawCache { stream, draws }
    }

    fn get(&mut self, i: usize) -> u64 {
        while self.draws.len() <= i {
            self.draws.push(self.stream.next_u64());
        }
        self.draws[i]
    }
}

/// A reversible cloaking engine (RGE or RPLE).
///
/// The trait is object-safe so services can hold `&dyn ReversibleEngine`,
/// and requires `Send + Sync`: every step works from `&self`, so one
/// engine instance (including RPLE's pre-assigned tables) serves all
/// worker threads concurrently without locks.
pub trait ReversibleEngine: Send + Sync {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Wire identifier stored in payloads (1 = RGE, 2 = RPLE).
    fn algorithm_id(&self) -> u8;

    /// One forward transition from the region state `CloakA_t`, anchored
    /// at the chain's last segment. `scratch` provides the step's reusable
    /// buffers ([`StepScratch`]); any scratch yields identical results.
    ///
    /// # Errors
    ///
    /// [`StepFailure::NoCandidates`] when nothing admissible is reachable,
    /// [`StepFailure::RedrawBudgetExhausted`] when every round voided, and
    /// [`StepFailure::Collision`] when the selection would be ambiguous to
    /// reverse (the caller should retry the request under a fresh nonce).
    #[allow(clippy::too_many_arguments)]
    fn forward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        last: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        scratch: &mut StepScratch,
    ) -> Result<StepAccept, StepFailure>;

    /// One backward transition: the region is `CloakA_t` (the removed
    /// segment already taken out), `removed` is the segment step `t`
    /// added, and `expected_round` is the forward step's recorded
    /// accepting round (1-based; carried encrypted in the payload).
    /// Returns the chain's previous segment.
    ///
    /// # Errors
    ///
    /// Fails when no predecessor is consistent (wrong key or corrupted
    /// payload) or required hints are missing.
    #[allow(clippy::too_many_arguments)]
    fn backward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        expected_round: u32,
        hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> Result<SegmentId, StepFailure>;

    /// Ablation probe: how many predecessor hypotheses are consistent with
    /// `removed` when the backward walk may **not** filter by accepting
    /// round — the paper's "collision" count. A value above 1 means a
    /// design without per-step round metadata could not reverse this step
    /// unambiguously.
    #[allow(clippy::too_many_arguments)]
    fn ambiguous_predecessors(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> usize;
}

/// Reversible Global Expansion: per-step transition tables over the whole
/// cloak × frontier, rebuilt on the fly (paper §III-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RgeEngine;

impl RgeEngine {
    /// Creates the engine (stateless).
    pub fn new() -> Self {
        RgeEngine
    }

    /// Simulates the deterministic core selection for the hypothesis that
    /// the chain anchor is row `i_s`. Returns `(round, candidate)` of the
    /// first admissible round, or `None` if the budget voids out.
    #[allow(clippy::too_many_arguments)]
    fn simulate_row(
        net: &RoadNetwork,
        region: &RegionState,
        table: TableView<'_>,
        tolerance: &SpatialTolerance,
        cache: &mut DrawCache<'_>,
        i_s: usize,
    ) -> Option<(usize, SegmentId)> {
        let (m, n) = (table.row_count(), table.col_count());
        let q_mod = table.hint_modulus();
        let band = i_s / n;
        for r in 0..MAX_REDRAWS {
            let rv = cache.get(r);
            if m > n && ((rv / n as u64) % q_mod as u64) as usize != band {
                continue;
            }
            let p = (rv % n as u64) as usize;
            let j = table.forward_col(i_s, p);
            let cand = table.cols()[j];
            if !tolerance.allows_extended(net, region.total_length(), region.bounding_box(), cand) {
                continue;
            }
            return Some((r, cand));
        }
        None
    }
}

impl ReversibleEngine for RgeEngine {
    fn name(&self) -> &'static str {
        "RGE"
    }

    fn algorithm_id(&self) -> u8 {
        1
    }

    fn forward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        last: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        scratch: &mut StepScratch,
    ) -> Result<StepAccept, StepFailure> {
        let StepScratch {
            rows,
            cols,
            stamp,
            draws,
            ..
        } = scratch;
        candidates_into(net, region, stamp, cols);
        if cols.is_empty() {
            return Err(StepFailure::NoCandidates);
        }
        region.sorted_by_length_into(net, rows);
        let table = TableView::new(rows, cols);
        let i0 = table
            .row_of(net, last)
            .expect("chain anchor must be in the region");
        let mut cache = DrawCache::new(stream, draws);
        let (round, cand) = Self::simulate_row(net, region, table, tolerance, &mut cache, i0)
            .ok_or(StepFailure::RedrawBudgetExhausted)?;
        let band = i0 / table.col_count();
        Ok(StepAccept {
            segment: cand,
            hint: table.needs_hint().then_some(band as u32),
            draws: round as u32 + 1,
            voided: round as u32,
        })
    }

    fn backward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        expected_round: u32,
        hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> Result<SegmentId, StepFailure> {
        let StepScratch {
            rows,
            cols,
            stamp,
            draws,
            ..
        } = scratch;
        candidates_into(net, region, stamp, cols);
        if cols.is_empty() {
            return Err(StepFailure::NoCandidates);
        }
        region.sorted_by_length_into(net, rows);
        let table = TableView::new(rows, cols);
        if table.col_of(net, removed).is_none() {
            // The removed segment is not on this state's frontier: the
            // payload/keys are inconsistent.
            return Err(StepFailure::Collision);
        }
        let n = table.col_count();
        let band = if table.needs_hint() {
            match hints.pop() {
                Some(h) => h as usize,
                None => return Err(StepFailure::Collision),
            }
        } else {
            0
        };
        if band >= table.hint_modulus() {
            return Err(StepFailure::Collision);
        }
        let band_rows = (band * n)..((band * n + n).min(table.row_count()));
        let mut cache = DrawCache::new(stream, draws);
        // Exactly one row of the band can first-accept `removed` at the
        // expected round: same-round selections of distinct rows hit
        // distinct columns (the table's no-collision property).
        for i_s in band_rows {
            if let Some((r, cand)) =
                Self::simulate_row(net, region, table, tolerance, &mut cache, i_s)
            {
                if cand == removed && r as u32 + 1 == expected_round {
                    return Ok(table.rows()[i_s]);
                }
            }
        }
        Err(StepFailure::Collision)
    }

    fn ambiguous_predecessors(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> usize {
        let StepScratch {
            rows,
            cols,
            stamp,
            draws,
            ..
        } = scratch;
        candidates_into(net, region, stamp, cols);
        if cols.is_empty() {
            return 0;
        }
        region.sorted_by_length_into(net, rows);
        let table = TableView::new(rows, cols);
        let n = table.col_count();
        let band = if table.needs_hint() {
            match hints.pop() {
                Some(h) => h as usize,
                None => return 0,
            }
        } else {
            0
        };
        if band >= table.hint_modulus() {
            return 0;
        }
        let band_rows = (band * n)..((band * n + n).min(table.row_count()));
        let mut cache = DrawCache::new(stream, draws);
        band_rows
            .filter(|&i_s| {
                matches!(
                    Self::simulate_row(net, region, table, tolerance, &mut cache, i_s),
                    Some((_, cand)) if cand == removed
                )
            })
            .count()
    }
}

/// Reversible Pre-assignment-based Local Expansion: per-segment
/// pre-assigned transition lists (paper §III-B, Algorithm 1).
#[derive(Debug, Clone)]
pub struct RpleEngine {
    tables: PreassignedTables,
}

impl RpleEngine {
    /// Creates the engine from pre-assigned tables (run Algorithm 1 via
    /// [`PreassignedTables::build`]).
    pub fn new(tables: PreassignedTables) -> Self {
        RpleEngine { tables }
    }

    /// Builds the tables and the engine in one call.
    pub fn build(net: &RoadNetwork, t_len: usize) -> Self {
        Self::new(PreassignedTables::build(net, t_len))
    }

    /// The pre-assigned tables (for inspection and the B4 experiment).
    pub fn tables(&self) -> &PreassignedTables {
        &self.tables
    }

    /// Simulates the deterministic core selection for the hypothesis that
    /// the chain anchor is `s`.
    fn simulate_anchor(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        tolerance: &SpatialTolerance,
        cache: &mut DrawCache<'_>,
        s: SegmentId,
    ) -> Option<(usize, SegmentId)> {
        let t_len = self.tables.t_len();
        let ft = self.tables.forward_list(s);
        for r in 0..MAX_REDRAWS {
            let rv = cache.get(r);
            let idx = (rv % t_len as u64) as usize;
            let cand = match ft[idx] {
                Some(c) if !region.contains(c) => c,
                _ => continue,
            };
            if !tolerance.allows_extended(net, region.total_length(), region.bounding_box(), cand) {
                continue;
            }
            return Some((r, cand));
        }
        None
    }

    /// Predecessor hypotheses for `removed`: in-region segments linked to
    /// it through the backward table. Written into a caller-owned buffer
    /// (cleared first).
    fn hypotheses_into(&self, region: &RegionState, removed: SegmentId, out: &mut Vec<SegmentId>) {
        out.clear();
        out.extend(
            self.tables
                .backward_list(removed)
                .iter()
                .flatten()
                .copied()
                .filter(|s| region.contains(*s)),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Predecessor hypotheses for `removed` (allocating convenience over
    /// the internal buffer-reusing walk the backward step performs).
    pub fn hypotheses(&self, region: &RegionState, removed: SegmentId) -> Vec<SegmentId> {
        let mut out = Vec::new();
        self.hypotheses_into(region, removed, &mut out);
        out
    }
}

impl ReversibleEngine for RpleEngine {
    fn name(&self) -> &'static str {
        "RPLE"
    }

    fn algorithm_id(&self) -> u8 {
        2
    }

    fn forward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        last: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        scratch: &mut StepScratch,
    ) -> Result<StepAccept, StepFailure> {
        // Local expansion can only move to a pre-assigned neighbor of the
        // anchor; fail fast when no slot could ever be accepted.
        let any_admissible = self.tables.forward_list(last).iter().flatten().any(|&c| {
            !region.contains(c)
                && tolerance.allows_extended(net, region.total_length(), region.bounding_box(), c)
        });
        if !any_admissible {
            return Err(StepFailure::NoCandidates);
        }
        let mut cache = DrawCache::new(stream, &mut scratch.draws);
        let (round, cand) = self
            .simulate_anchor(net, region, tolerance, &mut cache, last)
            .ok_or(StepFailure::RedrawBudgetExhausted)?;
        Ok(StepAccept {
            segment: cand,
            hint: None,
            draws: round as u32 + 1,
            voided: round as u32,
        })
    }

    fn backward_step(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        expected_round: u32,
        _hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> Result<SegmentId, StepFailure> {
        let StepScratch { draws, hyp, .. } = scratch;
        self.hypotheses_into(region, removed, hyp);
        let mut cache = DrawCache::new(stream, draws);
        // Exactly one predecessor can first-accept `removed` at the
        // expected round: two anchors accepting at the same round would
        // need the same `BT[removed]` cell (the pre-assignment duality).
        for &s in hyp.iter() {
            if let Some((r, cand)) = self.simulate_anchor(net, region, tolerance, &mut cache, s) {
                if cand == removed && r as u32 + 1 == expected_round {
                    return Ok(s);
                }
            }
        }
        Err(StepFailure::Collision)
    }

    fn ambiguous_predecessors(
        &self,
        net: &RoadNetwork,
        region: &RegionState,
        removed: SegmentId,
        stream: &mut DrawStream,
        tolerance: &SpatialTolerance,
        _hints: &mut HintStack,
        scratch: &mut StepScratch,
    ) -> usize {
        let StepScratch { draws, hyp, .. } = scratch;
        self.hypotheses_into(region, removed, hyp);
        let mut cache = DrawCache::new(stream, draws);
        hyp.iter()
            .filter(|&&s| {
                matches!(
                    self.simulate_anchor(net, region, tolerance, &mut cache, s),
                    Some((_, cand)) if cand == removed
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystream::Key256;
    use roadnet::grid_city;

    fn stream(seed: u64, step: u32) -> DrawStream {
        DrawStream::new(Key256::from_seed(seed), &step.to_le_bytes())
    }

    /// Drives `engine` forward `steps` times and then backward, asserting
    /// exact chain recovery. Returns `None` if a collision aborted the
    /// forward walk (callers assert collisions are rare).
    fn roundtrip(
        engine: &dyn ReversibleEngine,
        net: &RoadNetwork,
        seed_segment: SegmentId,
        steps: usize,
        key_seed: u64,
        tolerance: SpatialTolerance,
    ) -> Option<Vec<SegmentId>> {
        let mut scratch = StepScratch::default();
        let mut region = RegionState::from_segments(net, [seed_segment]);
        let mut last = seed_segment;
        let mut chain = Vec::new();
        let mut hints = Vec::new();
        let mut rounds = Vec::new();
        for t in 0..steps {
            let mut s = stream(key_seed, t as u32);
            // Local expansion can dead-end and tolerance can void a walk
            // out; callers assert such walks are rare and retry under a
            // fresh key at the request level.
            let acc =
                match engine.forward_step(net, &region, last, &mut s, &tolerance, &mut scratch) {
                    Ok(a) => a,
                    Err(_) => return None,
                };
            region.insert(net, acc.segment);
            if let Some(h) = acc.hint {
                hints.push(h);
            }
            rounds.push(acc.draws);
            chain.push(acc.segment);
            last = acc.segment;
        }
        // Backward: remove in reverse, recovering each predecessor.
        let mut hint_stack = HintStack::new(hints);
        let mut current = *chain.last().expect("at least one step");
        for t in (0..steps).rev() {
            region.remove(net, current);
            let mut s = stream(key_seed, t as u32);
            let prev = engine
                .backward_step(
                    net,
                    &region,
                    current,
                    &mut s,
                    &tolerance,
                    rounds[t],
                    &mut hint_stack,
                    &mut scratch,
                )
                .unwrap_or_else(|e| panic!("backward step {t} failed: {e}"));
            let expected = if t == 0 { seed_segment } else { chain[t - 1] };
            assert_eq!(prev, expected, "backward step {t} recovered wrong segment");
            current = prev;
        }
        assert_eq!(region.len(), 1);
        assert!(region.contains(seed_segment));
        Some(chain)
    }

    #[test]
    fn rge_roundtrip_many_keys() {
        let net = grid_city(6, 6, 100.0);
        let engine = RgeEngine::new();
        let mut ok = 0;
        for key_seed in 0..30 {
            if roundtrip(
                &engine,
                &net,
                SegmentId(20),
                12,
                key_seed,
                SpatialTolerance::Unlimited,
            )
            .is_some()
            {
                ok += 1;
            }
        }
        assert_eq!(ok, 30, "forward walks must never collide now");
    }

    #[test]
    fn rge_roundtrip_with_large_cloak_needs_hints() {
        // Grow the region beyond the frontier size so |CloakA| > |CanA|
        // and quotient hints kick in.
        let net = grid_city(5, 5, 100.0);
        let engine = RgeEngine::new();
        let mut ok = 0;
        for key_seed in 0..12 {
            if let Some(chain) = roundtrip(
                &engine,
                &net,
                SegmentId(0),
                30, // 31 of 40 segments: cloak far exceeds the frontier
                key_seed,
                SpatialTolerance::Unlimited,
            ) {
                assert_eq!(chain.len(), 30);
                ok += 1;
            }
        }
        assert_eq!(ok, 12, "forward walks must never collide now");
    }

    #[test]
    fn rple_roundtrip_many_keys() {
        let net = grid_city(6, 6, 100.0);
        let engine = RpleEngine::build(&net, 8);
        let mut ok = 0;
        for key_seed in 0..30 {
            if roundtrip(
                &engine,
                &net,
                SegmentId(20),
                10,
                key_seed,
                SpatialTolerance::Unlimited,
            )
            .is_some()
            {
                ok += 1;
            }
        }
        assert!(ok >= 25, "too many dead-ended walks: {ok}/30");
    }

    #[test]
    fn rple_roundtrip_small_t() {
        let net = grid_city(6, 6, 100.0);
        let engine = RpleEngine::build(&net, 4);
        let mut ok = 0;
        for key_seed in 0..12 {
            if roundtrip(
                &engine,
                &net,
                SegmentId(12),
                6,
                key_seed,
                SpatialTolerance::Unlimited,
            )
            .is_some()
            {
                ok += 1;
            }
        }
        assert!(ok >= 8, "too many dead-ended walks: {ok}/12");
    }

    #[test]
    fn roundtrip_under_tolerance_pressure() {
        // A tolerance close to the region size forces voided rounds; the
        // hypothesis test must still keep the walk reversible whenever the
        // forward walk completes.
        let net = grid_city(6, 6, 100.0);
        let tolerance = SpatialTolerance::TotalLength(900.0); // 9 segments max
        let rge = RgeEngine::new();
        let rple = RpleEngine::build(&net, 8);
        let mut ok = 0;
        for key_seed in 100..130 {
            if roundtrip(&rge, &net, SegmentId(20), 7, key_seed, tolerance).is_some() {
                ok += 1;
            }
            if roundtrip(&rple, &net, SegmentId(20), 7, key_seed, tolerance).is_some() {
                ok += 1;
            }
        }
        assert!(
            ok >= 45,
            "too many dead-ended walks under tolerance: {ok}/60"
        );
    }

    #[test]
    fn forward_fails_when_tolerance_blocks_everything() {
        let net = grid_city(4, 4, 100.0);
        let tolerance = SpatialTolerance::TotalLength(100.0); // no room to grow
        let region = RegionState::from_segments(&net, [SegmentId(0)]);
        let mut scratch = StepScratch::default();
        let mut s = stream(1, 0);
        let rge = RgeEngine::new();
        assert_eq!(
            rge.forward_step(
                &net,
                &region,
                SegmentId(0),
                &mut s,
                &tolerance,
                &mut scratch
            ),
            Err(StepFailure::RedrawBudgetExhausted)
        );
        let rple = RpleEngine::build(&net, 8);
        let mut s = stream(1, 0);
        assert_eq!(
            rple.forward_step(
                &net,
                &region,
                SegmentId(0),
                &mut s,
                &tolerance,
                &mut scratch
            ),
            Err(StepFailure::NoCandidates)
        );
    }

    #[test]
    fn forward_fails_with_empty_frontier() {
        let net = grid_city(2, 2, 100.0);
        let all = RegionState::from_segments(&net, net.segment_ids());
        let mut s = stream(1, 0);
        assert_eq!(
            RgeEngine::new().forward_step(
                &net,
                &all,
                SegmentId(0),
                &mut s,
                &SpatialTolerance::Unlimited,
                &mut StepScratch::default(),
            ),
            Err(StepFailure::NoCandidates)
        );
    }

    #[test]
    fn backward_with_wrong_key_does_not_recover_chain() {
        let net = grid_city(6, 6, 100.0);
        let engine = RgeEngine::new();
        let tolerance = SpatialTolerance::Unlimited;
        let mut scratch = StepScratch::default();
        // Forward with key 7.
        let mut region = RegionState::from_segments(&net, [SegmentId(20)]);
        let mut last = SegmentId(20);
        let mut chain = vec![];
        for t in 0..8 {
            let mut s = stream(7, t);
            let acc = engine
                .forward_step(&net, &region, last, &mut s, &tolerance, &mut scratch)
                .unwrap();
            region.insert(&net, acc.segment);
            chain.push(acc.segment);
            last = acc.segment;
        }
        // Backward with key 8: walk completes or fails, but must diverge.
        let mut hint_stack = HintStack::default();
        let mut current = *chain.last().unwrap();
        let mut recovered = vec![];
        for t in (0..8).rev() {
            region.remove(&net, current);
            let mut s = stream(8, t as u32);
            match engine.backward_step(
                &net,
                &region,
                current,
                &mut s,
                &tolerance,
                1,
                &mut hint_stack,
                &mut scratch,
            ) {
                Ok(prev) => {
                    recovered.push(prev);
                    current = prev;
                }
                Err(_) => break,
            }
        }
        let expected: Vec<SegmentId> = chain[..7]
            .iter()
            .rev()
            .copied()
            .chain([SegmentId(20)])
            .collect();
        assert_ne!(recovered, expected, "wrong key must not reverse the chain");
    }

    #[test]
    fn rge_same_round_selection_is_injective_across_rows() {
        // Distinct rows of the same band map the same draw to distinct
        // columns — the structural reason same-round collisions cannot
        // happen (paper: "no repeated transition value in each row and
        // column").
        let net = grid_city(5, 5, 100.0);
        let region = RegionState::from_segments(
            &net,
            [SegmentId(0), SegmentId(1), SegmentId(2), SegmentId(9)],
        );
        let cols = crate::frontier::candidates(&net, &region);
        let table = crate::table::TransitionTable::from_sorted(region.sorted_by_length(&net), cols);
        for pick in 0..table.col_count() {
            let mut seen = std::collections::HashSet::new();
            for i in 0..table.row_count().min(table.col_count()) {
                assert!(seen.insert(table.forward_col(i, pick)));
            }
        }
    }

    #[test]
    fn hint_stack_pops_in_reverse() {
        let mut hs = HintStack::new(vec![1, 2, 3]);
        assert_eq!(hs.len(), 3);
        assert!(!hs.is_empty());
        assert_eq!(hs.pop(), Some(3));
        assert_eq!(hs.pop(), Some(2));
        assert_eq!(hs.pop(), Some(1));
        assert_eq!(hs.pop(), None);
        assert!(hs.is_empty());
    }

    #[test]
    fn engines_report_identity() {
        assert_eq!(RgeEngine::new().name(), "RGE");
        assert_eq!(RgeEngine::new().algorithm_id(), 1);
        let net = grid_city(2, 2, 10.0);
        let rple = RpleEngine::build(&net, 4);
        assert_eq!(rple.name(), "RPLE");
        assert_eq!(rple.algorithm_id(), 2);
        assert_eq!(rple.tables().t_len(), 4);
    }
}
