//! RPLE pre-assignment — Algorithm 1 of the paper.
//!
//! Before any cloaking request, every segment `s` gets a *forward
//! transition list* `FT[s]` and a *backward transition list* `BT[s]`, both
//! of length `T`. For each neighbor `sp` of `s`, the first position `j`
//! that is free in both `FT[s]` and `BT[sp]` is claimed:
//! `FT[s][j] = sp` and `BT[sp][j] = s`. This yields the global
//! collision-free duality
//!
//! > `FT[s][j] = sp  ⟺  BT[sp][j] = s`
//!
//! so a backward lookup is a single table cell. The trade-off the paper
//! describes — "RPLE has smaller anonymization runtime but requires larger
//! memory space to store the collision-free links" — is exactly this
//! structure: `2 · E · T` cells resident for the whole map.

use roadnet::{RoadNetwork, SegmentId};

/// The pre-assigned forward/backward transition lists for a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreassignedTables {
    t_len: usize,
    /// `ft[s][j]`: the neighbor reached from `s` via slot `j`.
    ft: Vec<Vec<Option<SegmentId>>>,
    /// `bt[sp][j]`: the predecessor that reaches `sp` via slot `j`.
    bt: Vec<Vec<Option<SegmentId>>>,
    /// Neighbor links that could not be placed (no common free slot).
    dropped_links: usize,
}

impl PreassignedTables {
    /// Runs Algorithm 1 over the network with transition lists of length
    /// `t_len`.
    ///
    /// Larger `t_len` places more neighbor links (fewer dropped) at the
    /// cost of memory — experiment B4 sweeps this.
    ///
    /// # Panics
    ///
    /// Panics if `t_len == 0`.
    pub fn build(net: &RoadNetwork, t_len: usize) -> Self {
        assert!(t_len > 0, "transition list length must be positive");
        let e = net.segment_count();
        let mut ft: Vec<Vec<Option<SegmentId>>> = vec![vec![None; t_len]; e];
        let mut bt: Vec<Vec<Option<SegmentId>>> = vec![vec![None; t_len]; e];
        let mut dropped = 0usize;
        // "for each segment s in G" — deterministic id order.
        for s in net.segment_ids() {
            // NL: the neighboring list of s (deterministic order).
            let nl = net.neighbor_segments(s);
            for sp in nl {
                // emp = empFT ∩ empBT; selPosition = emp[0].
                let mut placed = false;
                for j in 0..t_len {
                    if ft[s.index()][j].is_none() && bt[sp.index()][j].is_none() {
                        ft[s.index()][j] = Some(sp);
                        bt[sp.index()][j] = Some(s);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    dropped += 1;
                }
            }
        }
        PreassignedTables {
            t_len,
            ft,
            bt,
            dropped_links: dropped,
        }
    }

    /// The transition-list length `T`.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// The forward list of `s`.
    pub fn forward_list(&self, s: SegmentId) -> &[Option<SegmentId>] {
        &self.ft[s.index()]
    }

    /// The backward list of `s`.
    pub fn backward_list(&self, s: SegmentId) -> &[Option<SegmentId>] {
        &self.bt[s.index()]
    }

    /// Forward slot lookup: `FT[s][slot]`.
    pub fn forward(&self, s: SegmentId, slot: usize) -> Option<SegmentId> {
        self.ft[s.index()][slot % self.t_len]
    }

    /// Backward slot lookup: `BT[s][slot]`.
    pub fn backward(&self, s: SegmentId, slot: usize) -> Option<SegmentId> {
        self.bt[s.index()][slot % self.t_len]
    }

    /// Neighbor links that could not be placed because no slot was free in
    /// both lists. These transitions are simply unavailable to RPLE.
    pub fn dropped_links(&self) -> usize {
        self.dropped_links
    }

    /// Number of placed (usable) links.
    pub fn placed_links(&self) -> usize {
        self.ft
            .iter()
            .map(|l| l.iter().filter(|c| c.is_some()).count())
            .sum()
    }

    /// Approximate resident memory of the tables in bytes (the paper's
    /// RPLE memory cost; experiment B4).
    pub fn memory_bytes(&self) -> usize {
        // Two tables of E × T cells of Option<SegmentId>.
        2 * self.ft.len() * self.t_len * std::mem::size_of::<Option<SegmentId>>()
    }

    /// Verifies the duality invariant `FT[s][j] = sp ⟺ BT[sp][j] = s`.
    /// Returns the number of violations (0 for a correct build).
    pub fn duality_violations(&self) -> usize {
        let mut bad = 0;
        for (si, list) in self.ft.iter().enumerate() {
            for (j, cell) in list.iter().enumerate() {
                if let Some(sp) = cell {
                    if self.bt[sp.index()][j] != Some(SegmentId(si as u32)) {
                        bad += 1;
                    }
                }
            }
        }
        for (si, list) in self.bt.iter().enumerate() {
            for (j, cell) in list.iter().enumerate() {
                if let Some(s) = cell {
                    if self.ft[s.index()][j] != Some(SegmentId(si as u32)) {
                        bad += 1;
                    }
                }
            }
        }
        bad
    }

    /// Renders one segment's lists like paper Figure 3.
    pub fn render_lists(&self, s: SegmentId) -> String {
        let fmt_list = |list: &[Option<SegmentId>]| {
            list.iter()
                .map(|c| match c {
                    Some(seg) => format!("{seg:>5}"),
                    None => format!("{:>5}", "-"),
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!(
            "FT[{s}] = [{}]\nBT[{s}] = [{}]\n",
            fmt_list(&self.ft[s.index()]),
            fmt_list(&self.bt[s.index()])
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{atlanta_like, grid_city};

    #[test]
    fn duality_holds_on_grid() {
        let net = grid_city(5, 5, 100.0);
        for t in [2, 4, 6, 8] {
            let tables = PreassignedTables::build(&net, t);
            assert_eq!(tables.duality_violations(), 0, "T={t}");
        }
    }

    #[test]
    fn large_t_places_all_links() {
        let net = grid_city(5, 5, 100.0);
        // Max neighbor count on this grid is 6; a generous T places all.
        let tables = PreassignedTables::build(&net, 16);
        assert_eq!(tables.dropped_links(), 0);
        // Every neighbor pair appears in FT.
        for s in net.segment_ids() {
            let placed: Vec<SegmentId> = tables.forward_list(s).iter().flatten().copied().collect();
            for n in net.neighbor_segments(s) {
                assert!(placed.contains(&n), "missing link {s}->{n}");
            }
        }
    }

    #[test]
    fn small_t_drops_links() {
        let net = grid_city(5, 5, 100.0);
        let tables = PreassignedTables::build(&net, 2);
        assert!(tables.dropped_links() > 0);
        assert_eq!(tables.duality_violations(), 0);
    }

    #[test]
    fn forward_backward_cells_agree() {
        let net = grid_city(4, 4, 100.0);
        let tables = PreassignedTables::build(&net, 8);
        for s in net.segment_ids() {
            for j in 0..8 {
                if let Some(sp) = tables.forward(s, j) {
                    assert_eq!(tables.backward(sp, j), Some(s));
                }
            }
        }
    }

    #[test]
    fn forward_targets_are_neighbors() {
        let net = grid_city(4, 4, 100.0);
        let tables = PreassignedTables::build(&net, 8);
        for s in net.segment_ids() {
            for cell in tables.forward_list(s).iter().flatten() {
                assert!(net.segments_adjacent(s, *cell));
            }
        }
    }

    #[test]
    fn memory_grows_linearly_with_t() {
        let net = grid_city(4, 4, 100.0);
        let m4 = PreassignedTables::build(&net, 4).memory_bytes();
        let m8 = PreassignedTables::build(&net, 8).memory_bytes();
        assert_eq!(m8, 2 * m4);
    }

    #[test]
    fn placed_plus_dropped_covers_all_directed_links() {
        let net = grid_city(5, 5, 100.0);
        let total_links: usize = net
            .segment_ids()
            .map(|s| net.neighbor_segments(s).len())
            .sum();
        for t in [2, 4, 12] {
            let tables = PreassignedTables::build(&net, t);
            assert_eq!(
                tables.placed_links() + tables.dropped_links(),
                total_links,
                "T={t}"
            );
        }
    }

    #[test]
    fn render_lists_shows_slots() {
        let net = grid_city(3, 3, 100.0);
        let tables = PreassignedTables::build(&net, 6);
        let s = tables.render_lists(SegmentId(0));
        assert!(s.contains("FT[s0]"));
        assert!(s.contains("BT[s0]"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_t_panics() {
        let net = grid_city(2, 2, 10.0);
        let _ = PreassignedTables::build(&net, 0);
    }

    #[test]
    #[ignore = "slow: full Atlanta-scale pre-assignment (run with --ignored)"]
    fn atlanta_scale_preassignment() {
        let net = atlanta_like(5);
        let tables = PreassignedTables::build(&net, 12);
        assert_eq!(tables.duality_violations(), 0);
        assert!(tables.memory_bytes() > 1_000_000);
    }
}
