//! The evolving cloaking region during (de)anonymization.

use roadnet::{BoundingBox, RoadNetwork, SegmentId};

/// A mutable cloaking region: a set of segments with cached totals.
///
/// Both directions of the protocol walk through *identical* region states
/// (forward step `t` starts from the same state backward step `t` ends
/// at), so all derived quantities — sorted orders, frontier, totals — are
/// pure functions of the member set.
#[derive(Debug, Clone)]
pub struct RegionState {
    members: Vec<bool>,
    count: usize,
    total_length: f64,
    bbox: BoundingBox,
}

impl Default for RegionState {
    /// An empty region over no network; size it with
    /// [`reset_for`](RegionState::reset_for) before use (scratch reuse).
    fn default() -> Self {
        RegionState {
            members: Vec::new(),
            count: 0,
            total_length: 0.0,
            bbox: BoundingBox::empty(),
        }
    }
}

impl RegionState {
    /// An empty region over a network with `segment_count` segments.
    pub fn new(net: &RoadNetwork) -> Self {
        let mut r = Self::default();
        r.reset_for(net);
        r
    }

    /// Empties the region and (re)sizes it for `net`, reusing the
    /// membership buffer — the scratch-pool path that avoids the
    /// per-request `vec![false; n]` of [`new`](RegionState::new).
    pub fn reset_for(&mut self, net: &RoadNetwork) {
        self.members.clear();
        self.members.resize(net.segment_count(), false);
        self.count = 0;
        self.total_length = 0.0;
        self.bbox = BoundingBox::empty();
    }

    /// A region seeded with the given segments.
    ///
    /// # Panics
    ///
    /// Panics if a segment id is out of range for the network.
    pub fn from_segments<I: IntoIterator<Item = SegmentId>>(net: &RoadNetwork, ids: I) -> Self {
        let mut r = Self::new(net);
        for s in ids {
            r.insert(net, s);
        }
        r
    }

    /// Whether `s` is in the region.
    pub fn contains(&self, s: SegmentId) -> bool {
        self.members.get(s.index()).copied().unwrap_or(false)
    }

    /// Number of segments in the region (`δl` check).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total road length of the region in meters.
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// Bounding box of the region.
    pub fn bounding_box(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Adds a segment. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn insert(&mut self, net: &RoadNetwork, s: SegmentId) -> bool {
        assert!(
            s.index() < self.members.len(),
            "segment {s} out of range for this network"
        );
        if self.members[s.index()] {
            return false;
        }
        self.members[s.index()] = true;
        self.count += 1;
        let seg = net.segment(s);
        self.total_length += seg.length();
        self.bbox.expand(net.junction(seg.a()).position());
        self.bbox.expand(net.junction(seg.b()).position());
        true
    }

    /// Removes a segment. Returns whether it was present.
    ///
    /// The bounding box is recomputed from the remaining members (boxes do
    /// not shrink incrementally).
    pub fn remove(&mut self, net: &RoadNetwork, s: SegmentId) -> bool {
        if s.index() >= self.members.len() || !self.members[s.index()] {
            return false;
        }
        self.members[s.index()] = false;
        self.count -= 1;
        self.total_length -= net.segment(s).length();
        if self.total_length < 0.0 {
            self.total_length = 0.0;
        }
        self.bbox = net.segments_bounding_box(self.iter_ids());
        true
    }

    /// Member ids in ascending id order (the public, chain-order-free view
    /// that goes into the payload).
    pub fn iter_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| SegmentId(i as u32))
    }

    /// Member ids collected in ascending id order.
    pub fn to_sorted_ids(&self) -> Vec<SegmentId> {
        self.iter_ids().collect()
    }

    /// Members sorted by `(length, id)` — the row order of the RGE
    /// transition table ("in the order of segment length so that the
    /// shortest segments are mapped to the 1st row").
    pub fn sorted_by_length(&self, net: &RoadNetwork) -> Vec<SegmentId> {
        let mut v = Vec::new();
        self.sorted_by_length_into(net, &mut v);
        v
    }

    /// Like [`sorted_by_length`](RegionState::sorted_by_length), writing
    /// into a caller-owned buffer (cleared first) — the zero-allocation
    /// path engine steps use.
    pub fn sorted_by_length_into(&self, net: &RoadNetwork, out: &mut Vec<SegmentId>) {
        out.clear();
        out.extend(self.iter_ids());
        out.sort_by(|&a, &b| {
            net.segment(a)
                .length()
                .total_cmp(&net.segment(b).length())
                .then(a.cmp(&b))
        });
    }

    /// Total users currently in the region (`δk` check).
    pub fn users(&self, snapshot: &mobisim::OccupancySnapshot) -> u64 {
        snapshot.users_in(self.iter_ids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    #[test]
    fn insert_remove_roundtrip() {
        let net = grid_city(3, 3, 100.0);
        let mut r = RegionState::new(&net);
        assert!(r.is_empty());
        assert!(r.insert(&net, SegmentId(0)));
        assert!(!r.insert(&net, SegmentId(0)), "double insert is a no-op");
        assert!(r.insert(&net, SegmentId(1)));
        assert_eq!(r.len(), 2);
        assert!((r.total_length() - 200.0).abs() < 1e-9);
        assert!(r.remove(&net, SegmentId(0)));
        assert!(!r.remove(&net, SegmentId(0)), "double remove is a no-op");
        assert_eq!(r.len(), 1);
        assert!((r.total_length() - 100.0).abs() < 1e-9);
        assert!(!r.contains(SegmentId(0)));
        assert!(r.contains(SegmentId(1)));
    }

    #[test]
    fn bbox_shrinks_after_remove() {
        let net = grid_city(3, 3, 100.0);
        let mut r = RegionState::new(&net);
        r.insert(&net, SegmentId(0));
        let small = *r.bounding_box();
        let far = net.segment_ids().last().unwrap();
        r.insert(&net, far);
        assert!(r.bounding_box().diagonal() > small.diagonal());
        r.remove(&net, far);
        assert_eq!(r.bounding_box().diagonal(), small.diagonal());
    }

    #[test]
    fn sorted_orders() {
        let net = grid_city(2, 4, 100.0);
        let mut r = RegionState::new(&net);
        for s in [SegmentId(3), SegmentId(0), SegmentId(5)] {
            r.insert(&net, s);
        }
        assert_eq!(
            r.to_sorted_ids(),
            vec![SegmentId(0), SegmentId(3), SegmentId(5)]
        );
        // Equal lengths: ties broken by id => same order here.
        assert_eq!(
            r.sorted_by_length(&net),
            vec![SegmentId(0), SegmentId(3), SegmentId(5)]
        );
    }

    #[test]
    fn sorted_by_length_orders_short_first() {
        use roadnet::{builder::RoadNetworkBuilder, Point};
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(50.0, 0.0));
        let j2 = b.add_junction(Point::new(250.0, 0.0));
        let j3 = b.add_junction(Point::new(260.0, 0.0));
        let s_long = b.add_segment(j1, j2).unwrap(); // 200 m
        let s_mid = b.add_segment(j0, j1).unwrap(); // 50 m
        let s_short = b.add_segment(j2, j3).unwrap(); // 10 m
        let net = b.build().unwrap();
        let r = RegionState::from_segments(&net, [s_long, s_mid, s_short]);
        assert_eq!(r.sorted_by_length(&net), vec![s_short, s_mid, s_long]);
    }

    #[test]
    fn users_from_snapshot() {
        let net = grid_city(3, 3, 100.0);
        let mut counts = vec![0u32; net.segment_count()];
        counts[0] = 4;
        counts[2] = 1;
        let snap = OccupancySnapshot::from_counts(counts);
        let r = RegionState::from_segments(&net, [SegmentId(0), SegmentId(1)]);
        assert_eq!(r.users(&snap), 4);
        let r2 = RegionState::from_segments(&net, [SegmentId(0), SegmentId(2)]);
        assert_eq!(r2.users(&snap), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let net = grid_city(2, 2, 10.0);
        let mut r = RegionState::new(&net);
        r.insert(&net, SegmentId(999));
    }

    #[test]
    fn remove_out_of_range_is_false() {
        let net = grid_city(2, 2, 10.0);
        let mut r = RegionState::new(&net);
        assert!(!r.remove(&net, SegmentId(999)));
    }
}
