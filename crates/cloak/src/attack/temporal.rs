//! Longitudinal adversarial analysis: what a keyless observer of the
//! *whole receipt stream* can infer over time.
//!
//! The single-cloak analysis in [`crate::attack`] scores one region in
//! isolation. A continuously running system leaks a richer signal: the
//! same owner is re-anonymized tick after tick, and an adversary who
//! subscribes to that receipt stream can correlate consecutive cloaks.
//! [`TemporalAdversary`] mounts the standard correlation attacks from the
//! location-privacy literature against a stream of observed regions:
//!
//! * **peel** ([`AdversaryMode::Peel`]) — single-cloak structure plus
//!   naive temporal intersection: the candidate set is the observed
//!   region intersected with the previous tick's candidates, on the
//!   assumption the owner moved little. Keyed cloaks make this attack
//!   *confidently wrong*: consecutive regions are freshly keyed, so the
//!   intersection often drops the true segment (tracked as
//!   [`AttackObservation::true_in_support`]).
//! * **correlate** ([`AdversaryMode::Correlate`]) — snapshot
//!   correlation: candidates are weighted by the public occupancy of the
//!   issuing snapshot (the owner is on a segment, so that segment holds
//!   at least one user), and — when the observed scheme is *replayable*
//!   (see [`ReplayProbe`]) — pruned by re-simulating the perturbation
//!   from every candidate seed.
//! * **move** ([`AdversaryMode::Move`]) — movement model: CSR-adjacency
//!   reachability bounds where the owner could have driven between
//!   ticks; candidates outside the `h`-hop reach of the previous
//!   candidate set are pruned. With a conservative speed bound this
//!   attack is *sound* (the true segment always survives).
//! * **all** ([`AdversaryMode::All`]) — the movement prune, the
//!   occupancy weighting, and the replay prune combined: the strongest
//!   *fixed-strategy* keyless adversary this module models.
//! * **adaptive** ([`AdversaryMode::Adaptive`]) — the Bayesian
//!   trajectory particle filter of [`crate::attack::adaptive`]: same
//!   movement/occupancy/replay evidence, but compounded across the whole
//!   stream as a posterior over trajectories. `observe` delegates to
//!   [`crate::attack::adaptive::AdaptiveTracker`] wholesale.
//!
//! Each observation rolls up into [`AttackObservation`] (posterior
//! entropy, anonymity-set size, guess correctness) and the running
//! [`AttackSummary`]. The headline comparison: against RGE/RPLE streams
//! the sound attacks keep the posterior near-uniform over ~k segments
//! (entropy stays around `log2 k`), while a keyless deterministic
//! baseline (NRE re-grown from public per-owner randomness — the
//! [`ReplayProbe`] control) collapses to near-zero entropy, because
//! "complete knowledge about the location perturbation algorithm"
//! includes the ability to re-run it.
//!
//! This module is an *evaluation harness*, but since PR 5 its inner
//! loops lean on the network's precomputed
//! [`roadnet::GraphIndex`]: the movement model's per-tick
//! reachability question is answered by OR-ing word-packed
//! [`roadnet::ReachIndex`] masks and testing region bits instead of
//! re-running a breadth-first expansion per owner
//! ([`ReachScratch`] survives as the reference implementation and the
//! fallback for pathological hop budgets), and a pipeline observing
//! many owners against one snapshot calls
//! [`TemporalAdversary::begin_tick`] — or the owner-batched
//! [`TemporalAdversary::begin_tick_population`], which additionally ORs
//! the whole population's movement masks into one row-major bitset
//! matrix — so the occupancy weighting and reachability pruning are
//! computed once per tick rather than once per owner. All shortcuts
//! are bit-exact: every attack metric is identical to the unindexed
//! per-owner path (unit-tested below and property-tested in
//! `crates/cloak/tests/batch_prop.rs`).
//!
//! # Example
//!
//! ```
//! use cloak::attack::temporal::{
//!     AdversaryConfig, AdversaryMode, Observation, TemporalAdversary,
//! };
//! use cloak::{LevelRequirement, PrivacyProfile, RgeEngine};
//! use keystream::{Key256, KeyManager};
//! use mobisim::OccupancySnapshot;
//! use roadnet::{grid_city, SegmentId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = grid_city(8, 8, 100.0);
//! let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
//! let profile = PrivacyProfile::builder()
//!     .level(LevelRequirement::with_k(8))
//!     .build()?;
//! let engine = RgeEngine::new();
//! let mut adversary = TemporalAdversary::new(&net, AdversaryConfig::default());
//!
//! // The adversary watches three consecutive cloaks of the same owner.
//! for tick in 1..=3u64 {
//!     let keys: Vec<Key256> = KeyManager::from_seed(1, tick).iter().map(|(_, k)| k).collect();
//!     let out = cloak::anonymize(&net, &snapshot, SegmentId(40), &profile, &keys, tick, &engine)?;
//!     let obs = adversary.observe(
//!         &net,
//!         "alice",
//!         Observation { tick, region: &out.payload.segments, snapshot: &snapshot, snapshot_fresh: true },
//!         None,
//!         Some(SegmentId(40)),
//!     );
//!     // The keyed stream keeps the posterior wide: the adversary's
//!     // anonymity set stays at least k segments.
//!     assert!(obs.support >= 8, "support {}", obs.support);
//!     assert_eq!(obs.true_in_support, Some(true));
//! }
//! # Ok(())
//! # }
//! ```

use crate::attack::{peel_candidates_into, PeelScratch};
use crate::baseline::{replay_expansion_matches, ExpansionScratch};
use crate::profile::LevelRequirement;
use mobisim::OccupancySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{ReachIndex, RoadNetwork, SegmentId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which correlation attacks the adversary mounts per observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdversaryMode {
    /// Single-cloak peel structure + naive intersection of consecutive
    /// regions (unsound against keyed streams, by design).
    Peel,
    /// Occupancy weighting from the issuing snapshots, plus replay
    /// inversion when the scheme is replayable. Memoryless otherwise.
    Correlate,
    /// Movement-model pruning: region ∩ h-hop reachability of the
    /// previous candidate set. Sound under a conservative speed bound.
    Move,
    /// Movement prune + occupancy weighting + replay inversion.
    All,
    /// The Bayesian trajectory particle filter
    /// ([`crate::attack::adaptive::AdaptiveTracker`]): movement-model
    /// transition kernel, occupancy likelihood, replay inversion,
    /// systematic resampling — the strongest *learning* adversary.
    Adaptive,
}

impl AdversaryMode {
    /// Parses the CLI spelling (`peel|correlate|move|all|adaptive`).
    pub fn parse(s: &str) -> Option<AdversaryMode> {
        match s {
            "peel" => Some(AdversaryMode::Peel),
            "correlate" => Some(AdversaryMode::Correlate),
            "move" => Some(AdversaryMode::Move),
            "all" => Some(AdversaryMode::All),
            "adaptive" => Some(AdversaryMode::Adaptive),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryMode::Peel => "peel",
            AdversaryMode::Correlate => "correlate",
            AdversaryMode::Move => "move",
            AdversaryMode::All => "all",
            AdversaryMode::Adaptive => "adaptive",
        }
    }

    /// Every mode, in CLI/tournament order.
    pub const ALL: [AdversaryMode; 5] = [
        AdversaryMode::Peel,
        AdversaryMode::Correlate,
        AdversaryMode::Move,
        AdversaryMode::All,
        AdversaryMode::Adaptive,
    ];

    /// Whether this mode carries candidate state across ticks.
    fn has_memory(self) -> bool {
        !matches!(self, AdversaryMode::Correlate)
    }

    /// Whether this mode uses the movement (reachability) model.
    fn uses_movement(self) -> bool {
        matches!(
            self,
            AdversaryMode::Move | AdversaryMode::All | AdversaryMode::Adaptive
        )
    }

    /// Whether this mode weights candidates by snapshot occupancy and
    /// replays replayable schemes.
    fn uses_snapshot(self) -> bool {
        matches!(
            self,
            AdversaryMode::Correlate | AdversaryMode::All | AdversaryMode::Adaptive
        )
    }
}

/// Configuration of a [`TemporalAdversary`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryConfig {
    /// The attack portfolio.
    pub mode: AdversaryMode,
    /// The adversary's (conservative) bound on car speed in m/s. Drives
    /// the movement model's per-tick hop budget.
    pub max_speed: f64,
    /// Seconds of real time between consecutive observations of the same
    /// owner (the pipeline's tick length).
    pub dt: f64,
    /// Seed for the adversary's own guess sampling (deterministic runs).
    pub seed: u64,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            mode: AdversaryMode::All,
            // The mobisim default speed range tops out at 20 m/s; a
            // sound adversary rounds up.
            max_speed: 22.0,
            dt: 10.0,
            seed: 0xad_5a17,
        }
    }
}

/// One tick's worth of public information about one owner's cloak: what
/// an eavesdropper on the receipt stream actually sees.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// The pipeline tick the receipt was issued at.
    pub tick: u64,
    /// The published cloaking region, sorted by segment id (exactly the
    /// payload's public segment set — chain order is withheld).
    pub region: &'a [SegmentId],
    /// The occupancy snapshot the receipt was issued under. Traffic
    /// density is public context in the paper's threat model.
    pub snapshot: &'a OccupancySnapshot,
    /// Whether the snapshot was recaptured this tick. A stale snapshot
    /// may undercount a segment the owner has since moved onto, so the
    /// occupancy prune softens to a smoothed weighting when this is
    /// false.
    pub snapshot_fresh: bool,
}

/// The adversary's knowledge that a scheme is *replayable*: its
/// perturbation draws from randomness the adversary can reconstruct (no
/// secret key). Given this, the adversary re-runs the algorithm from
/// every candidate seed and keeps the seeds that reproduce the observed
/// region — the paper's "complete knowledge about the location
/// perturbation algorithm" taken to its conclusion.
///
/// The NRE control in the continuous pipeline is exactly this: with no
/// key-distribution infrastructure there is nothing to rotate, so its
/// expansion randomness derives from public per-owner state.
#[derive(Debug, Clone, Copy)]
pub struct ReplayProbe<'a> {
    /// The requirement the keyless scheme grew the region to.
    pub requirement: &'a LevelRequirement,
    /// The (public) per-owner RNG seed the scheme perturbed with.
    pub seed: u64,
}

/// Per-owner/per-tick attack metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackObservation {
    /// The tick this observation was made at.
    pub tick: u64,
    /// Size of the observed cloaking region.
    pub region_size: usize,
    /// Keyless single-step peel candidates of the observed region (the
    /// adversary's search space for undoing one expansion step).
    pub peel_frontier: usize,
    /// The anonymity set after the attack: candidates with nonzero
    /// posterior mass.
    pub support: usize,
    /// Shannon entropy (bits) of the adversary's posterior over the
    /// owner's segment.
    pub entropy_bits: f64,
    /// Entropy of the posterior lifted to *user identities* (every user
    /// on a segment equally likely): `H_seg + Σ p(s)·log2(users(s))`.
    /// The paper's k-anonymity bound lives here — a region covering k
    /// users yields `≈ log2 k` bits however few segments it spans.
    pub user_entropy_bits: f64,
    /// `log2(region_size)` — the no-information reference the paper's
    /// claim promises.
    pub region_entropy_bits: f64,
    /// The adversary's guess, sampled from its posterior.
    pub guess: SegmentId,
    /// Whether the guess hit the true segment (when the harness supplied
    /// ground truth for scoring).
    pub guess_correct: Option<bool>,
    /// Whether the true segment survived in the posterior support (when
    /// ground truth was supplied). Always true for sound attacks;
    /// `false` exposes an unsound attack being confidently wrong.
    pub true_in_support: Option<bool>,
    /// Whether the temporal state had to be reset this tick (empty
    /// intersection — the attack lost the owner).
    pub reset: bool,
    /// Whether the movement prune ran its per-owner BFS fallback this
    /// tick because the packed reachability index was unavailable (hop
    /// budget above the index cache cap, e.g. a degenerate map with a
    /// near-zero shortest segment or a tightened
    /// [`IndexBudget`](roadnet::IndexBudget)). The fallback is
    /// bit-identical but costs a BFS per owner instead of word ops.
    pub movement_fallback: bool,
}

/// Running rollup of [`AttackObservation`]s for one observed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSummary {
    observations: u64,
    sum_entropy: f64,
    min_entropy: f64,
    sum_user_entropy: f64,
    min_user_entropy: f64,
    sum_support: f64,
    sum_region: f64,
    guesses: u64,
    correct: u64,
    truth_checks: u64,
    truth_survived: u64,
    resets: u64,
    movement_fallbacks: u64,
}

impl AttackSummary {
    /// An empty rollup.
    pub fn new() -> Self {
        AttackSummary {
            observations: 0,
            sum_entropy: 0.0,
            min_entropy: f64::INFINITY,
            sum_user_entropy: 0.0,
            min_user_entropy: f64::INFINITY,
            sum_support: 0.0,
            sum_region: 0.0,
            guesses: 0,
            correct: 0,
            truth_checks: 0,
            truth_survived: 0,
            resets: 0,
            movement_fallbacks: 0,
        }
    }

    /// Folds one observation in.
    pub fn record(&mut self, obs: &AttackObservation) {
        self.observations += 1;
        self.sum_entropy += obs.entropy_bits;
        self.min_entropy = self.min_entropy.min(obs.entropy_bits);
        self.sum_user_entropy += obs.user_entropy_bits;
        self.min_user_entropy = self.min_user_entropy.min(obs.user_entropy_bits);
        self.sum_support += obs.support as f64;
        self.sum_region += obs.region_size as f64;
        // Guess accounting only covers *scored* observations (ground
        // truth supplied), like soundness — unscored ticks must not
        // dilute the success rate.
        if let Some(correct) = obs.guess_correct {
            self.guesses += 1;
            if correct {
                self.correct += 1;
            }
        }
        if let Some(survived) = obs.true_in_support {
            self.truth_checks += 1;
            if survived {
                self.truth_survived += 1;
            }
        }
        if obs.reset {
            self.resets += 1;
        }
        if obs.movement_fallback {
            self.movement_fallbacks += 1;
        }
    }

    /// Merges another rollup in.
    pub fn merge(&mut self, other: &AttackSummary) {
        self.observations += other.observations;
        self.sum_entropy += other.sum_entropy;
        self.min_entropy = self.min_entropy.min(other.min_entropy);
        self.sum_user_entropy += other.sum_user_entropy;
        self.min_user_entropy = self.min_user_entropy.min(other.min_user_entropy);
        self.sum_support += other.sum_support;
        self.sum_region += other.sum_region;
        self.guesses += other.guesses;
        self.correct += other.correct;
        self.truth_checks += other.truth_checks;
        self.truth_survived += other.truth_survived;
        self.resets += other.resets;
        self.movement_fallbacks += other.movement_fallbacks;
    }

    /// Observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Mean posterior entropy in bits.
    pub fn mean_entropy(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.sum_entropy / self.observations as f64
        }
    }

    /// Worst (lowest) posterior entropy seen.
    pub fn min_entropy(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.min_entropy
        }
    }

    /// Mean user-identity entropy in bits (the k-anonymity axis: a
    /// region covering k users scores `≈ log2 k` however few segments
    /// it spans).
    pub fn mean_user_entropy(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.sum_user_entropy / self.observations as f64
        }
    }

    /// Worst (lowest) user-identity entropy seen.
    pub fn min_user_entropy(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.min_user_entropy
        }
    }

    /// Mean anonymity-set size after the attack.
    pub fn mean_support(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.sum_support / self.observations as f64
        }
    }

    /// Mean observed region size (the pre-attack anonymity set).
    pub fn mean_region(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.sum_region / self.observations as f64
        }
    }

    /// Fraction of posterior-sampled guesses that hit the true segment,
    /// over the observations where ground truth was supplied.
    pub fn guess_success_rate(&self) -> f64 {
        if self.guesses == 0 {
            0.0
        } else {
            self.correct as f64 / self.guesses as f64
        }
    }

    /// Fraction of scored observations where the true segment stayed in
    /// the posterior support (1.0 for sound attacks).
    pub fn soundness(&self) -> f64 {
        if self.truth_checks == 0 {
            1.0
        } else {
            self.truth_survived as f64 / self.truth_checks as f64
        }
    }

    /// Times the temporal state was reset (the attack lost the owner).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Observations where the movement prune ran its per-owner BFS
    /// fallback instead of the packed reachability index (hop budget
    /// above the index cache cap). Nonzero means the adversary paid a
    /// BFS per owner per tick — consider raising the
    /// [`IndexBudget`](roadnet::IndexBudget) reach cap.
    pub fn movement_fallbacks(&self) -> u64 {
        self.movement_fallbacks
    }
}

impl Default for AttackSummary {
    fn default() -> Self {
        AttackSummary::new()
    }
}

impl std::fmt::Display for AttackSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entropy {:.2} bits mean / {:.2} min (uniform ref {:.2}), user entropy {:.2} bits, \
             anonymity set {:.1}, guess success {:.1}%, soundness {:.0}%",
            self.mean_entropy(),
            self.min_entropy(),
            self.mean_region().max(1.0).log2(),
            self.mean_user_entropy(),
            self.mean_support(),
            self.guess_success_rate() * 100.0,
            self.soundness() * 100.0,
        )?;
        if self.movement_fallbacks > 0 {
            write!(f, ", movement BFS fallbacks {}", self.movement_fallbacks)?;
        }
        Ok(())
    }
}

/// Per-owner posterior carried between ticks.
#[derive(Debug, Clone, Default)]
struct OwnerState {
    /// Sorted candidate segments with nonzero posterior mass.
    support: Vec<SegmentId>,
    warm: bool,
    /// Row of the population mask matrix holding this owner's movement
    /// mask, precomputed by
    /// [`TemporalAdversary::begin_tick_population`]. Consumed (taken) by
    /// the first `observe` of the tick, so a row can never outlive the
    /// support it was computed from.
    mask_row: Option<usize>,
}

/// Stamped scratch for the h-hop reachability expansion (reused across
/// ticks and owners; a fresh generation per expansion).
///
/// This breadth-first expansion is the **reference movement model**:
/// the adversary normally answers the same question with the network's
/// word-packed [`roadnet::ReachIndex`] masks (bit-exact, benched ≥5×
/// faster in `attack_cost`), falling back to this scratch only when the
/// hop budget exceeds what the index caches. Kept public so the
/// equivalence is testable and benchable from outside the crate.
#[derive(Debug, Default)]
pub struct ReachScratch {
    stamp: Vec<u32>,
    generation: u32,
    frontier: Vec<SegmentId>,
    next: Vec<SegmentId>,
}

impl ReachScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks every segment within `hops` adjacency hops of `sources`.
    pub fn expand(&mut self, net: &RoadNetwork, sources: &[SegmentId], hops: usize) {
        self.stamp.resize(net.segment_count(), 0);
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.frontier.clear();
        self.next.clear();
        for &s in sources {
            if let Some(slot) = self.stamp.get_mut(s.index()) {
                if *slot != self.generation {
                    *slot = self.generation;
                    self.frontier.push(s);
                }
            }
        }
        for _ in 0..hops {
            for i in 0..self.frontier.len() {
                let s = self.frontier[i];
                for &n in net.neighbor_segments_csr(s) {
                    let slot = &mut self.stamp[n.index()];
                    if *slot != self.generation {
                        *slot = self.generation;
                        self.next.push(n);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            self.next.clear();
            if self.frontier.is_empty() {
                break;
            }
        }
    }

    /// Whether `s` was marked by the last [`expand`](Self::expand).
    pub fn contains(&self, s: SegmentId) -> bool {
        self.stamp
            .get(s.index())
            .is_some_and(|&g| g == self.generation)
    }
}

/// A keyless adversary subscribed to the per-tick receipt stream of a
/// continuously anonymizing system. See the module docs for the attack
/// portfolio and the [`Observation`]/[`AttackObservation`] contract.
#[derive(Debug)]
pub struct TemporalAdversary {
    cfg: AdversaryConfig,
    /// Conservative hop budget per tick, derived from the speed bound
    /// and the network's shortest segment.
    hops: usize,
    owners: HashMap<String, OwnerState>,
    reach: ReachScratch,
    /// The network's precomputed h-hop reachability masks (shared with
    /// every other adversary over the same network); `None` when the
    /// hop budget exceeds the index's cached-hop budget
    /// ([`roadnet::IndexBudget::reach_hop_cap`]) or the mode never
    /// moves. A `None` here makes `observe` take the per-owner BFS
    /// fallback, counted in [`AttackSummary::movement_fallbacks`].
    reach_index: Option<Arc<ReachIndex>>,
    /// OR-accumulator for the candidate set's packed reach masks.
    reach_union: Vec<u64>,
    /// Row-major matrix of per-owner movement masks, one bitset row per
    /// owner listed in [`begin_tick_population`](Self::begin_tick_population)
    /// — the whole population's reachability computed as one OR-pass.
    mask_matrix: Vec<u64>,
    /// Words per `mask_matrix` row.
    mask_words: usize,
    /// Scratch for the single-pass articulation-point peel frontier.
    peel: PeelScratch,
    peel_out: Vec<SegmentId>,
    /// Pooled replay-inversion buffers (early-exit expansion replays).
    replay_scratch: ExpansionScratch,
    survivors: Vec<bool>,
    /// Candidate/weight buffers reused across observations.
    candidates: Vec<SegmentId>,
    weights: Vec<f64>,
    /// Per-tick occupancy weights (`w[s]` for every segment), filled by
    /// [`begin_tick`](Self::begin_tick) so a pipeline batching many
    /// owners against one snapshot prices the weighting once per tick.
    tick_weights: Vec<f64>,
    /// Weight for segments beyond the tick snapshot's range.
    tick_fallback: f64,
    /// Whether `tick_weights` holds the current tick's snapshot.
    tick_weights_ready: bool,
    /// Counter feeding the deterministic guess sampler.
    draws: u64,
    /// The trajectory particle filter, present iff the mode is
    /// [`AdversaryMode::Adaptive`]; `observe` delegates to it wholesale
    /// (the fixed-portfolio state above stays unused).
    adaptive: Option<crate::attack::adaptive::AdaptiveTracker>,
}

/// The conservative per-tick movement hop budget every adversary in this
/// module shares: `ceil(max_speed·dt / min_segment_length) + 1`, an
/// over-approximation that keeps reachability pruning sound.
pub(crate) fn conservative_hops(net: &RoadNetwork, max_speed: f64, dt: f64) -> usize {
    let min_len = net
        .segments()
        .map(|s| s.length())
        .fold(f64::INFINITY, f64::min);
    if min_len.is_finite() && min_len > 0.0 {
        (max_speed.max(0.0) * dt.max(0.0) / min_len).ceil() as usize + 1
    } else {
        1
    }
}

impl TemporalAdversary {
    /// Builds an adversary for a road network. The movement model's hop
    /// budget is `ceil(max_speed·dt / min_segment_length) + 1` — an
    /// over-approximation that keeps the reachability prune sound.
    /// [`AdversaryMode::Adaptive`] gets a default-configured particle
    /// filter; use [`with_adaptive`](Self::with_adaptive) to tune it.
    pub fn new(net: &RoadNetwork, cfg: AdversaryConfig) -> Self {
        let adaptive = crate::attack::adaptive::AdaptiveConfig {
            seed: cfg.seed ^ 0x0ada_9717,
            ..Default::default()
        };
        Self::with_adaptive(net, cfg, adaptive)
    }

    /// [`new`](Self::new) with explicit particle-filter tuning (only
    /// consulted when the mode is [`AdversaryMode::Adaptive`]).
    pub fn with_adaptive(
        net: &RoadNetwork,
        cfg: AdversaryConfig,
        adaptive_cfg: crate::attack::adaptive::AdaptiveConfig,
    ) -> Self {
        let hops = conservative_hops(net, cfg.max_speed, cfg.dt);
        let adaptive = (cfg.mode == AdversaryMode::Adaptive).then(|| {
            crate::attack::adaptive::AdaptiveTracker::new(net, cfg.max_speed, cfg.dt, adaptive_cfg)
        });
        let reach_index = (cfg.mode.uses_movement() && adaptive.is_none())
            .then(|| net.cached_reach_index(hops))
            .flatten();
        TemporalAdversary {
            cfg,
            hops,
            owners: HashMap::new(),
            reach: ReachScratch::default(),
            reach_index,
            reach_union: Vec::new(),
            mask_matrix: Vec::new(),
            mask_words: 0,
            peel: PeelScratch::new(),
            peel_out: Vec::new(),
            replay_scratch: ExpansionScratch::new(),
            survivors: Vec::new(),
            candidates: Vec::new(),
            weights: Vec::new(),
            tick_weights: Vec::new(),
            tick_fallback: 0.0,
            tick_weights_ready: false,
            draws: 0,
            adaptive,
        }
    }

    /// Announces the snapshot all of this tick's observations share, so
    /// the occupancy weighting is computed once per tick instead of
    /// once per owner. Purely an amortization: subsequent
    /// [`observe`](Self::observe) calls read the cached per-segment
    /// weights and produce bit-identical metrics; callers that skip
    /// `begin_tick` (single-owner probes, the benches) keep the
    /// per-candidate path. The caller must pass the same snapshot and
    /// freshness flag it will put in the tick's [`Observation`]s.
    pub fn begin_tick(&mut self, snapshot: &OccupancySnapshot, snapshot_fresh: bool) {
        self.tick_fallback = if snapshot_fresh { 0.0 } else { 0.5 };
        self.tick_weights.clear();
        self.tick_weights
            .extend((0..snapshot.segment_count()).map(|i| {
                let users = snapshot.users_on(SegmentId(i as u32)) as f64;
                if snapshot_fresh {
                    users
                } else {
                    users + 0.5
                }
            }));
        self.tick_weights_ready = true;
        // A fresh tick invalidates any population mask rows a previous
        // tick computed but never consumed.
        for state in self.owners.values_mut() {
            state.mask_row = None;
        }
        self.mask_matrix.clear();
    }

    /// [`begin_tick`](Self::begin_tick) plus the whole population's
    /// movement masks: for every listed warm owner, the h-hop
    /// reachability of its candidate set is ORed from the packed
    /// [`ReachIndex`] masks into one row-major bitset matrix, so the
    /// tick's per-owner `observe` calls read a precomputed row instead
    /// of re-running the OR-pass. Combined with the shared occupancy
    /// sweep of `begin_tick`, this prices the tick's matrix/bitset work
    /// once for the population.
    ///
    /// Purely an amortization, like `begin_tick`: each owner's row is
    /// exactly what `observe` would have computed (and is consumed on
    /// first use, so repeated observations fall back to the live path) —
    /// metrics are bit-identical either way. Owners not yet tracked, or
    /// not listed here, simply keep the per-owner path. No-op for modes
    /// without a movement model and on networks where the hop budget
    /// exceeds the packed index cap.
    pub fn begin_tick_population<'a, I>(
        &mut self,
        snapshot: &OccupancySnapshot,
        snapshot_fresh: bool,
        owners: I,
    ) where
        I: IntoIterator<Item = &'a str>,
    {
        self.begin_tick(snapshot, snapshot_fresh);
        if !(self.cfg.mode.has_memory() && self.cfg.mode.uses_movement()) {
            return;
        }
        let Some(index) = self.reach_index.clone() else {
            return;
        };
        for owner in owners {
            let Some(state) = self.owners.get_mut(owner) else {
                continue;
            };
            if !state.warm {
                continue;
            }
            index.union_into(state.support.iter().copied(), &mut self.reach_union);
            if self.mask_words == 0 {
                self.mask_words = self.reach_union.len();
            }
            let row = self.mask_matrix.len() / self.mask_words.max(1);
            self.mask_matrix.extend_from_slice(&self.reach_union);
            state.mask_row = Some(row);
        }
    }

    /// The adversary's configuration.
    pub fn config(&self) -> &AdversaryConfig {
        &self.cfg
    }

    /// The movement model's per-tick hop budget.
    pub fn movement_hops(&self) -> usize {
        self.hops
    }

    /// Owners currently tracked.
    pub fn tracked_owners(&self) -> usize {
        match &self.adaptive {
            Some(filter) => filter.tracked_owners(),
            None => self.owners.len(),
        }
    }

    /// Particle-filter health, when the mode is
    /// [`AdversaryMode::Adaptive`].
    pub fn adaptive_stats(&self) -> Option<crate::attack::adaptive::AdaptiveStats> {
        self.adaptive.as_ref().map(|f| f.stats())
    }

    /// The underlying particle filter, when the mode is
    /// [`AdversaryMode::Adaptive`].
    pub fn adaptive_tracker(&self) -> Option<&crate::attack::adaptive::AdaptiveTracker> {
        self.adaptive.as_ref()
    }

    /// Drops all per-owner state (the adversary starts cold again) and
    /// invalidates any [`begin_tick`](Self::begin_tick) weight cache.
    pub fn reset(&mut self) {
        self.owners.clear();
        self.tick_weights_ready = false;
        if let Some(filter) = &mut self.adaptive {
            filter.reset();
        }
    }

    /// Processes one observed cloak for `owner` and returns the attack
    /// metrics for this tick.
    ///
    /// `replay` carries the adversary's knowledge that the observed
    /// scheme is replayable (keyless deterministic perturbation);
    /// `truth` is ground truth used *only* to score the attack
    /// ([`AttackObservation::guess_correct`] /
    /// [`AttackObservation::true_in_support`]) — it never feeds the
    /// posterior.
    pub fn observe(
        &mut self,
        net: &RoadNetwork,
        owner: &str,
        obs: Observation<'_>,
        replay: Option<ReplayProbe<'_>>,
        truth: Option<SegmentId>,
    ) -> AttackObservation {
        peel_candidates_into(net, obs.region, &mut self.peel, &mut self.peel_out);
        let peel_frontier = self.peel_out.len();
        // The adaptive mode is a different inference engine entirely:
        // hand the observation (and the precomputed peel frontier) to
        // the particle filter.
        if let Some(filter) = &mut self.adaptive {
            return filter.observe(net, owner, obs, replay, truth, peel_frontier);
        }
        // An empty observed region admits no posterior: report zeros
        // (not NaN) and leave the owner's temporal state untouched. The
        // guess/soundness fields stay unscored — there is nothing to
        // guess over, and scoring would spuriously break a sound
        // attack's `soundness() == 1.0`.
        if obs.region.is_empty() {
            return AttackObservation {
                tick: obs.tick,
                region_size: 0,
                peel_frontier,
                support: 0,
                entropy_bits: 0.0,
                user_entropy_bits: 0.0,
                region_entropy_bits: 0.0,
                guess: SegmentId(0),
                guess_correct: None,
                true_in_support: None,
                reset: true,
                movement_fallback: false,
            };
        }
        let mode = self.cfg.mode;
        let mut state = self.owners.remove(owner).unwrap_or_default();
        let mut reset = false;
        let mut movement_fallback = false;

        // 1. Candidate support: the observed region, pruned by temporal
        //    memory when the mode carries it.
        self.candidates.clear();
        if state.warm && mode.has_memory() {
            if mode.uses_movement() {
                if let Some(index) = &self.reach_index {
                    // Packed path: OR the candidates' precomputed h-hop
                    // masks, then test each region bit — word ops over
                    // the index instead of a per-owner BFS. Identical
                    // set to the scratch expansion (unit-tested). When
                    // `begin_tick_population` already ORed this owner's
                    // row into the mask matrix, consume it instead of
                    // re-running the pass — taking the row ties it to
                    // the support it was computed from.
                    match state.mask_row.take() {
                        Some(row) => {
                            let start = row * self.mask_words;
                            self.reach_union.clear();
                            self.reach_union.extend_from_slice(
                                &self.mask_matrix[start..start + self.mask_words],
                            );
                        }
                        None => {
                            index.union_into(state.support.iter().copied(), &mut self.reach_union)
                        }
                    }
                    let union = &self.reach_union;
                    self.candidates.extend(
                        obs.region
                            .iter()
                            .copied()
                            .filter(|&s| ReachIndex::mask_contains(union, s)),
                    );
                } else {
                    // Uncached hop budget: per-owner BFS fallback —
                    // bit-identical to the packed path but linear in
                    // the support's neighborhood. Flagged so the
                    // summary surfaces the hidden cost.
                    movement_fallback = true;
                    self.reach.expand(net, &state.support, self.hops);
                    self.candidates.extend(
                        obs.region
                            .iter()
                            .copied()
                            .filter(|&s| self.reach.contains(s)),
                    );
                }
            } else {
                // Peel: naive intersection of consecutive regions (both
                // sorted, so a merge walk suffices).
                let mut prev = state.support.iter().copied().peekable();
                for &s in obs.region {
                    while prev.peek().is_some_and(|&p| p < s) {
                        prev.next();
                    }
                    if prev.peek() == Some(&s) {
                        self.candidates.push(s);
                    }
                }
            }
            if self.candidates.is_empty() {
                reset = true;
                self.candidates.extend_from_slice(obs.region);
            }
        } else {
            self.candidates.extend_from_slice(obs.region);
        }

        // 2. Posterior weights.
        self.weights.clear();
        self.weights.resize(self.candidates.len(), 1.0);
        if mode.uses_snapshot() {
            if self.tick_weights_ready {
                // Batched path: the per-segment weights were computed
                // once for the whole tick in `begin_tick`.
                for (w, &c) in self.weights.iter_mut().zip(&self.candidates) {
                    *w = self
                        .tick_weights
                        .get(c.index())
                        .copied()
                        .unwrap_or(self.tick_fallback);
                }
            } else {
                for (w, &c) in self.weights.iter_mut().zip(&self.candidates) {
                    let users = obs.snapshot.users_on(c) as f64;
                    // A fresh snapshot counted the owner on its segment,
                    // so empty segments are impossible; a stale one may
                    // lag the owner's movement, so soften the prune to
                    // smoothing.
                    *w = if obs.snapshot_fresh {
                        users
                    } else {
                        users + 0.5
                    };
                }
            }
            if self.weights.iter().all(|&w| w == 0.0) {
                reset = true;
                self.weights.fill(1.0);
            }
        }

        // 3. Replay inversion: re-simulate the keyless scheme from every
        //    candidate seed; only seeds reproducing the observed region
        //    keep their mass. The pooled matcher replays the exact pick
        //    sequence but abandons a candidate the moment its walk
        //    leaves the observed region — boolean-identical to a full
        //    re-expansion and comparison.
        if let (Some(probe), true) = (replay, mode.uses_snapshot()) {
            self.replay_scratch.set_replay_target(net, obs.region);
            let mut any = false;
            self.survivors.clear();
            for (&c, &w) in self.candidates.iter().zip(&self.weights) {
                // A candidate the occupancy/movement passes already
                // killed cannot regain mass — its replay outcome is
                // unobservable, so skip the re-simulation.
                if w == 0.0 {
                    self.survivors.push(false);
                    continue;
                }
                let mut rng = StdRng::seed_from_u64(probe.seed);
                let hit = replay_expansion_matches(
                    net,
                    obs.snapshot,
                    c,
                    probe.requirement,
                    &mut rng,
                    &mut self.replay_scratch,
                );
                any |= hit;
                self.survivors.push(hit);
            }
            if any {
                for (w, &hit) in self.weights.iter_mut().zip(&self.survivors) {
                    if !hit {
                        *w = 0.0;
                    }
                }
            }
        }

        // 4. Normalize, measure, guess. The user-identity entropy lifts
        //    the segment posterior to the users on each segment (every
        //    user of a segment equally likely): `H_user = H_seg +
        //    Σ p(s)·log2(users(s))` — the axis the paper's k-anonymity
        //    bound lives on.
        let total: f64 = self.weights.iter().sum();
        let mut entropy = 0.0;
        let mut user_entropy = 0.0;
        let mut support = 0usize;
        // `total > 0` is invariant today (empty posteriors reset to
        // uniform above), but divide-by-zero here would surface as NaN
        // entropy in every downstream rollup — keep the guard explicit.
        if total > 0.0 {
            for (&w, &c) in self.weights.iter().zip(&self.candidates) {
                if w > 0.0 {
                    support += 1;
                    let p = w / total;
                    entropy -= p * p.log2();
                    user_entropy += p * (obs.snapshot.users_on(c).max(1) as f64).log2();
                }
            }
        }
        let entropy = entropy.max(0.0);
        let user_entropy = (user_entropy + entropy).max(0.0);
        let guess = self.sample_guess(total);
        let guess_correct = truth.map(|t| guess == t);
        let true_in_support = truth.map(|t| {
            self.candidates
                .iter()
                .zip(&self.weights)
                .any(|(&c, &w)| c == t && w > 0.0)
        });

        // 5. Persist the posterior support for the next tick.
        state.support.clear();
        state.support.extend(
            self.candidates
                .iter()
                .zip(&self.weights)
                .filter(|&(_, &w)| w > 0.0)
                .map(|(&c, _)| c),
        );
        state.support.sort_unstable();
        state.warm = true;
        self.owners.insert(owner.to_string(), state);

        AttackObservation {
            tick: obs.tick,
            region_size: obs.region.len(),
            peel_frontier,
            support,
            entropy_bits: entropy,
            user_entropy_bits: user_entropy,
            region_entropy_bits: (obs.region.len().max(1) as f64).log2(),
            guess,
            guess_correct,
            true_in_support,
            reset,
            movement_fallback,
        }
    }

    /// Samples a guess from the current posterior (deterministic given
    /// the adversary seed and observation order).
    fn sample_guess(&mut self, total: f64) -> SegmentId {
        self.draws += 1;
        let word = splitmix64(self.cfg.seed ^ self.draws.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut x = (word >> 11) as f64 / (1u64 << 53) as f64 * total;
        for (&c, &w) in self.candidates.iter().zip(&self.weights) {
            if w > 0.0 {
                if x < w {
                    return c;
                }
                x -= w;
            }
        }
        // Numeric fallback: the last positive-mass candidate.
        self.candidates
            .iter()
            .zip(&self.weights)
            .rev()
            .find(|&(_, &w)| w > 0.0)
            .map(|(&c, _)| c)
            .unwrap_or(SegmentId(0))
    }
}

/// SplitMix64 finalizer for the guess sampler (shared with the adaptive
/// tracker's proposal/resampling draws).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::random_expansion;
    use crate::engine::RgeEngine;
    use crate::profile::{LevelRequirement, PrivacyProfile};
    use keystream::{Key256, KeyManager};
    use roadnet::grid_city;

    fn keys_for(profile: &PrivacyProfile, seed: u64) -> Vec<Key256> {
        KeyManager::from_seed(profile.level_count(), seed)
            .iter()
            .map(|(_, k)| k)
            .collect()
    }

    /// A keyed stream: fresh keys per tick, owner wanders one segment.
    fn keyed_stream(
        net: &RoadNetwork,
        snapshot: &OccupancySnapshot,
        profile: &PrivacyProfile,
        path: &[SegmentId],
    ) -> Vec<(u64, Vec<SegmentId>, SegmentId)> {
        let engine = RgeEngine::new();
        path.iter()
            .enumerate()
            .map(|(i, &seg)| {
                let keys = keys_for(profile, 1000 + i as u64);
                let out = crate::multilevel::anonymize(
                    net, snapshot, seg, profile, &keys, i as u64, &engine,
                )
                .expect("grid cloaks succeed");
                (i as u64 + 1, out.payload.segments, seg)
            })
            .collect()
    }

    use roadnet::RoadNetwork;

    #[test]
    fn sound_modes_never_lose_the_owner() {
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(8))
            .build()
            .unwrap();
        // The owner hops along adjacent segments.
        let path = [SegmentId(40), SegmentId(40), SegmentId(41), SegmentId(42)];
        for mode in [
            AdversaryMode::Move,
            AdversaryMode::All,
            AdversaryMode::Correlate,
            AdversaryMode::Adaptive,
        ] {
            let mut adv = TemporalAdversary::new(
                &net,
                AdversaryConfig {
                    mode,
                    ..Default::default()
                },
            );
            for (tick, region, seg) in keyed_stream(&net, &snapshot, &profile, &path) {
                let obs = adv.observe(
                    &net,
                    "alice",
                    Observation {
                        tick,
                        region: &region,
                        snapshot: &snapshot,
                        snapshot_fresh: true,
                    },
                    None,
                    Some(seg),
                );
                assert_eq!(
                    obs.true_in_support,
                    Some(true),
                    "{mode:?} lost the owner at tick {tick}"
                );
                assert!(obs.support >= 2, "{mode:?}: support {}", obs.support);
                assert!(obs.entropy_bits > 1.0, "{mode:?}: {}", obs.entropy_bits);
                assert!(obs.entropy_bits <= obs.region_entropy_bits + 1e-9);
            }
            assert_eq!(adv.tracked_owners(), 1);
        }
    }

    #[test]
    fn replay_collapses_a_keyless_deterministic_stream() {
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(10);
        let owner_seed = 0xdead_beef;
        let mut adv = TemporalAdversary::new(&net, AdversaryConfig::default());
        let mut summary = AttackSummary::new();
        for (tick, seg) in [
            (1u64, SegmentId(40)),
            (2, SegmentId(41)),
            (3, SegmentId(41)),
        ] {
            let mut rng = StdRng::seed_from_u64(owner_seed);
            let out = random_expansion(&net, &snapshot, seg, &req, &mut rng).unwrap();
            let obs = adv.observe(
                &net,
                "victim",
                Observation {
                    tick,
                    region: &out.segments,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                Some(ReplayProbe {
                    requirement: &req,
                    seed: owner_seed,
                }),
                Some(seg),
            );
            assert_eq!(obs.true_in_support, Some(true), "replay is exact");
            assert!(
                obs.support <= 2,
                "tick {tick}: replay left {} candidates",
                obs.support
            );
            assert!(obs.entropy_bits < 1.01, "tick {tick}: {}", obs.entropy_bits);
            summary.record(&obs);
        }
        assert!(summary.mean_entropy() < 1.01);
        assert!(summary.guess_success_rate() > 0.3);
        assert_eq!(summary.soundness(), 1.0);
    }

    #[test]
    fn keyed_stream_keeps_entropy_near_uniform() {
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(8))
            .build()
            .unwrap();
        let path: Vec<SegmentId> = (0..6).map(|i| SegmentId(40 + (i % 2))).collect();
        let mut adv = TemporalAdversary::new(&net, AdversaryConfig::default());
        let mut summary = AttackSummary::new();
        for (tick, region, seg) in keyed_stream(&net, &snapshot, &profile, &path) {
            let obs = adv.observe(
                &net,
                "alice",
                Observation {
                    tick,
                    region: &region,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(seg),
            );
            summary.record(&obs);
        }
        // k = 8 → the sound combined adversary keeps ≥ ~log2(8) bits.
        assert!(
            summary.mean_entropy() >= 2.4,
            "mean entropy {}",
            summary.mean_entropy()
        );
        assert_eq!(summary.soundness(), 1.0);
        assert!(summary.guess_success_rate() < 0.6);
        assert!(summary.mean_support() >= 6.0);
    }

    #[test]
    fn peel_mode_can_be_confidently_wrong() {
        // The naive intersection attack against a keyed stream: nothing
        // guarantees the true segment stays in the intersection. We only
        // assert the bookkeeping works; the scenario harness measures
        // the (un)soundness rate at scale.
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(6))
            .build()
            .unwrap();
        let path: Vec<SegmentId> = (0..5).map(|i| SegmentId(30 + i)).collect();
        let mut adv = TemporalAdversary::new(
            &net,
            AdversaryConfig {
                mode: AdversaryMode::Peel,
                ..Default::default()
            },
        );
        for (tick, region, seg) in keyed_stream(&net, &snapshot, &profile, &path) {
            let obs = adv.observe(
                &net,
                "alice",
                Observation {
                    tick,
                    region: &region,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(seg),
            );
            assert!(obs.support >= 1);
            assert!(obs.peel_frontier >= 1);
        }
    }

    #[test]
    fn packed_reach_masks_match_bfs_expansion() {
        // The satellite contract: region ∩ h-hop-reach(support) via the
        // packed index must equal the ReachScratch BFS for every small
        // hop budget, on grids and irregular maps.
        use roadnet::{irregular_city, IrregularConfig};
        for seed in 0..4u64 {
            let net: RoadNetwork = if seed % 2 == 0 {
                grid_city(9, 9, 100.0)
            } else {
                irregular_city(&IrregularConfig {
                    junctions: 70,
                    segments: 92,
                    seed,
                    ..Default::default()
                })
            };
            let n = net.segment_count() as u32;
            let support: Vec<SegmentId> = (0..6)
                .map(|i| SegmentId((seed as u32 * 31 + i * 17) % n))
                .collect();
            let mut scratch = ReachScratch::new();
            for hops in 1..=4usize {
                let index = net.reach_index(hops);
                let mut union = Vec::new();
                index.union_into(support.iter().copied(), &mut union);
                scratch.expand(&net, &support, hops);
                for s in net.segment_ids() {
                    assert_eq!(
                        roadnet::ReachIndex::mask_contains(&union, s),
                        scratch.contains(s),
                        "seed {seed} hops {hops}: packed and BFS reach disagree on {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn hop_cap_boundary_is_bit_identical_packed_vs_fallback() {
        // At h = MAX_CACHED_HOPS the movement prune rides the packed
        // index; at h = MAX_CACHED_HOPS + 1 it silently falls back to
        // the per-owner BFS. The two paths must produce bit-identical
        // observations — only the fallback flag (and the summary
        // counter) may differ. On this grid both budgets cover the
        // whole map, so the pruned sets coincide exactly.
        assert_eq!(roadnet::index::MAX_CACHED_HOPS, 16);
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(8))
            .build()
            .unwrap();
        let path = [SegmentId(40), SegmentId(41), SegmentId(42), SegmentId(42)];
        let stream = keyed_stream(&net, &snapshot, &profile, &path);
        // Shortest segment is 100, so hops = ceil(speed·dt/100) + 1.
        let mk = |speed: f64| {
            TemporalAdversary::new(
                &net,
                AdversaryConfig {
                    mode: AdversaryMode::Move,
                    max_speed: speed,
                    dt: 1.0,
                    ..Default::default()
                },
            )
        };
        let mut packed = mk(1500.0); // hops = 16 = MAX_CACHED_HOPS
        let mut fallback = mk(1600.0); // hops = 17: beyond the cache cap
        let mut packed_summary = AttackSummary::new();
        let mut fallback_summary = AttackSummary::new();
        for (tick, region, seg) in &stream {
            let observation = Observation {
                tick: *tick,
                region,
                snapshot: &snapshot,
                snapshot_fresh: true,
            };
            let a = packed.observe(&net, "alice", observation, None, Some(*seg));
            let b = fallback.observe(&net, "alice", observation, None, Some(*seg));
            assert!(!a.movement_fallback, "tick {tick}: packed path flagged");
            // The first (cold) tick never prunes, so there is no
            // fallback to take; every warm tick pays the BFS.
            assert_eq!(b.movement_fallback, *tick > 1, "tick {tick}");
            assert_eq!(
                AttackObservation {
                    movement_fallback: false,
                    ..b
                },
                a,
                "tick {tick}: packed and fallback paths diverged"
            );
            packed_summary.record(&a);
            fallback_summary.record(&b);
        }
        assert_eq!(packed_summary.movement_fallbacks(), 0);
        assert_eq!(
            fallback_summary.movement_fallbacks(),
            stream.len() as u64 - 1
        );
        assert!(format!("{fallback_summary}").contains("fallbacks"));
        assert!(!format!("{packed_summary}").contains("fallbacks"));
    }

    #[test]
    fn begin_tick_batching_is_bit_identical() {
        // Batched occupancy weighting (begin_tick once per tick) must
        // reproduce the per-owner path exactly, fresh and stale.
        let net = grid_city(8, 8, 100.0);
        let mut counts = vec![0u32; net.segment_count()];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i % 4) as u32; // include empty segments
        }
        let snapshot = OccupancySnapshot::from_counts(counts);
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(6))
            .build()
            .unwrap();
        let path: Vec<SegmentId> = (0..5).map(|i| SegmentId(40 + (i % 2))).collect();
        let stream = keyed_stream(&net, &snapshot, &profile, &path);
        for mode in [AdversaryMode::Correlate, AdversaryMode::All] {
            let cfg = AdversaryConfig {
                mode,
                ..Default::default()
            };
            let mut plain = TemporalAdversary::new(&net, cfg.clone());
            let mut batched = TemporalAdversary::new(&net, cfg);
            for (fresh, (tick, region, seg)) in
                stream.iter().enumerate().map(|(i, o)| (i % 2 == 0, o))
            {
                let observation = Observation {
                    tick: *tick,
                    region,
                    snapshot: &snapshot,
                    snapshot_fresh: fresh,
                };
                let a = plain.observe(&net, "alice", observation, None, Some(*seg));
                batched.begin_tick(&snapshot, fresh);
                let b = batched.observe(&net, "alice", observation, None, Some(*seg));
                assert_eq!(a, b, "{mode:?}: batched weighting diverged at tick {tick}");
            }
        }
    }

    #[test]
    fn summary_rollup_arithmetic() {
        let mut a = AttackSummary::new();
        assert_eq!(a.mean_entropy(), 0.0);
        assert_eq!(a.min_entropy(), 0.0);
        assert_eq!(a.soundness(), 1.0);
        let obs = AttackObservation {
            tick: 1,
            region_size: 8,
            peel_frontier: 3,
            support: 4,
            entropy_bits: 2.0,
            user_entropy_bits: 2.5,
            region_entropy_bits: 3.0,
            guess: SegmentId(1),
            guess_correct: Some(true),
            true_in_support: Some(true),
            reset: false,
            movement_fallback: false,
        };
        a.record(&obs);
        a.record(&AttackObservation {
            entropy_bits: 1.0,
            guess_correct: Some(false),
            true_in_support: Some(false),
            reset: true,
            movement_fallback: true,
            ..obs
        });
        assert_eq!(a.observations(), 2);
        assert!((a.mean_entropy() - 1.5).abs() < 1e-12);
        assert_eq!(a.min_entropy(), 1.0);
        assert_eq!(a.guess_success_rate(), 0.5);
        assert_eq!(a.soundness(), 0.5);
        assert_eq!(a.resets(), 1);
        assert_eq!(a.movement_fallbacks(), 1);
        // Unscored observations (no ground truth) don't dilute the
        // guess-success or soundness denominators.
        a.record(&AttackObservation {
            guess_correct: None,
            true_in_support: None,
            reset: false,
            ..obs
        });
        assert_eq!(a.observations(), 3);
        assert_eq!(a.guess_success_rate(), 0.5);
        assert_eq!(a.soundness(), 0.5);
        let mut b = AttackSummary::new();
        b.merge(&a);
        assert_eq!(b, a);
        assert!(format!("{a}").contains("entropy"));
        assert_eq!(AdversaryMode::parse("move"), Some(AdversaryMode::Move));
        assert_eq!(
            AdversaryMode::parse("adaptive"),
            Some(AdversaryMode::Adaptive)
        );
        assert_eq!(AdversaryMode::parse("bogus"), None);
        assert_eq!(AdversaryMode::All.name(), "all");
        for mode in AdversaryMode::ALL {
            assert_eq!(AdversaryMode::parse(mode.name()), Some(mode));
        }
    }

    #[test]
    fn zero_tick_summary_reports_finite_zeros() {
        // A stream the adversary never observed (the tournament's
        // zero-tick edge): every accessor must be 0.0/1.0, never NaN.
        let s = AttackSummary::new();
        assert_eq!(s.observations(), 0);
        assert_eq!(s.mean_entropy(), 0.0);
        assert_eq!(s.min_entropy(), 0.0);
        assert_eq!(s.mean_user_entropy(), 0.0);
        assert_eq!(s.min_user_entropy(), 0.0);
        assert_eq!(s.mean_support(), 0.0);
        assert_eq!(s.mean_region(), 0.0);
        assert_eq!(s.guess_success_rate(), 0.0);
        assert_eq!(s.soundness(), 1.0);
        let rendered = format!("{s}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn empty_region_observation_yields_zeros_not_nan() {
        let net = grid_city(4, 4, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        for mode in AdversaryMode::ALL {
            let mut adv = TemporalAdversary::new(
                &net,
                AdversaryConfig {
                    mode,
                    ..Default::default()
                },
            );
            let obs = adv.observe(
                &net,
                "alice",
                Observation {
                    tick: 1,
                    region: &[],
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(SegmentId(3)),
            );
            assert_eq!(obs.entropy_bits, 0.0, "{mode:?}");
            assert_eq!(obs.user_entropy_bits, 0.0, "{mode:?}");
            assert_eq!(obs.support, 0, "{mode:?}");
            // Nothing to guess over: the tick stays unscored so it
            // cannot spuriously break a sound attack's soundness.
            assert_eq!(obs.guess_correct, None, "{mode:?}");
            assert_eq!(obs.true_in_support, None, "{mode:?}");
            assert!(obs.reset, "{mode:?}");
        }
    }

    #[test]
    fn single_candidate_region_yields_exact_zero_entropy() {
        let net = grid_city(4, 4, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 4);
        let region = [SegmentId(5)];
        for mode in [
            AdversaryMode::Peel,
            AdversaryMode::Correlate,
            AdversaryMode::Move,
            AdversaryMode::All,
        ] {
            let mut adv = TemporalAdversary::new(
                &net,
                AdversaryConfig {
                    mode,
                    ..Default::default()
                },
            );
            let obs = adv.observe(
                &net,
                "alice",
                Observation {
                    tick: 1,
                    region: &region,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(SegmentId(5)),
            );
            // Exactly 0.0 — a point posterior, not an almost-zero float.
            assert_eq!(obs.entropy_bits, 0.0, "{mode:?}");
            assert_eq!(obs.support, 1, "{mode:?}");
            // The identity axis still carries the segment's user count.
            assert!(
                (obs.user_entropy_bits - 2.0).abs() < 1e-12,
                "{mode:?}: {}",
                obs.user_entropy_bits
            );
            assert_eq!(obs.guess, SegmentId(5), "{mode:?}");
        }
    }

    #[test]
    fn empty_posterior_after_pruning_resets_with_finite_entropy() {
        // Peel memory intersected with a disjoint region empties the
        // posterior: the adversary must reset to the full region (finite
        // entropy, full support), never emit NaN.
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut adv = TemporalAdversary::new(
            &net,
            AdversaryConfig {
                mode: AdversaryMode::Peel,
                ..Default::default()
            },
        );
        let first: Vec<SegmentId> = (0..6).map(SegmentId).collect();
        let second: Vec<SegmentId> = (60..66).map(SegmentId).collect();
        adv.observe(
            &net,
            "alice",
            Observation {
                tick: 1,
                region: &first,
                snapshot: &snapshot,
                snapshot_fresh: true,
            },
            None,
            None,
        );
        let obs = adv.observe(
            &net,
            "alice",
            Observation {
                tick: 2,
                region: &second,
                snapshot: &snapshot,
                snapshot_fresh: true,
            },
            None,
            Some(SegmentId(62)),
        );
        assert!(obs.reset);
        assert_eq!(obs.support, second.len());
        assert!(obs.entropy_bits.is_finite());
        assert!((obs.entropy_bits - (second.len() as f64).log2()).abs() < 1e-9);
        assert_eq!(obs.true_in_support, Some(true));
    }
}
