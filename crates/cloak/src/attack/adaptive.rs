//! The adaptive Bayesian adversary: a trajectory particle filter.
//!
//! The fixed-strategy portfolio in [`super::temporal`] prunes and
//! weights each tick's candidate set *in isolation* (the `correlate`
//! mode is explicitly memoryless; `move`/`all` carry only a support
//! set). This module upgrades the adversary to a sequential Bayesian
//! tracker that maintains a posterior over whole **trajectories**:
//!
//! * **State** — per owner, `N` particles. Each particle is a
//!   hypothesized trajectory (the segment path recorded since the
//!   adversary warmed up) with an importance weight that accumulates
//!   *multiplicatively* across ticks, so evidence compounds instead of
//!   being re-derived per observation.
//! * **Transition kernel** — the provably-sound movement model: a
//!   particle at segment `s` may move to any segment of the newly
//!   observed region within the `h`-hop reachability mask of `s`
//!   ([`roadnet::ReachIndex`], the same masks the `move` prune uses,
//!   with the same conservative `ceil(vmax·dt/min_len)+1` hop budget).
//!   A particle whose reachable set misses the region entirely is a
//!   refuted trajectory: its weight drops to zero.
//! * **Observation likelihood** — the occupancy-correlation weights of
//!   the issuing snapshot (`users(s)`, smoothed by `+0.5` when the
//!   snapshot is stale), used both as the proposal distribution and in
//!   the importance-weight update; plus replay inversion against
//!   keyless replayable schemes (the NRE control), exactly as in the
//!   fixed portfolio.
//! * **Systematic resampling** — when the per-owner effective sample
//!   size `ESS = 1/Σŵᵢ²` falls below
//!   [`AdaptiveConfig::ess_fraction`]`·N`, particles are resampled with
//!   the classic low-variance systematic scheme (one uniform draw,
//!   `N` evenly spaced cumulative positions), cloning high-mass
//!   trajectories and dropping dead ones.
//! * **Uniform-reinjection fallback** — if the weight system degenerates
//!   anyway (total mass zero after a refuting observation, or ESS
//!   collapse while resampling is disabled), the particle set is
//!   re-seeded uniformly over the *currently observed region*. The
//!   particle set is therefore never empty and never all-zero: the
//!   tracker degrades to the memoryless posterior instead of dying.
//!   Reinjections are counted ([`AdaptiveTracker::reinjections`]) and
//!   flagged as `reset` in the emitted [`AttackObservation`].
//!
//! The **reported** posterior over the owner's current segment is the
//! particle mass aggregated per region segment, defensively mixed with
//! `ε` of the uniform distribution over the observed region
//! ([`AdaptiveConfig::mix_epsilon`]). The mixture is the standard guard
//! against particle impoverishment under model misspecification, and it
//! makes the tracker *sound by construction*: anything the observation
//! itself admits (every region segment — in particular the true one)
//! keeps nonzero mass, so `true_in_support` can never be false. The
//! price is a small entropy floor of roughly `ε·log2|region|` bits,
//! negligible against the `log2 k` separation the tournament asserts.
//!
//! The tracker emits the same [`AttackObservation`] metrics as the
//! fixed portfolio and is normally driven through
//! [`super::temporal::TemporalAdversary`] with
//! [`AdversaryMode::Adaptive`](super::temporal::AdversaryMode::Adaptive),
//! which makes it a drop-in leg of the continuous pipeline — purely
//! observational, so receipt digests stay byte-identical.

use crate::attack::temporal::{
    conservative_hops, splitmix64, AttackObservation, Observation, ReachScratch, ReplayProbe,
};
use crate::baseline::{replay_expansion_matches, ExpansionScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{ReachIndex, RoadNetwork, SegmentId};
use std::collections::HashMap;
use std::sync::Arc;

/// Oldest trajectory suffix retained per particle: bounds memory on
/// long streams without affecting the posterior (weights already
/// encode the full history).
const TRAJECTORY_CAP: usize = 128;

/// Tuning knobs of the [`AdaptiveTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Particles per tracked owner.
    pub particles: usize,
    /// Whether ESS collapse triggers systematic resampling. Disabled,
    /// the tracker falls back to uniform reinjection on collapse (the
    /// degeneracy-handling property test exercises exactly this).
    pub resample: bool,
    /// Resample (or reinject) when `ESS < ess_fraction · particles`.
    pub ess_fraction: f64,
    /// Defensive uniform mixture over the observed region folded into
    /// the *reported* posterior — the soundness floor (see module
    /// docs). Clamped to `[0, 1)`.
    pub mix_epsilon: f64,
    /// Seed of the tracker's own deterministic sampling (proposals,
    /// resampling offsets, guesses).
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            particles: 256,
            resample: true,
            ess_fraction: 0.5,
            mix_epsilon: 0.02,
            seed: 0x0ada_9717,
        }
    }
}

/// Aggregate filter health, surfaced by
/// [`TemporalAdversary::adaptive_stats`](super::temporal::TemporalAdversary::adaptive_stats)
/// and the CLI footers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStats {
    /// Owners with live particle sets.
    pub tracked_owners: usize,
    /// Particles per owner.
    pub particles: usize,
    /// Mean of the per-owner effective sample sizes after the latest
    /// observation of each.
    pub mean_ess: f64,
    /// Systematic resampling events so far.
    pub resamples: u64,
    /// Uniform-reinjection fallbacks so far.
    pub reinjections: u64,
}

/// One owner's particle system.
#[derive(Debug, Clone, Default)]
struct ParticleSet {
    /// Current segment of each particle.
    segs: Vec<SegmentId>,
    /// Normalized importance weights (sum 1 after every observation).
    weights: Vec<f64>,
    /// Hypothesized trajectory of each particle (suffix-capped).
    trajectories: Vec<Vec<SegmentId>>,
    /// Effective sample size after the latest observation.
    ess: f64,
    warm: bool,
}

/// The trajectory particle filter (see module docs).
#[derive(Debug)]
pub struct AdaptiveTracker {
    cfg: AdaptiveConfig,
    /// Conservative per-tick hop budget of the transition kernel.
    hops: usize,
    /// Packed h-hop masks shared with every adversary on this network;
    /// `None` only when the budget exceeds the index's cached-hop cap
    /// ([`roadnet::IndexBudget::reach_hop_cap`]) — the transition
    /// kernel then pays a BFS per distinct particle segment, flagged
    /// via [`AttackObservation::movement_fallback`].
    reach_index: Option<Arc<ReachIndex>>,
    /// BFS fallback for uncached hop budgets.
    reach: ReachScratch,
    owners: HashMap<String, ParticleSet>,
    /// Pooled replay-inversion buffers.
    replay_scratch: ExpansionScratch,
    /// Pooled per-observation buffers.
    allowed: Vec<SegmentId>,
    order: Vec<usize>,
    region_mass: Vec<f64>,
    replay_cache: Vec<i8>,
    resamples: u64,
    reinjections: u64,
    draws: u64,
}

impl AdaptiveTracker {
    /// Builds a tracker whose transition kernel uses the same
    /// conservative hop budget as the fixed portfolio's movement model
    /// (`ceil(max_speed·dt / min_segment_length) + 1`).
    pub fn new(net: &RoadNetwork, max_speed: f64, dt: f64, cfg: AdaptiveConfig) -> Self {
        let hops = conservative_hops(net, max_speed, dt);
        let reach_index = net.cached_reach_index(hops);
        AdaptiveTracker {
            cfg: AdaptiveConfig {
                particles: cfg.particles.max(1),
                ..cfg
            },
            hops,
            reach_index,
            reach: ReachScratch::new(),
            owners: HashMap::new(),
            replay_scratch: ExpansionScratch::new(),
            allowed: Vec::new(),
            order: Vec::new(),
            region_mass: Vec::new(),
            replay_cache: Vec::new(),
            resamples: 0,
            reinjections: 0,
            draws: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The transition kernel's per-tick hop budget.
    pub fn movement_hops(&self) -> usize {
        self.hops
    }

    /// Owners with live particle sets.
    pub fn tracked_owners(&self) -> usize {
        self.owners.len()
    }

    /// Effective sample size of an owner's particle system after its
    /// latest observation.
    pub fn ess(&self, owner: &str) -> Option<f64> {
        self.owners.get(owner).map(|p| p.ess)
    }

    /// Systematic resampling events so far.
    pub fn resamples(&self) -> u64 {
        self.resamples
    }

    /// Uniform-reinjection fallbacks so far (degeneracy recoveries).
    pub fn reinjections(&self) -> u64 {
        self.reinjections
    }

    /// The number of live particles held for `owner` (always exactly
    /// [`AdaptiveConfig::particles`] once tracked — the reinjection
    /// fallback guarantees the set never empties).
    pub fn particle_count(&self, owner: &str) -> Option<usize> {
        self.owners.get(owner).map(|p| p.segs.len())
    }

    /// The maximum-a-posteriori particle's hypothesized trajectory and
    /// its normalized weight.
    pub fn map_trajectory(&self, owner: &str) -> Option<(&[SegmentId], f64)> {
        let ps = self.owners.get(owner)?;
        let (i, &w) = ps
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((&ps.trajectories[i], w))
    }

    /// Aggregate filter health.
    pub fn stats(&self) -> AdaptiveStats {
        let n = self.owners.len();
        let mean_ess = if n == 0 {
            0.0
        } else {
            self.owners.values().map(|p| p.ess).sum::<f64>() / n as f64
        };
        AdaptiveStats {
            tracked_owners: n,
            particles: self.cfg.particles,
            mean_ess,
            resamples: self.resamples,
            reinjections: self.reinjections,
        }
    }

    /// Drops all per-owner state (the tracker starts cold again).
    pub fn reset(&mut self) {
        self.owners.clear();
    }

    /// One deterministic uniform draw in `[0, 1)`.
    fn rand01(&mut self) -> f64 {
        self.draws += 1;
        let word = splitmix64(self.cfg.seed ^ self.draws.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (word >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Occupancy likelihood of a segment under the issuing snapshot
    /// (smoothed when the snapshot may lag the owner's movement).
    fn likelihood(obs: &Observation<'_>, s: SegmentId) -> f64 {
        let users = obs.snapshot.users_on(s) as f64;
        if obs.snapshot_fresh {
            users
        } else {
            users + 0.5
        }
    }

    /// Re-seeds the particle system uniformly over the observed region
    /// — the documented degeneracy fallback. Never leaves the set empty.
    fn reinject(ps: &mut ParticleSet, region: &[SegmentId], particles: usize) {
        ps.segs.clear();
        ps.weights.clear();
        ps.trajectories.clear();
        for i in 0..particles {
            let seg = region[i % region.len()];
            ps.segs.push(seg);
            ps.weights.push(1.0);
            ps.trajectories.push(vec![seg]);
        }
    }

    /// Processes one observed cloak for `owner`. The contract matches
    /// [`TemporalAdversary::observe`](super::temporal::TemporalAdversary::observe):
    /// `replay` is the adversary's knowledge that the scheme is keyless
    /// and replayable, `truth` scores but never feeds the posterior, and
    /// `peel_frontier` is the caller's precomputed peel-candidate count
    /// (pass 0 when unused).
    pub fn observe(
        &mut self,
        net: &RoadNetwork,
        owner: &str,
        obs: Observation<'_>,
        replay: Option<ReplayProbe<'_>>,
        truth: Option<SegmentId>,
        peel_frontier: usize,
    ) -> AttackObservation {
        let region = obs.region;
        // An empty region admits no posterior: report zeros (not NaN)
        // and leave the owner's state untouched.
        if region.is_empty() {
            return AttackObservation {
                tick: obs.tick,
                region_size: 0,
                peel_frontier,
                support: 0,
                entropy_bits: 0.0,
                user_entropy_bits: 0.0,
                region_entropy_bits: 0.0,
                guess: SegmentId(0),
                guess_correct: None,
                true_in_support: None,
                reset: true,
                movement_fallback: false,
            };
        }
        let n = self.cfg.particles;
        let mut ps = self.owners.remove(owner).unwrap_or_default();
        let mut reset = false;
        let mut movement_fallback = false;

        if !ps.warm {
            Self::reinject(&mut ps, region, n);
            for (w, &seg) in ps.weights.iter_mut().zip(&ps.segs) {
                *w = Self::likelihood(&obs, seg);
            }
            if ps.weights.iter().all(|&w| w == 0.0) {
                ps.weights.fill(1.0);
            }
            ps.warm = true;
        } else {
            // The transition kernel pays a BFS per distinct particle
            // segment when the hop budget exceeds the index cache cap.
            movement_fallback = self.reach_index.is_none();
            self.propagate(net, &mut ps, &obs);
        }

        // Replay inversion: a particle sitting on a segment from which
        // the keyless scheme provably would not have produced this
        // region is refuted. Cached per segment; if no segment survives
        // the replay (numerical dead end), skip the cut — mirroring the
        // fixed portfolio.
        if let Some(probe) = replay {
            self.replay_scratch.set_replay_target(net, region);
            self.replay_cache.clear();
            self.replay_cache.resize(net.segment_count(), -1);
            let mut any = false;
            for i in 0..ps.segs.len() {
                if ps.weights[i] == 0.0 {
                    continue;
                }
                let seg = ps.segs[i];
                let cached = self.replay_cache[seg.index()];
                let hit = if cached >= 0 {
                    cached == 1
                } else {
                    let mut rng = StdRng::seed_from_u64(probe.seed);
                    let hit = replay_expansion_matches(
                        net,
                        obs.snapshot,
                        seg,
                        probe.requirement,
                        &mut rng,
                        &mut self.replay_scratch,
                    );
                    self.replay_cache[seg.index()] = i8::from(hit);
                    hit
                };
                any |= hit;
            }
            if any {
                for (w, &seg) in ps.weights.iter_mut().zip(&ps.segs) {
                    if self.replay_cache[seg.index()] == 0 {
                        *w = 0.0;
                    }
                }
            }
        }

        // Degeneracy fallback #1: total mass zero (every trajectory
        // refuted) — reinject uniformly over the observed region.
        let total: f64 = ps.weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            Self::reinject(&mut ps, region, n);
            reset = true;
            self.reinjections += 1;
        }

        // Normalize and track the effective sample size.
        let total: f64 = ps.weights.iter().sum();
        for w in &mut ps.weights {
            *w /= total;
        }
        let ess = 1.0 / ps.weights.iter().map(|w| w * w).sum::<f64>();
        ps.ess = ess;

        // Measure the reported posterior: particle mass per region
        // segment, ε-mixed with uniform over the region (the soundness
        // floor — see module docs).
        let eps = self.cfg.mix_epsilon.clamp(0.0, 0.999_999);
        self.region_mass.clear();
        self.region_mass.resize(region.len(), 0.0);
        for (&seg, &w) in ps.segs.iter().zip(&ps.weights) {
            if let Ok(idx) = region.binary_search(&seg) {
                self.region_mass[idx] += w;
            }
        }
        let uniform = eps / region.len() as f64;
        let mut entropy = 0.0;
        let mut user_entropy = 0.0;
        let mut support = 0usize;
        for (&mass, &s) in self.region_mass.iter().zip(region) {
            let p = (1.0 - eps) * mass + uniform;
            if p > 0.0 {
                support += 1;
                entropy -= p * p.log2();
                user_entropy += p * (obs.snapshot.users_on(s).max(1) as f64).log2();
            }
        }
        let entropy = entropy.max(0.0);
        let user_entropy = (user_entropy + entropy).max(0.0);

        // Guess by sampling the reported posterior (deterministic).
        let x = self.rand01();
        let mut acc = 0.0;
        let mut guess = region[region.len() - 1];
        for (&mass, &s) in self.region_mass.iter().zip(region) {
            acc += (1.0 - eps) * mass + uniform;
            if x < acc {
                guess = s;
                break;
            }
        }
        let guess_correct = truth.map(|t| guess == t);
        let true_in_support = truth.map(|t| match region.binary_search(&t) {
            Ok(idx) => (1.0 - eps) * self.region_mass[idx] + uniform > 0.0,
            Err(_) => false,
        });

        // Degeneracy control for the *next* tick: resample on ESS
        // collapse, or fall back to reinjection when resampling is off.
        if ess < self.cfg.ess_fraction * n as f64 {
            if self.cfg.resample {
                self.systematic_resample(&mut ps);
                self.resamples += 1;
            } else {
                Self::reinject(&mut ps, region, n);
                let w = 1.0 / n as f64;
                ps.weights.fill(w);
                ps.ess = n as f64;
                reset = true;
                self.reinjections += 1;
            }
        }

        self.owners.insert(owner.to_string(), ps);

        AttackObservation {
            tick: obs.tick,
            region_size: region.len(),
            peel_frontier,
            support,
            entropy_bits: entropy,
            user_entropy_bits: user_entropy,
            region_entropy_bits: (region.len() as f64).log2(),
            guess,
            guess_correct,
            true_in_support,
            reset,
            movement_fallback,
        }
    }

    /// One transition step: every particle moves to a segment of the
    /// new region inside its h-hop reachability mask, proposed
    /// proportionally to the occupancy likelihood; the importance
    /// weight picks up the transition's marginal likelihood. Particles
    /// are processed grouped by current segment so each distinct
    /// segment's reachable set is computed once.
    fn propagate(&mut self, net: &RoadNetwork, ps: &mut ParticleSet, obs: &Observation<'_>) {
        let region = obs.region;
        self.order.clear();
        self.order.extend(0..ps.segs.len());
        let segs = std::mem::take(&mut ps.segs);
        self.order.sort_unstable_by_key(|&i| segs[i]);
        let mut start = 0;
        while start < self.order.len() {
            let seg = segs[self.order[start]];
            let mut end = start + 1;
            while end < self.order.len() && segs[self.order[end]] == seg {
                end += 1;
            }
            // Reachable subset of the region from this segment.
            self.allowed.clear();
            match &self.reach_index {
                Some(index) => {
                    let mask = index.mask(seg);
                    self.allowed.extend(
                        region
                            .iter()
                            .copied()
                            .filter(|&s| ReachIndex::mask_contains(mask, s)),
                    );
                }
                None => {
                    self.reach.expand(net, &[seg], self.hops);
                    self.allowed
                        .extend(region.iter().copied().filter(|&s| self.reach.contains(s)));
                }
            }
            if self.allowed.is_empty() {
                // Refuted trajectories: the region is unreachable.
                for &i in &self.order[start..end] {
                    ps.weights[i] = 0.0;
                }
                start = end;
                continue;
            }
            let mut lik_total = 0.0;
            for &s in &self.allowed {
                lik_total += Self::likelihood(obs, s);
            }
            // Uninformative observation (all-zero occupancy inside the
            // reachable set): propose uniformly, weight unchanged.
            let informative = lik_total > 0.0;
            let step_weight = if informative {
                lik_total / self.allowed.len() as f64
            } else {
                1.0
            };
            for idx in start..end {
                let i = self.order[idx];
                if ps.weights[i] == 0.0 {
                    // Dead particles do not move; resampling or
                    // reinjection will recycle them.
                    continue;
                }
                let next = if informative {
                    let mut x = self.rand01() * lik_total;
                    let mut chosen = *self.allowed.last().expect("non-empty");
                    for &s in &self.allowed {
                        let l = Self::likelihood(obs, s);
                        if x < l {
                            chosen = s;
                            break;
                        }
                        x -= l;
                    }
                    chosen
                } else {
                    let j = (self.rand01() * self.allowed.len() as f64) as usize;
                    self.allowed[j.min(self.allowed.len() - 1)]
                };
                ps.weights[i] *= step_weight;
                let traj = &mut ps.trajectories[i];
                traj.push(next);
                if traj.len() > TRAJECTORY_CAP {
                    traj.remove(0);
                }
            }
            start = end;
        }
        // Restore the (possibly updated) segment array.
        ps.segs = segs;
        for idx in 0..self.order.len() {
            let i = self.order[idx];
            if ps.weights[i] > 0.0 {
                if let Some(&last) = ps.trajectories[i].last() {
                    ps.segs[i] = last;
                }
            }
        }
    }

    /// Low-variance systematic resampling: one uniform offset, `N`
    /// evenly spaced cumulative positions. Weights reset to `1/N`.
    fn systematic_resample(&mut self, ps: &mut ParticleSet) {
        let n = ps.segs.len();
        if n == 0 {
            return;
        }
        let offset = self.rand01() / n as f64;
        let mut picks: Vec<usize> = Vec::with_capacity(n);
        let mut cum = 0.0;
        let mut i = 0;
        for j in 0..n {
            let target = offset + j as f64 / n as f64;
            while i < n - 1 && cum + ps.weights[i] < target {
                cum += ps.weights[i];
                i += 1;
            }
            picks.push(i);
        }
        let w = 1.0 / n as f64;
        let segs: Vec<SegmentId> = picks.iter().map(|&i| ps.segs[i]).collect();
        let trajectories: Vec<Vec<SegmentId>> =
            picks.iter().map(|&i| ps.trajectories[i].clone()).collect();
        ps.segs = segs;
        ps.trajectories = trajectories;
        ps.weights.clear();
        ps.weights.resize(n, w);
        ps.ess = n as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisim::OccupancySnapshot;
    use roadnet::grid_city;

    fn obs<'a>(
        tick: u64,
        region: &'a [SegmentId],
        snapshot: &'a OccupancySnapshot,
    ) -> Observation<'a> {
        Observation {
            tick,
            region,
            snapshot,
            snapshot_fresh: true,
        }
    }

    #[test]
    fn cold_observation_spreads_mass_over_the_region() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
        let region: Vec<SegmentId> = (10..20).map(SegmentId).collect();
        let a = tracker.observe(&net, "alice", obs(1, &region, &snapshot), None, None, 0);
        assert_eq!(a.region_size, 10);
        assert_eq!(a.support, 10);
        assert!(a.entropy_bits > 3.0, "near-uniform: {}", a.entropy_bits);
        assert!(a.entropy_bits.is_finite());
        assert_eq!(tracker.particle_count("alice"), Some(256));
    }

    #[test]
    fn posterior_sharpens_across_ticks_on_structured_density() {
        let net = grid_city(6, 6, 100.0);
        // All mass on one segment: the tracker should concentrate.
        let mut counts = vec![1u32; net.segment_count()];
        counts[12] = 60;
        let snapshot = OccupancySnapshot::from_counts(counts);
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
        let region: Vec<SegmentId> = (8..16).map(SegmentId).collect();
        let first = tracker.observe(&net, "alice", obs(1, &region, &snapshot), None, None, 0);
        let mut last = first;
        for t in 2..6 {
            last = tracker.observe(&net, "alice", obs(t, &region, &snapshot), None, None, 0);
        }
        assert!(
            last.entropy_bits <= first.entropy_bits + 1e-9,
            "no sharpening: {} -> {}",
            first.entropy_bits,
            last.entropy_bits
        );
    }

    #[test]
    fn truth_always_keeps_mass_under_the_epsilon_mixture() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
        let region: Vec<SegmentId> = (20..30).map(SegmentId).collect();
        for t in 1..8 {
            let a = tracker.observe(
                &net,
                "alice",
                obs(t, &region, &snapshot),
                None,
                Some(SegmentId(25)),
                0,
            );
            assert_eq!(a.true_in_support, Some(true));
        }
    }

    #[test]
    fn unreachable_jump_triggers_reinjection_not_emptiness() {
        let net = grid_city(8, 8, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        // Tight hop budget so a cross-map jump is provably unreachable.
        let mut tracker = AdaptiveTracker::new(&net, 5.0, 10.0, AdaptiveConfig::default());
        assert!(tracker.movement_hops() <= 2);
        let near: Vec<SegmentId> = (0..4).map(SegmentId).collect();
        let far: Vec<SegmentId> = (100..104).map(SegmentId).collect();
        tracker.observe(&net, "alice", obs(1, &near, &snapshot), None, None, 0);
        let jumped = tracker.observe(&net, "alice", obs(2, &far, &snapshot), None, None, 0);
        assert!(jumped.reset, "refuted trajectories must reinject");
        assert!(tracker.reinjections() >= 1);
        assert_eq!(
            tracker.particle_count("alice"),
            Some(256),
            "the particle set must never empty"
        );
        assert!(jumped.entropy_bits.is_finite());
    }

    #[test]
    fn empty_region_reports_zeros_without_nan() {
        let net = grid_city(4, 4, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
        let a = tracker.observe(
            &net,
            "alice",
            obs(1, &[], &snapshot),
            None,
            Some(SegmentId(3)),
            0,
        );
        assert_eq!(a.entropy_bits, 0.0);
        assert_eq!(a.user_entropy_bits, 0.0);
        assert_eq!(a.support, 0);
        assert_eq!(a.true_in_support, None);
        assert!(a.reset);
    }

    #[test]
    fn single_segment_region_yields_zero_entropy_at_zero_epsilon() {
        let net = grid_city(4, 4, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 3);
        let cfg = AdaptiveConfig {
            mix_epsilon: 0.0,
            ..Default::default()
        };
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, cfg);
        let region = [SegmentId(5)];
        let a = tracker.observe(&net, "alice", obs(1, &region, &snapshot), None, None, 0);
        assert_eq!(a.entropy_bits, 0.0);
        assert_eq!(a.support, 1);
        assert!((a.user_entropy_bits - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn map_trajectory_tracks_history() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
        let region: Vec<SegmentId> = (10..18).map(SegmentId).collect();
        for t in 1..5 {
            tracker.observe(&net, "alice", obs(t, &region, &snapshot), None, None, 0);
        }
        let (traj, w) = tracker.map_trajectory("alice").expect("tracked");
        assert!(traj.len() >= 2, "trajectory history too short");
        assert!(w > 0.0);
        assert!(traj.iter().all(|s| region.contains(s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let run = || {
            let mut tracker = AdaptiveTracker::new(&net, 22.0, 10.0, AdaptiveConfig::default());
            let region: Vec<SegmentId> = (4..14).map(SegmentId).collect();
            (1..6)
                .map(|t| {
                    tracker
                        .observe(&net, "alice", obs(t, &region, &snapshot), None, None, 0)
                        .entropy_bits
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }
}
