//! The conventional one-way baseline: Non-reversible Random Expansion
//! (NRE).
//!
//! Conventional road-network cloaking (\[1\], \[2\], \[7\], \[9\] in the paper)
//! grows the region by uniformly random frontier picks until the privacy
//! requirement holds. It is cheap — no transition tables, no reversibility
//! bookkeeping — but *unidirectional*: "location information once
//! perturbed … cannot be reversed". The benchmarks use it as the
//! anonymization-cost and region-quality baseline.

use crate::error::{CloakError, StepFailure};
use crate::frontier::{candidates_into, position_in_sorted};
use crate::profile::LevelRequirement;
use crate::region::RegionState;
use crate::scratch::StampSet;
use keystream::Level;
use mobisim::OccupancySnapshot;
use rand::Rng;
use roadnet::{RoadNetwork, SegmentId};

/// Result of a baseline expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// The cloaking region, sorted by id.
    pub segments: Vec<SegmentId>,
    /// Expansion steps taken.
    pub steps: u32,
}

/// Pooled buffers for [`random_expansion_with`] and
/// [`replay_expansion_matches`]: the growing region, the frontier
/// dedup/sort buffers, and the replay target set. Same reuse contract as
/// [`crate::CloakScratch`] — plain state, bit-identical results for any
/// scratch.
#[derive(Debug, Clone, Default)]
pub struct ExpansionScratch {
    region: RegionState,
    stamp: StampSet,
    frontier: Vec<SegmentId>,
    admissible: Vec<SegmentId>,
    /// Membership set of the observed region a replay must reproduce.
    target: StampSet,
    target_len: usize,
}

impl ExpansionScratch {
    /// A fresh scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the observed region [`replay_expansion_matches`] tests
    /// candidate seeds against. Call once per observation; every replay
    /// for that observation then shares the membership set.
    pub fn set_replay_target(&mut self, net: &RoadNetwork, observed: &[SegmentId]) {
        self.target.begin(net.segment_count());
        for &s in observed {
            self.target.insert(s.index());
        }
        self.target_len = observed.len();
    }
}

/// Grows a one-way cloaking region from `user_segment` until `req` holds.
///
/// Allocating convenience over [`random_expansion_with`] (one throwaway
/// [`ExpansionScratch`] per call).
///
/// # Errors
///
/// Fails like the reversible engines when the frontier is exhausted or
/// the tolerance blocks every candidate.
pub fn random_expansion<R: Rng + ?Sized>(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    req: &LevelRequirement,
    rng: &mut R,
) -> Result<BaselineOutcome, CloakError> {
    random_expansion_with(
        net,
        snapshot,
        user_segment,
        req,
        rng,
        &mut ExpansionScratch::new(),
    )
}

/// [`random_expansion`] with caller-owned scratch buffers: the pipeline's
/// per-tick NRE control grows owner after owner with no steady-state
/// heap traffic beyond the returned outcome. Results are bit-identical
/// to [`random_expansion`] for any scratch state (the RNG draw sequence
/// depends only on the admissible counts, which are value-determined).
///
/// # Errors
///
/// As [`random_expansion`].
pub fn random_expansion_with<R: Rng + ?Sized>(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    req: &LevelRequirement,
    rng: &mut R,
    scratch: &mut ExpansionScratch,
) -> Result<BaselineOutcome, CloakError> {
    if net.get_segment(user_segment).is_none() {
        return Err(CloakError::UnknownSegment(user_segment));
    }
    let ExpansionScratch {
        region,
        stamp,
        frontier,
        admissible,
        ..
    } = scratch;
    region.reset_for(net);
    region.insert(net, user_segment);
    // Users and frontier are maintained incrementally around each pick
    // instead of being recomputed per step — value-identical to the full
    // recomputation (pinned by `incremental_walk_matches_full_recompute`),
    // so the RNG draw sequence is unchanged.
    let mut users = u64::from(snapshot.users_on(user_segment));
    candidates_into(net, region, stamp, frontier);
    let mut steps = 0u32;
    while users < req.k as u64 || region.len() < req.l as usize {
        if frontier.is_empty() {
            return Err(CloakError::CloakingFailed {
                level: Level(1),
                reason: StepFailure::NoCandidates,
            });
        }
        admissible.clear();
        admissible.extend(frontier.iter().copied().filter(|&c| {
            req.tolerance
                .allows_extended(net, region.total_length(), region.bounding_box(), c)
        }));
        if admissible.is_empty() {
            return Err(CloakError::CloakingFailed {
                level: Level(1),
                reason: StepFailure::RedrawBudgetExhausted,
            });
        }
        let pick = admissible[rng.gen_range(0..admissible.len())];
        region.insert(net, pick);
        users += u64::from(snapshot.users_on(pick));
        steps += 1;
        advance_frontier(net, region, stamp, frontier, pick);
    }
    Ok(BaselineOutcome {
        segments: region.to_sorted_ids(),
        steps,
    })
}

/// Updates a `(length, id)`-sorted frontier around a just-inserted pick:
/// the pick leaves the frontier, its not-yet-seen non-member neighbors
/// join at their sorted positions. Contents and order are exactly what
/// [`candidates_into`] would recompute — the comparator is a strict
/// total order (ties broken by id), so sorted insertion and a full
/// re-sort agree — provided `stamp` has tracked every frontier member
/// since the seeding [`candidates_into`] call.
fn advance_frontier(
    net: &RoadNetwork,
    region: &RegionState,
    stamp: &mut StampSet,
    frontier: &mut Vec<SegmentId>,
    pick: SegmentId,
) {
    if let Some(at) = position_in_sorted(net, frontier, pick) {
        frontier.remove(at);
    }
    for &n in net.neighbor_segments_csr(pick) {
        if !region.contains(n) && stamp.insert(n.index()) {
            let key = net.segment(n).length();
            let at = frontier
                .binary_search_by(|&s| net.segment(s).length().total_cmp(&key).then(s.cmp(&n)))
                .unwrap_or_else(|e| e);
            frontier.insert(at, n);
        }
    }
}

/// Decides whether replaying a random expansion from `user_segment` with
/// `rng` reproduces exactly the observed region installed by
/// [`ExpansionScratch::set_replay_target`] — the adversary's replay
/// inversion against keyless deterministic schemes.
///
/// Boolean-equivalent to
/// `random_expansion(…).map(|out| out.segments == observed).unwrap_or(false)`
/// but **early-exiting**: the walk replays the exact pick sequence of
/// [`random_expansion`] and bails the moment a pick (or the seed) falls
/// outside the observed region, since the grown set could then never
/// equal it. The grown region is always a subset of the target after
/// those checks, so the final verdict reduces to a length comparison.
pub fn replay_expansion_matches<R: Rng + ?Sized>(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    req: &LevelRequirement,
    rng: &mut R,
    scratch: &mut ExpansionScratch,
) -> bool {
    if net.get_segment(user_segment).is_none() {
        return false;
    }
    let ExpansionScratch {
        region,
        stamp,
        frontier,
        admissible,
        target,
        target_len,
    } = scratch;
    if !target.contains(user_segment.index()) {
        return false;
    }
    region.reset_for(net);
    region.insert(net, user_segment);
    let mut users = u64::from(snapshot.users_on(user_segment));
    candidates_into(net, region, stamp, frontier);
    while users < req.k as u64 || region.len() < req.l as usize {
        if frontier.is_empty() {
            return false;
        }
        admissible.clear();
        admissible.extend(frontier.iter().copied().filter(|&c| {
            req.tolerance
                .allows_extended(net, region.total_length(), region.bounding_box(), c)
        }));
        if admissible.is_empty() {
            return false;
        }
        let pick = admissible[rng.gen_range(0..admissible.len())];
        if !target.contains(pick.index()) {
            return false;
        }
        region.insert(net, pick);
        users += u64::from(snapshot.users_on(pick));
        advance_frontier(net, region, stamp, frontier, pick);
    }
    region.len() == *target_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpatialTolerance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    #[test]
    fn meets_k_and_l() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let req = LevelRequirement::with_k(10).l(4);
        let mut rng = StdRng::seed_from_u64(1);
        let out = random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng).unwrap();
        assert!(snapshot.users_in(out.segments.iter().copied()) >= 10);
        assert!(out.segments.len() >= 4);
        assert!(out.segments.contains(&SegmentId(0)));
        assert_eq!(out.steps as usize + 1, out.segments.len());
    }

    #[test]
    fn region_is_connected() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(15);
        let mut rng = StdRng::seed_from_u64(2);
        let out = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut rng).unwrap();
        assert!(net.segments_connected(&out.segments));
    }

    #[test]
    fn different_rng_different_regions() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(12);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(4);
        let a = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut r1).unwrap();
        let b = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut r2).unwrap();
        assert_ne!(a.segments, b.segments);
    }

    #[test]
    fn impossible_requirements_fail() {
        let net = grid_city(3, 3, 100.0);
        // Only 12 users exist but k = 100.
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(100);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng),
            Err(CloakError::CloakingFailed { .. })
        ));
        // Tolerance too tight.
        let req = LevelRequirement::with_k(10).tolerance(SpatialTolerance::TotalLength(150.0));
        assert!(matches!(
            random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng),
            Err(CloakError::CloakingFailed { .. })
        ));
    }

    #[test]
    fn pooled_expansion_is_bit_identical_to_allocating() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let req = LevelRequirement::with_k(12).l(4);
        let mut scratch = ExpansionScratch::new();
        for seed in 0..20u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let allocating = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut r1);
            let pooled =
                random_expansion_with(&net, &snapshot, SegmentId(17), &req, &mut r2, &mut scratch);
            assert_eq!(allocating, pooled, "seed {seed}");
        }
    }

    /// Pins the incremental users/frontier maintenance to a per-step
    /// full recomputation: same frontier (contents *and* order, so the
    /// same RNG draw sequence), same pick, same stop condition.
    #[test]
    fn incremental_walk_matches_full_recompute() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let req = LevelRequirement::with_k(14).l(4);
        for seed in 0..20u64 {
            let start = SegmentId((seed as u32 * 13) % net.segment_count() as u32);
            let mut reference_rng = StdRng::seed_from_u64(seed);
            let mut region = RegionState::new(&net);
            region.insert(&net, start);
            let mut steps = 0u32;
            let reference = loop {
                if region.users(&snapshot) >= req.k as u64 && region.len() >= req.l as usize {
                    break Some(region.to_sorted_ids());
                }
                let admissible: Vec<SegmentId> = crate::frontier::candidates(&net, &region)
                    .into_iter()
                    .filter(|&c| {
                        req.tolerance.allows_extended(
                            &net,
                            region.total_length(),
                            region.bounding_box(),
                            c,
                        )
                    })
                    .collect();
                if admissible.is_empty() {
                    break None;
                }
                let pick = admissible[reference_rng.gen_range(0..admissible.len())];
                region.insert(&net, pick);
                steps += 1;
            };
            let fast = random_expansion(
                &net,
                &snapshot,
                start,
                &req,
                &mut StdRng::seed_from_u64(seed),
            );
            match (reference, fast) {
                (Some(segments), Ok(out)) => {
                    assert_eq!(segments, out.segments, "seed {seed}");
                    assert_eq!(steps, out.steps, "seed {seed}");
                }
                (None, Err(_)) => {}
                (r, f) => panic!("seed {seed}: reference {r:?} vs incremental {f:?}"),
            }
        }
    }

    #[test]
    fn replay_matcher_agrees_with_full_replay() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(10);
        let seed = 0xfeedu64;
        let observed = random_expansion(
            &net,
            &snapshot,
            SegmentId(20),
            &req,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
        .segments;
        let mut scratch = ExpansionScratch::new();
        scratch.set_replay_target(&net, &observed);
        // Every candidate seed across the whole network, matching and
        // not, agrees with the brute-force replay — including seeds
        // whose walks dead-end (grid corners under tight tolerance).
        for s in net.segment_ids() {
            let brute =
                random_expansion(&net, &snapshot, s, &req, &mut StdRng::seed_from_u64(seed))
                    .map(|out| out.segments == observed)
                    .unwrap_or(false);
            let fast = replay_expansion_matches(
                &net,
                &snapshot,
                s,
                &req,
                &mut StdRng::seed_from_u64(seed),
                &mut scratch,
            );
            assert_eq!(brute, fast, "seed segment {s}");
        }
        // The true seed replays to a match.
        assert!(replay_expansion_matches(
            &net,
            &snapshot,
            SegmentId(20),
            &req,
            &mut StdRng::seed_from_u64(seed),
            &mut scratch,
        ));
    }

    #[test]
    fn unknown_segment_fails() {
        let net = grid_city(3, 3, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(2);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            random_expansion(&net, &snapshot, SegmentId(777), &req, &mut rng).unwrap_err(),
            CloakError::UnknownSegment(SegmentId(777))
        );
    }
}
