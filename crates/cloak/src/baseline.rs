//! The conventional one-way baseline: Non-reversible Random Expansion
//! (NRE).
//!
//! Conventional road-network cloaking (\[1\], \[2\], \[7\], \[9\] in the paper)
//! grows the region by uniformly random frontier picks until the privacy
//! requirement holds. It is cheap — no transition tables, no reversibility
//! bookkeeping — but *unidirectional*: "location information once
//! perturbed … cannot be reversed". The benchmarks use it as the
//! anonymization-cost and region-quality baseline.

use crate::error::{CloakError, StepFailure};
use crate::frontier::candidates;
use crate::profile::LevelRequirement;
use crate::region::RegionState;
use keystream::Level;
use mobisim::OccupancySnapshot;
use rand::Rng;
use roadnet::{RoadNetwork, SegmentId};

/// Result of a baseline expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// The cloaking region, sorted by id.
    pub segments: Vec<SegmentId>,
    /// Expansion steps taken.
    pub steps: u32,
}

/// Grows a one-way cloaking region from `user_segment` until `req` holds.
///
/// # Errors
///
/// Fails like the reversible engines when the frontier is exhausted or
/// the tolerance blocks every candidate.
pub fn random_expansion<R: Rng + ?Sized>(
    net: &RoadNetwork,
    snapshot: &OccupancySnapshot,
    user_segment: SegmentId,
    req: &LevelRequirement,
    rng: &mut R,
) -> Result<BaselineOutcome, CloakError> {
    if net.get_segment(user_segment).is_none() {
        return Err(CloakError::UnknownSegment(user_segment));
    }
    let mut region = RegionState::from_segments(net, [user_segment]);
    let mut steps = 0u32;
    while region.users(snapshot) < req.k as u64 || region.len() < req.l as usize {
        let cans = candidates(net, &region);
        if cans.is_empty() {
            return Err(CloakError::CloakingFailed {
                level: Level(1),
                reason: StepFailure::NoCandidates,
            });
        }
        let admissible: Vec<SegmentId> = cans
            .into_iter()
            .filter(|&c| {
                req.tolerance
                    .allows_extended(net, region.total_length(), region.bounding_box(), c)
            })
            .collect();
        if admissible.is_empty() {
            return Err(CloakError::CloakingFailed {
                level: Level(1),
                reason: StepFailure::RedrawBudgetExhausted,
            });
        }
        let pick = admissible[rng.gen_range(0..admissible.len())];
        region.insert(net, pick);
        steps += 1;
    }
    Ok(BaselineOutcome {
        segments: region.to_sorted_ids(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpatialTolerance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::grid_city;

    #[test]
    fn meets_k_and_l() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        let req = LevelRequirement::with_k(10).l(4);
        let mut rng = StdRng::seed_from_u64(1);
        let out = random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng).unwrap();
        assert!(snapshot.users_in(out.segments.iter().copied()) >= 10);
        assert!(out.segments.len() >= 4);
        assert!(out.segments.contains(&SegmentId(0)));
        assert_eq!(out.steps as usize + 1, out.segments.len());
    }

    #[test]
    fn region_is_connected() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(15);
        let mut rng = StdRng::seed_from_u64(2);
        let out = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut rng).unwrap();
        assert!(net.segments_connected(&out.segments));
    }

    #[test]
    fn different_rng_different_regions() {
        let net = grid_city(6, 6, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(12);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(4);
        let a = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut r1).unwrap();
        let b = random_expansion(&net, &snapshot, SegmentId(17), &req, &mut r2).unwrap();
        assert_ne!(a.segments, b.segments);
    }

    #[test]
    fn impossible_requirements_fail() {
        let net = grid_city(3, 3, 100.0);
        // Only 12 users exist but k = 100.
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(100);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng),
            Err(CloakError::CloakingFailed { .. })
        ));
        // Tolerance too tight.
        let req = LevelRequirement::with_k(10).tolerance(SpatialTolerance::TotalLength(150.0));
        assert!(matches!(
            random_expansion(&net, &snapshot, SegmentId(0), &req, &mut rng),
            Err(CloakError::CloakingFailed { .. })
        ));
    }

    #[test]
    fn unknown_segment_fails() {
        let net = grid_city(3, 3, 100.0);
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
        let req = LevelRequirement::with_k(2);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            random_expansion(&net, &snapshot, SegmentId(777), &req, &mut rng).unwrap_err(),
            CloakError::UnknownSegment(SegmentId(777))
        );
    }
}
