//! Algebraic property tests of the RGE transition table — the structure
//! the paper's no-collision argument rests on.

use cloak::TransitionTable;
use proptest::prelude::*;
use roadnet::SegmentId;

fn table(m: usize, n: usize) -> TransitionTable {
    TransitionTable::from_sorted(
        (0..m as u32).map(SegmentId).collect(),
        (1000..1000 + n as u32).map(SegmentId).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_row_is_a_complete_residue_system(m in 1usize..40, n in 1usize..40) {
        let t = table(m, n);
        for i in 0..m {
            let mut seen = vec![false; n];
            for j in 0..n {
                let v = t.value(i, j);
                prop_assert!(v < n);
                prop_assert!(!seen[v], "duplicate value {} in row {}", v, i);
                seen[v] = true;
            }
        }
    }

    #[test]
    fn columns_have_distinct_values_within_each_band(m in 1usize..40, n in 1usize..40) {
        let t = table(m, n);
        for j in 0..n {
            // Within a quotient band (n consecutive rows) column values
            // are pairwise distinct — the no-collision property the
            // backward walk relies on.
            for band_start in (0..m).step_by(n) {
                let mut seen = std::collections::HashSet::new();
                for i in band_start..(band_start + n).min(m) {
                    prop_assert!(seen.insert(t.value(i, j)));
                }
            }
        }
    }

    #[test]
    fn forward_then_backward_is_identity(m in 1usize..40, n in 1usize..40) {
        let t = table(m, n);
        for i in 0..m {
            for pick in 0..n {
                let j = t.forward_col(i, pick);
                prop_assert_eq!(t.value(i, j), pick, "cell value must equal the pick");
                let back = t.backward_row(j, pick, i / n);
                prop_assert_eq!(back, Some(i));
            }
        }
    }

    #[test]
    fn backward_rejects_rows_outside_the_table(m in 1usize..20, n in 1usize..20) {
        let t = table(m, n);
        let oob_hint = m.div_ceil(n); // one band past the last
        for j in 0..n {
            for pick in 0..n {
                prop_assert_eq!(t.backward_row(j, pick, oob_hint), None);
            }
        }
    }

    #[test]
    fn forward_is_injective_per_pick_within_band(m in 2usize..40, n in 2usize..40) {
        let t = table(m, n);
        for pick in 0..n {
            for band_start in (0..m).step_by(n) {
                let mut seen = std::collections::HashSet::new();
                for i in band_start..(band_start + n).min(m) {
                    prop_assert!(
                        seen.insert(t.forward_col(i, pick)),
                        "two rows of one band map pick {} to the same column",
                        pick
                    );
                }
            }
        }
    }

    #[test]
    fn hint_modulus_covers_all_rows(m in 1usize..60, n in 1usize..60) {
        let t = table(m, n);
        prop_assert!(t.hint_modulus() * n >= m);
        prop_assert!((t.hint_modulus() - 1) * n < m || t.hint_modulus() == 1);
        prop_assert_eq!(t.needs_hint(), m > n);
    }
}
