//! Property tests for the single-shot adversarial analysis in
//! `cloak::attack`, pinning the two facts the temporal harness builds
//! on:
//!
//! * [`selection_uniformity`] — over random keys, the keyed first
//!   transition stays within tolerance of uniform on *both* engines and
//!   arbitrary seeds (the paper's "all its linked segments would have
//!   the same probability" claim);
//! * [`peel_candidates`] — is *exactly* the set of segments whose
//!   removal keeps the region connected (the keyless adversary's
//!   one-step search space has no false positives and no false
//!   negatives), on grids and irregular maps alike.
//!
//! [`selection_uniformity`]: cloak::attack::selection_uniformity
//! [`peel_candidates`]: cloak::attack::peel_candidates

use cloak::attack::{peel_candidates, selection_uniformity};
use cloak::{ReversibleEngine, RgeEngine, RpleEngine};
use proptest::prelude::*;
use roadnet::{grid_city, irregular_city, IrregularConfig, RoadNetwork, SegmentId};

/// Grows a random connected region of `target` segments from `seed_seg`
/// by repeatedly annexing a pseudo-randomly chosen adjacent segment —
/// the same shape family cloaks produce, without needing keys.
fn random_connected_region(
    net: &RoadNetwork,
    seed_seg: SegmentId,
    target: usize,
    mut state: u64,
) -> Vec<SegmentId> {
    let mut region = vec![seed_seg];
    while region.len() < target {
        let mut frontier: Vec<SegmentId> = region
            .iter()
            .flat_map(|&s| net.neighbor_segments_csr(s).iter().copied())
            .filter(|s| !region.contains(s))
            .collect();
        frontier.sort_unstable();
        frontier.dedup();
        if frontier.is_empty() {
            break;
        }
        state = state
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x1405_7b7e_f767_814f);
        region.push(frontier[(state >> 33) as usize % frontier.len()]);
    }
    region.sort_unstable();
    region
}

/// The brute-force spec: every segment whose removal leaves the rest
/// connected. (For a connected region of ≥ 2 segments this implies the
/// removed segment is adjacent to the remainder, so the spec needs no
/// extra adjacency clause.)
fn peelable_by_definition(net: &RoadNetwork, region: &[SegmentId]) -> Vec<SegmentId> {
    if region.len() <= 1 {
        return Vec::new();
    }
    region
        .iter()
        .copied()
        .filter(|&s| {
            let rest: Vec<SegmentId> = region.iter().copied().filter(|&r| r != s).collect();
            net.segments_connected(&rest)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `peel_candidates` ≡ the removal-keeps-connected set, on grids.
    #[test]
    fn peel_candidates_match_spec_on_grids(
        seed_seg in 0u32..84,
        target in 2usize..14,
        state in any::<u64>(),
    ) {
        let net = grid_city(7, 7, 100.0);
        let region = random_connected_region(&net, SegmentId(seed_seg), target, state);
        prop_assume!(region.len() >= 2);
        let mut got = peel_candidates(&net, &region);
        let mut want = peelable_by_definition(&net, &region);
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Same exactness on irregular street topology.
    #[test]
    fn peel_candidates_match_spec_on_irregular_maps(
        map_seed in any::<u64>(),
        seed_seg in 0u32..150,
        target in 2usize..12,
        state in any::<u64>(),
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 150,
            seed: map_seed,
            ..Default::default()
        });
        let seed_seg = SegmentId(seed_seg % net.segment_count() as u32);
        let region = random_connected_region(&net, seed_seg, target, state);
        prop_assume!(region.len() >= 2);
        let mut got = peel_candidates(&net, &region);
        let mut want = peelable_by_definition(&net, &region);
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    // Each case runs a 1500-trial Monte-Carlo, so keep the case count
    // low; the seeds still sweep keys and start segments widely.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The keyed first transition stays near-uniform over its support
    /// for random keys and seed segments, on both engines.
    #[test]
    fn first_transition_uniformity_over_random_keys(
        key_seed in any::<u64>(),
        seed_seg in 0u32..84,
    ) {
        let net = grid_city(7, 7, 100.0);
        let rge = RgeEngine::new();
        let rple = RpleEngine::build(&net, 10);
        for engine in [&rge as &dyn ReversibleEngine, &rple] {
            let (support, deviation) =
                selection_uniformity(&net, SegmentId(seed_seg), engine, 1500, key_seed);
            prop_assert!(support >= 2, "{}: support {support}", engine.name());
            // Uniform over `support` candidates: each frequency is
            // 1/support ± Monte-Carlo noise. 0.08 absolute tolerance
            // holds with huge margin at 1500 trials unless selection is
            // actually biased.
            prop_assert!(
                deviation < 0.08,
                "{}: deviation {deviation:.4} over {support} candidates (key {key_seed:#x})",
                engine.name()
            );
        }
    }
}
